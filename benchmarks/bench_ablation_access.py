"""Ablation A: field-access cost across layouts (paper Sections 3.2-4.1).

The design claim under test: SFM's fixed-offset skeleton makes field
access as cheap as plain attribute access, while FlatData must linearly
scan the parameter list per access and FlatBuffer must indirect through
the vtable.  We read the *last* declared field (``data``'s length) plus
two scalars of a constructed SimpleImage, per layout.

Expected shape: plain ~= SFM << FlatBuffer < XCDR2/FlatData (the scan is
worst for late members).
"""

from __future__ import annotations

import pytest

from repro.msg import library as L
from repro.msg.registry import default_registry
from repro.serialization.flatbuffer import FlatBufferFormat
from repro.serialization.xcdr2 import XCDR2Format
from repro.sfm.generator import generate_sfm_class

TYPE = "rossf_bench/SimpleImage"
DATA = bytes(300)


def _make_plain():
    msg = L.SimpleImage(height=10, width=10, encoding="rgb8")
    msg.data = bytearray(DATA)
    return lambda: (msg.height, msg.width, len(msg.data))


def _make_sfm():
    cls = generate_sfm_class(TYPE)
    msg = cls(height=10, width=10)
    msg.encoding = "rgb8"
    msg.data = DATA
    return lambda: (msg.height, msg.width, len(msg.data))


def _make_flatbuffer():
    fmt = FlatBufferFormat(default_registry)
    builder = fmt.builder(TYPE)
    builder.add("encoding", "rgb8").add("height", 10).add("width", 10)
    builder.add("data", DATA)
    view = fmt.wrap(TYPE, builder.finish())
    return lambda: (view.get("height"), view.get("width"),
                    len(view.get("data")))


def _make_xcdr2():
    fmt = XCDR2Format(default_registry)
    builder = fmt.builder(TYPE)
    builder.add("encoding", "rgb8").add("height", 10).add("width", 10)
    builder.add("data", DATA)
    view = fmt.wrap(TYPE, builder.finish_sample())
    return lambda: (view.get("height"), view.get("width"),
                    len(view.get("data")))


ACCESSORS = {
    "plain-struct": _make_plain,
    "SFM": _make_sfm,
    "FlatBuffer-view": _make_flatbuffer,
    "XCDR2-FlatData-view": _make_xcdr2,
}


@pytest.mark.parametrize("layout", list(ACCESSORS))
def bench_field_access(benchmark, layout):
    accessor = ACCESSORS[layout]()
    assert accessor() == (10, 10, 300)
    benchmark.extra_info["layout"] = layout
    benchmark(accessor)
