"""Ablation C: the endianness-conversion cost (paper Section 4.4.1).

The paper warns that when publisher and subscriber byte orders differ,
the subscriber-side conversion "could even counteract the efficiency
brought by serialization-free frameworks".  We measure adopting a ~1 MB
image buffer with and without conversion.

Expected shape: same-order adoption is near-free; cross-order adoption
costs a full typed walk of the buffer.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import IMAGE_WORKLOADS
from repro.sfm.generator import generate_sfm_class
from repro.sfm.layout import convert_endianness, layout_for

_workload = IMAGE_WORKLOADS[1]  # ~1 MB
_cls = generate_sfm_class("sensor_msgs/Image")
_layout = layout_for("sensor_msgs/Image")


def _wire(byte_order: str) -> bytes:
    from repro.bench.workloads import construct_image

    msg = construct_image(_cls, _workload.make_frame(), _workload, 0, (0, 0))
    buffer = bytearray(bytes(msg.to_wire()))
    if byte_order == ">":
        convert_endianness(_layout, buffer, "<", ">")
    return bytes(buffer)


@pytest.mark.parametrize("publisher_order", ["<", ">"],
                         ids=["same-endian", "cross-endian"])
def bench_adoption_endianness(benchmark, publisher_order):
    wire = _wire(publisher_order)

    def adopt():
        received = _cls.from_buffer(bytearray(wire), byte_order=publisher_order)
        assert received.height == _workload.height

    benchmark.extra_info["publisher_order"] = publisher_order
    benchmark(adopt)
