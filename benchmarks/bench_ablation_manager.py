"""Ablation B: message-manager lookup scaling (paper Section 4.3.3).

The paper implements interior-address lookup "as a binary search from a
std::vector of ordered records" and asserts it "appears to be efficient
enough".  We measure ``find_record`` and ``expand`` with 10 / 100 / 1,000
live messages; the expected shape is logarithmic (near-flat) growth.

Also measures the buffer-pool effect on allocation (the recycling added
on top of the paper's design; see DESIGN.md).
"""

from __future__ import annotations

import itertools

import pytest

from repro.sfm.layout import layout_for
from repro.sfm.manager import MessageManager

_layout = layout_for("rossf_bench/SimpleImage")


@pytest.mark.parametrize("live_records", [10, 100, 1000])
def bench_find_record(benchmark, live_records):
    manager = MessageManager()
    records = [
        manager.allocate(_layout, capacity=256) for _ in range(live_records)
    ]
    cycle = itertools.cycle(records)

    def lookup():
        record = next(cycle)
        assert manager.find_record(record.base + 16) is record

    benchmark.extra_info["live_records"] = live_records
    benchmark(lookup)


@pytest.mark.parametrize("live_records", [10, 100, 1000])
def bench_expand(benchmark, live_records):
    manager = MessageManager()
    records = [
        manager.allocate(_layout, capacity=1 << 20)
        for _ in range(live_records)
    ]
    cycle = itertools.cycle(records)

    def expand():
        record = next(cycle)
        if record.size > (1 << 20) - 64:
            record.size = _layout.skeleton_size  # reuse the same space
        manager.expand(record.base + 4, 16)

    benchmark.extra_info["live_records"] = live_records
    benchmark(expand)


@pytest.mark.parametrize("recycle", [True, False], ids=["pooled", "fresh"])
def bench_allocation_pool(benchmark, recycle):
    manager = MessageManager(recycle=recycle)
    capacity = 1 << 20  # 1 MiB buffers show the zero-fill cost plainly

    def allocate_release():
        record = manager.allocate(_layout, capacity=capacity)
        manager.release_object(record)

    benchmark.extra_info["recycle"] = recycle
    benchmark(allocate_release)
