"""Ablation D: transport paths and fan-out.

Two questions the paper's Section 2.1 taxonomy raises but does not
measure:

1. **Intra-process vs intra-machine**: how much of the remaining latency
   is the loopback socket itself?  The intra-process bus passes the
   message object by reference (the nodelet/const-ptr idiom), removing
   the two kernel copies that even ROS-SF still pays over TCP.
2. **Fan-out**: ROS-SF encodes once per publish regardless of subscriber
   count (the buffer pointer is shared; Fig. 8), while the baseline's
   single serialization is likewise shared -- but the baseline pays
   per-subscriber deserialization.  Measured with 1 vs 4 subscribers.
"""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.bench.workloads import IMAGE_WORKLOADS, construct_image
from repro.ros.graph import RosGraph
from repro.ros.rostime import Time

_WORKLOAD = IMAGE_WORKLOADS[1]  # ~1 MB


class _Rig:
    def __init__(self, msg_class, subscribers: int, intraprocess: bool):
        self.msg_class = msg_class
        self.frame = _WORKLOAD.make_frame()
        self.graph = RosGraph()
        self._expected = subscribers
        self._count = 0
        self._all_received = threading.Event()
        self._lock = threading.Lock()
        pub_node = self.graph.node("fan_pub")
        for index in range(subscribers):
            sub_node = self.graph.node(f"fan_sub_{index}")
            sub_node.subscribe("/fan_bench", msg_class, self._on_message,
                               intraprocess=intraprocess)
        self.publisher = pub_node.advertise(
            "/fan_bench", msg_class, intraprocess=intraprocess
        )
        if not intraprocess:
            assert self.publisher.wait_for_subscribers(subscribers)
        self._seq = itertools.count()

    def _on_message(self, msg) -> None:
        with self._lock:
            self._count += 1
            if self._count >= self._expected:
                self._all_received.set()

    def once(self) -> None:
        with self._lock:
            self._count = 0
        self._all_received.clear()
        msg = construct_image(self.msg_class, self.frame, _WORKLOAD,
                              next(self._seq), tuple(Time.now()))
        self.publisher.publish(msg)
        if not self._all_received.wait(timeout=30):
            raise TimeoutError("fan-out delivery incomplete")

    def close(self) -> None:
        self.graph.shutdown()


@pytest.mark.parametrize("profile_name", ["ROS", "ROS-SF"])
@pytest.mark.parametrize("subscribers", [1, 4])
def bench_fanout_tcp(benchmark, image_classes, profile_name, subscribers):
    rig = _Rig(image_classes[profile_name], subscribers, intraprocess=False)
    try:
        for _ in range(5):
            rig.once()
        benchmark.extra_info["profile"] = profile_name
        benchmark.extra_info["subscribers"] = subscribers
        benchmark(rig.once)
    finally:
        rig.close()


@pytest.mark.parametrize("profile_name", ["ROS", "ROS-SF"])
def bench_intraprocess_delivery(benchmark, image_classes, profile_name):
    rig = _Rig(image_classes[profile_name], 1, intraprocess=True)
    try:
        for _ in range(5):
            rig.once()
        benchmark.extra_info["profile"] = profile_name
        benchmark(rig.once)
    finally:
        rig.close()
