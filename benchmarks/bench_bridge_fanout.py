#!/usr/bin/env python
"""Bridge fan-out: msgs/s and bytes-on-wire, full vs. selective fields.

One internal publisher pushes a >=1 MB ``sensor_msgs/Image@sfm`` through
the :mod:`repro.bridge` gateway to K concurrent external clients, for K
across 1-64.  Two headline modes face off:

* ``full_json``     -- the whole message converted to JSON per delivery
                       (what a field-oblivious rosbridge does);
* ``selective_json``-- ``fields=["height", "width"]``, sliced straight
                       out of the SFM buffer by compiled offset readers.

Plus two codec extras at a single client count, for the codec matrix:
``cbin`` (packed little-endian fields) and ``raw`` (SFM bytes forwarded
untouched).

Delivery is stop-and-wait -- each message is published only after every
client confirmed the previous one -- so memory stays bounded and the
aggregate rate is not flattered by server-side queueing.

Usage::

    PYTHONPATH=src python benchmarks/bench_bridge_fanout.py [--messages N]

``benchmarks/snapshot.py --experiment bridge`` wraps this into the
committed ``BENCH_bridge.json``.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time

from repro.bridge.client import BridgeClient
from repro.bridge.server import BridgeServer
from repro.msg.registry import default_registry
from repro.ros.graph import RosGraph
from repro.sfm.generator import generate_sfm_class

TYPE_SPELLING = "sensor_msgs/Image@sfm"
DATA_BYTES = 1 << 20  # the >=1 MB payload the acceptance bar names
FIELDS = ["height", "width"]  # <=2 scalar fields
CLIENT_COUNTS = (1, 4, 16, 64)
EXTRA_CODEC_CLIENTS = 16

MODES = {
    "full_json": {"codec": "json", "fields": None},
    "selective_json": {"codec": "json", "fields": FIELDS},
    "cbin": {"codec": "cbin", "fields": FIELDS},
    "raw": {"codec": "raw", "fields": None},
}

_topic_source = itertools.count()


def _fresh_image():
    image_class = generate_sfm_class("sensor_msgs/Image", default_registry)
    msg = image_class()
    msg.height = 1080
    msg.width = 1920
    msg.encoding = "rgb8"
    msg.data.resize(DATA_BYTES)
    return msg


def _wait_counts(clients, sids, target: int, deadline: float) -> bool:
    while time.monotonic() < deadline:
        if all(
            client.received.get(sid, 0) >= target
            for client, sid in zip(clients, sids)
        ):
            return True
        time.sleep(0.001)
    return False


def run_mode(graph, server, mode: str, n_clients: int, messages: int) -> dict:
    """One (mode, K) cell: connect K clients, stop-and-wait M messages."""
    config = MODES[mode]
    topic = f"/bench_bridge_{next(_topic_source)}"
    node = graph.node(f"bench_pub_{topic.strip('/')}")
    publisher = node.advertise(
        topic, generate_sfm_class("sensor_msgs/Image", default_registry)
    )
    clients: list[BridgeClient] = []
    sids: list[int] = []
    try:
        for _ in range(n_clients):
            client = BridgeClient(server.host, server.port)
            clients.append(client)
            sids.append(client.subscribe(
                topic, TYPE_SPELLING, lambda _msg, _meta: None,
                fields=config["fields"], codec=config["codec"],
            ))
        if not publisher.wait_for_subscribers(1, timeout=10.0):
            raise RuntimeError("bridge tap never connected")
        msg = _fresh_image()
        start = time.perf_counter()
        for index in range(messages):
            msg.header.seq = index
            publisher.publish(msg)
            if not _wait_counts(clients, sids, index + 1,
                                time.monotonic() + 30.0):
                raise RuntimeError(
                    f"{mode} x{n_clients}: message {index} not fully "
                    f"delivered"
                )
        elapsed = time.perf_counter() - start
        total_wire = sum(
            client.wire_bytes.get(sid, 0)
            for client, sid in zip(clients, sids)
        )
        deliveries = n_clients * messages
        return {
            "mode": mode,
            "clients": n_clients,
            "messages": messages,
            "elapsed_s": round(elapsed, 4),
            "deliveries_per_sec": round(deliveries / elapsed, 2),
            "msgs_per_sec_per_client": round(messages / elapsed, 2),
            "wire_bytes_per_delivery": round(total_wire / deliveries, 1),
        }
    finally:
        for client in clients:
            client.close()
        node.shutdown()


def run_fanout(messages: int) -> dict:
    cells = []
    with RosGraph() as graph:
        with BridgeServer(graph.master_uri) as server:
            for n_clients in CLIENT_COUNTS:
                for mode in ("full_json", "selective_json"):
                    cells.append(run_mode(graph, server, mode, n_clients,
                                          messages))
                    print("  ran", cells[-1], flush=True)
            for mode in ("cbin", "raw"):
                cells.append(run_mode(graph, server, mode,
                                      EXTRA_CODEC_CLIENTS, messages))
                print("  ran", cells[-1], flush=True)
    by_key = {(cell["mode"], cell["clients"]): cell for cell in cells}
    full = by_key[("full_json", EXTRA_CODEC_CLIENTS)]
    selective = by_key[("selective_json", EXTRA_CODEC_CLIENTS)]
    return {
        "payload_bytes": DATA_BYTES,
        "type": TYPE_SPELLING,
        "fields": FIELDS,
        "cells": cells,
        # The acceptance headline: bytes-on-wire shrinkage at 16 clients.
        "selective_vs_full_json_wire_ratio": round(
            full["wire_bytes_per_delivery"]
            / selective["wire_bytes_per_delivery"],
            1,
        ),
        "selective_vs_full_json_rate_ratio": round(
            selective["deliveries_per_sec"] / full["deliveries_per_sec"], 2
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=8)
    args = parser.parse_args(argv)
    payload = run_fanout(args.messages)
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
