"""Chaos soak: repeated fault/recovery cycles with recovery-time stats.

One 100 Hz stream runs for the whole soak while faults land on it in a
seeded rotation -- link severs (data-plane only) and amnesiac master
bounces (control plane loses everything) -- and each round measures the
time from the fault landing (or the master returning) until delivery
resumes.  The summary is the paper-style tail view of self-healing:
recovery p50/p99 plus total message loss across the soak.

Run standalone via ``snapshot.py --experiment chaos`` (writes
``BENCH_chaos.json``), or under pytest with ``REPRO_SOAK=1`` (the soak
is nightly material, not a tier-1 gate).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import chaos
from repro.msg.library import String
from repro.ros.node import NodeHandle
from repro.ros.retry import wait_until
from repro.bench.stats import summarize

#: Self-healing knobs tuned for soak cadence (fast probes, tight idle).
KNOBS = dict(
    shmros=False,
    master_probe_interval=0.05,
    link_keepalive=0.2,
    link_idle_timeout=1.0,
)
PERIOD = 0.01  # 100 Hz
OUTAGE = 0.2   # master darkness per bounce round
RESUME_BURST = 5  # messages that must land to call a round recovered


def run_soak(rounds: int = 10, seed: int = 1) -> dict:
    """Drive ``rounds`` fault/recovery cycles; returns the JSON payload
    for ``BENCH_chaos.json``."""
    master = chaos.ChaosMaster()
    plan = chaos.FaultPlan(seed=seed).install()
    pub_node = NodeHandle("soak_pub", master.uri, **KNOBS)
    sub_node = NodeHandle("soak_sub", master.uri, **KNOBS)

    got: list[str] = []
    publisher = pub_node.advertise("/soak", String)
    subscriber = sub_node.subscribe("/soak", String,
                                    lambda msg: got.append(msg.data))
    wait_until(lambda: subscriber.get_num_connections() > 0,
               desc="initial link")

    sent = [0]
    stop = threading.Event()

    def pump() -> None:
        while not stop.wait(PERIOD):
            msg = String()
            msg.data = str(sent[0])
            try:
                publisher.publish(msg)
                sent[0] += 1
            except Exception:
                pass

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()

    sever_recoveries: list[float] = []
    bounce_recoveries: list[float] = []
    try:
        wait_until(lambda: len(got) >= 10, desc="steady state")
        for round_index in range(rounds):
            mark = len(got)
            if round_index % 3 == 2:
                # Amnesiac master bounce with every data link severed;
                # the clock starts when the master comes back.
                master.pause()
                plan.sever(seam="tcpros")
                time.sleep(OUTAGE)
                master.resume(fresh_registry=True)
                started = time.monotonic()
                bucket = bounce_recoveries
            else:
                # Data-plane-only fault: every link cut mid-stream.
                started = time.monotonic()
                plan.sever(seam="tcpros")
                bucket = sever_recoveries
            wait_until(lambda: len(got) >= mark + RESUME_BURST,
                       timeout=15.0, desc=f"round {round_index} recovery")
            bucket.append(time.monotonic() - started)
    finally:
        stop.set()
        thread.join(timeout=2.0)
        history = subscriber.state_history()
        loss = sent[0] - len(got)
        pub_node.shutdown()
        sub_node.shutdown()
        plan.uninstall()
        master.shutdown()

    all_recoveries = sever_recoveries + bounce_recoveries
    stats = summarize("chaos_recovery", all_recoveries)
    payload = {
        "seed": seed,
        "rounds": rounds,
        "sent": sent[0],
        "received": len(got),
        "lost": loss,
        "recovery_ms": {
            "p50": stats.p50_ms,
            "p99": stats.p99_ms,
            "mean": stats.mean_ms,
            "max": stats.max_ms,
        },
        "sever_recovery_ms": [s * 1000.0 for s in sever_recoveries],
        "bounce_recovery_ms": [s * 1000.0 for s in bounce_recoveries],
        "final_state_history": history,
    }
    return payload


@pytest.mark.skipif(os.environ.get("REPRO_SOAK") != "1",
                    reason="soak is nightly-only (set REPRO_SOAK=1)")
def test_chaos_soak_recovers_every_round():
    payload = run_soak(rounds=10, seed=1)
    # Every round recovered (wait_until would have raised otherwise);
    # the tail must stay test-scale and the stream mostly intact.
    assert payload["recovery_ms"]["p99"] < 5000.0
    assert payload["lost"] < payload["rounds"] * 100
    assert payload["final_state_history"][-1] == "healthy"


if __name__ == "__main__":
    import json

    print(json.dumps(run_soak(), indent=2))
