"""Fig. 13: intra-machine transmission latency, ROS vs ROS-SF.

The paper's Fig. 12 topology -- one publisher node, one subscriber node,
one ``sensor_msgs/Image`` topic -- at the three image sizes (~200 KB,
~1 MB, ~6 MB), crossed with the transport axis: loopback TCPROS vs the
SHMROS shared-memory ring.  Each benchmark iteration is one complete
message trip: construct (copying the frame in), publish, transport,
decode, callback; the reported time is the paper's "transmission latency".

Expected shape (paper): ROS-SF at or below ROS everywhere, with the
reduction growing with message size (up to 76.3% at 6 MB on their C++
testbed; smaller here because Python's baseline serialization of a byte
blob is already a single memcpy -- see EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.bench.workloads import IMAGE_WORKLOADS, construct_image
from repro.ros.graph import RosGraph
from repro.ros.rostime import Time


class LatencyRig:
    """A standing pub/sub pair; ``once`` runs one full message trip."""

    def __init__(self, msg_class, workload, transport: str = "tcpros") -> None:
        self.msg_class = msg_class
        self.workload = workload
        self.frame = workload.make_frame()
        self.graph = RosGraph()
        self._received = threading.Event()
        use_shm = transport == "shmros"
        self.sub_node = self.graph.node("bench_sub", shmros=use_shm)
        self.pub_node = self.graph.node("bench_pub", shmros=use_shm)
        self.sub_node.subscribe("/bench", msg_class, self._on_message)
        self.publisher = self.pub_node.advertise("/bench", msg_class)
        if not self.publisher.wait_for_subscribers(1):
            raise TimeoutError("benchmark subscriber did not connect")
        self._seq = itertools.count()

    def _on_message(self, msg) -> None:
        self._received.set()

    def once(self) -> None:
        self._received.clear()
        msg = construct_image(
            self.msg_class, self.frame, self.workload,
            next(self._seq), tuple(Time.now()),
        )
        self.publisher.publish(msg)
        if not self._received.wait(timeout=30):
            raise TimeoutError("message did not arrive")

    def close(self) -> None:
        self.graph.shutdown()


@pytest.fixture(params=["ROS", "ROS-SF"])
def profile_name(request):
    return request.param


@pytest.fixture(params=["tcpros", "shmros"])
def transport(request):
    return request.param


@pytest.mark.parametrize(
    "workload", IMAGE_WORKLOADS, ids=[w.label for w in IMAGE_WORKLOADS]
)
def bench_intra_machine_latency(benchmark, image_classes, profile_name,
                                transport, workload):
    rig = LatencyRig(image_classes[profile_name], workload, transport)
    try:
        for _ in range(10):  # allocator + connection warmup
            rig.once()
        benchmark.extra_info["profile"] = profile_name
        benchmark.extra_info["transport"] = transport
        benchmark.extra_info["payload_bytes"] = workload.data_bytes
        benchmark(rig.once)
    finally:
        rig.close()
