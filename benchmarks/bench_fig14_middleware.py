"""Fig. 14: intra-machine latency at 6 MB across seven middlewares.

One bar per middleware: ROS, ROS-SF, ProtoBuf, FlatBuf (built then copied
out), FlatBuf-SF (built then accessed zero-copy), RTI (XCDR2 copy-in/
copy-out), RTI-FlatData (built in place, accessed zero-copy).  Each
iteration is construct -> uniform two-copy loopback transfer -> receive-
side access, single-threaded.

Expected shape (paper): every serialization-free variant beats its
serializing counterpart, and RTI-FlatData posts the smallest latency;
ROS-SF reaches the same scale without any code rewriting.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.harness import MiddlewareComparison

MIDDLEWARES = [
    "ROS", "ROS-SF", "ProtoBuf", "FlatBuf", "FlatBuf-SF", "RTI",
    "RTI-FlatData",
]

_experiment = MiddlewareComparison()
_steps = None


def _get_steps():
    global _steps
    if _steps is None:
        _steps = _experiment.middlewares()
    return _steps


@pytest.mark.parametrize("middleware", MIDDLEWARES)
def bench_middleware_6mb(benchmark, middleware):
    step = _get_steps()[middleware]
    frame = _experiment.workload.make_frame()
    seq = itertools.count()
    for _ in range(10):  # allocator warmup (fresh 6 MB blocks churn)
        step(frame, next(seq))
    benchmark.extra_info["middleware"] = middleware
    benchmark.extra_info["serialization_free"] = middleware in (
        "ROS-SF", "FlatBuf-SF", "RTI-FlatData"
    )
    benchmark(lambda: step(frame, next(seq)))
