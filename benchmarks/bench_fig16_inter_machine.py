"""Fig. 16: inter-machine ping-pong latency, ROS vs ROS-SF.

The paper's Fig. 15 topology (pub on machine A -> trans on machine B ->
sub on machine A over a 10 GbE NIC).  Offline, the wire is the
:mod:`repro.net.link` 10 GbE model: the benchmark measures the *compute*
half of a ping-pong (two constructions plus, on the baseline, two
serializations and two de-serializations), and the fixed modeled wire
time for the workload is attached as ``extra_info['modeled_wire_ms']`` --
total latency = measured mean + modeled wire.

Expected shape (paper): ROS-SF reduces the ping-pong latency, more so as
the image grows (69.9% at 6 MB on their testbed; smaller here, see
EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.harness import InterMachineExperiment
from repro.bench.workloads import IMAGE_WORKLOADS
from repro.msg.registry import default_registry
from repro.net.link import NetworkLink, TEN_GIGABIT
from repro.serialization.rosser import ROSSerializer

_serializer = ROSSerializer(default_registry)
_experiment = InterMachineExperiment()


@pytest.fixture(params=["ROS", "ROS-SF"])
def profile_name(request):
    return request.param


@pytest.mark.parametrize(
    "workload", IMAGE_WORKLOADS, ids=[w.label for w in IMAGE_WORKLOADS]
)
def bench_pingpong_compute(benchmark, image_classes, profile_name, workload):
    msg_class = image_classes[profile_name]
    frame = workload.make_frame()
    seq = itertools.count()
    link = NetworkLink(TEN_GIGABIT)

    def pingpong() -> None:
        # pub -> trans, then trans -> sub (two hops, Fig. 15).
        for _hop in range(2):
            _received, _elapsed = _experiment._hop(
                profile_name, msg_class, _serializer, frame, workload,
                link, next(seq),
            )

    for _ in range(8):
        pingpong()
    link.reset()
    pingpong()
    modeled_wire_ms = 1000.0 * link.modeled_seconds

    benchmark.extra_info["profile"] = profile_name
    benchmark.extra_info["payload_bytes"] = workload.data_bytes
    benchmark.extra_info["modeled_wire_ms"] = round(modeled_wire_ms, 4)
    benchmark(pingpong)
