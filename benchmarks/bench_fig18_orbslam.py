"""Fig. 18: overall latency of the ORB-SLAM case study, ROS vs ROS-SF.

Runs the complete Fig. 17 graph (pub_tum -> orb_slam -> three latency
recorders) over a synthetic TUM-like RGBD sequence, once per profile.
The benchmark time is the wall-clock of a whole pipeline run; the per-
output mean latencies (the actual Fig. 18 quantities) are attached as
``extra_info``.

Expected shape (paper): the SLAM computation (tens of ms per frame)
dominates, so ROS-SF's improvement is small (~5%) but present on the
large outputs (point cloud, debug image).
"""

from __future__ import annotations

import pytest

from repro.ros.graph import RosGraph
from repro.slam.dataset import SyntheticRgbdDataset
from repro.slam.pipeline import SlamPipeline, profile

FRAMES = 12
_dataset = SyntheticRgbdDataset(width=320, height=240, length=FRAMES)


@pytest.mark.parametrize("kind", ["ros", "rossf"])
def bench_orbslam_pipeline(benchmark, kind):
    outcomes = []

    def run_pipeline() -> None:
        with RosGraph() as graph:
            pipeline = SlamPipeline(graph, profile(kind), _dataset.intrinsics)
            outcomes.append(
                pipeline.run(_dataset, frame_gap_s=0.04, timeout=300)
            )

    benchmark.pedantic(run_pipeline, rounds=2, iterations=1, warmup_rounds=0)
    last = outcomes[-1]
    benchmark.extra_info["profile"] = last.profile_name
    for output in SlamPipeline.OUTPUTS:
        benchmark.extra_info[f"{output}_latency_ms"] = round(
            last.mean_ms(output), 2
        )
