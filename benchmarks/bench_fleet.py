#!/usr/bin/env python
"""Fleet saturation curve + slow-client eviction witness.

Two measurements over the WebSocket front door
(:mod:`repro.fleet.harness`):

1. **Sweep** -- fixed robot fleet, growing dashboard counts (default
   8 -> 64 -> 256 concurrent ws subscribers on one host).  Each cell
   records sustained deliveries/s, delivery ratio (delivered /
   published x subscribers) and end-to-end p50/p99 delivery latency.
   The committed headline is the *delivery ratio* per cell: it compares
   delivered against offered load inside the same run, so it survives
   machine-to-machine variance where raw msg/s would not.

2. **Slow-client witness** -- a small healthy fleet, first alone
   (baseline), then with stalled dashboards camped on the bulk image
   topic under an aggressive eviction policy.  Records that evictions
   fired and the healthy dashboards' p99 stayed within
   ``slow_client.p99_ratio`` of baseline (the acceptance bound is 2x).

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py \
        [--robots 2] [--sweep 8,64,256] [--duration 4] [--no-slow]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fleet import FleetConfig, run_fleet


def run_sweep(sweep, robots: int, duration: float, pose_hz: float,
              image_hz: float, log=print) -> dict:
    cells: dict = {}
    for dashboards in sweep:
        log(f"--- sweep cell: {robots} robot(s) x {dashboards} "
            f"dashboard(s), {duration:.0f}s ---")
        result = run_fleet(FleetConfig(
            robots=robots,
            dashboards=dashboards,
            duration=duration,
            pose_hz=pose_hz,
            image_hz=image_hz,
            # Scale the settle window with fleet size: 256 ws clients
            # need a moment to connect and subscribe.
            warmup=1.0 + dashboards / 128.0,
        ), log=log)
        cells[str(dashboards)] = result.as_dict()
    return cells


def run_slow_client(robots: int, dashboards: int, duration: float,
                    log=print) -> dict:
    """Baseline vs same-fleet-plus-stalled-clients comparison."""
    common = dict(
        robots=robots,
        dashboards=dashboards,
        # Eviction needs the stalled subscriber's socket buffers (a few
        # MB of kernel absorption) full before strikes start counting,
        # so the witness window has a floor regardless of the sweep's
        # --duration.
        duration=max(duration, 8.0),
        pose_hz=20.0,
        # Bulk imagery: ~900 KB frames, fast enough to wedge a stalled
        # raw-image subscriber within seconds, slow enough that the
        # healthy fleet stays far from loopback saturation.
        image_hz=4.0,
        image_width=640,
        image_height=480,
        queue_length=4,
        evict_strikes=4,
        warmup=1.5,
    )
    log(f"--- slow-client baseline: {robots} robot(s) x {dashboards} "
        f"healthy dashboard(s) ---")
    baseline = run_fleet(FleetConfig(**common), log=log)
    log("--- slow-client run: same fleet + 2 stalled image "
        "subscribers ---")
    contended = run_fleet(
        FleetConfig(**common, slow_dashboards=2), log=log
    )
    base_p50 = baseline.latency_ms["p50"]
    slow_p50 = contended.latency_ms["p50"]
    base_p99 = baseline.latency_ms["p99"]
    slow_p99 = contended.latency_ms["p99"]
    return {
        "evictions": contended.evictions,
        "baseline_p50_ms": base_p50,
        "contended_p50_ms": slow_p50,
        "baseline_p99_ms": base_p99,
        "contended_p99_ms": slow_p99,
        # Healthy-client latency degradation caused by the stalled
        # clients; the acceptance bound on the tail is 2.0 (the
        # eviction policy is what keeps it small).  The regression gate
        # uses the median ratio: at single-digit-millisecond latencies
        # a shared machine's rare scheduler stalls land in arbitrary
        # runs and would dominate a gated p99 (same reasoning as
        # fig13's ``speedup_basis: p50``).
        "p50_ratio": (slow_p50 / base_p50) if base_p50 else 0.0,
        "p99_ratio": (slow_p99 / base_p99) if base_p99 else 0.0,
        "gate_basis": "p50",
        "baseline": baseline.as_dict(),
        "contended": contended.as_dict(),
    }


def run_fleet_bench(sweep=(8, 64, 256), robots: int = 2,
                    duration: float = 4.0, pose_hz: float = 10.0,
                    image_hz: float = 1.0, slow: bool = True,
                    witness_dashboards: int = 16, log=print) -> dict:
    doc: dict = {
        "sweep": run_sweep(sweep, robots, duration, pose_hz, image_hz,
                           log=log),
    }
    if slow:
        doc["slow_client"] = run_slow_client(
            robots, witness_dashboards, duration, log=log
        )
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--robots", type=int, default=2)
    parser.add_argument("--sweep", default="8,64,256",
                        help="comma-separated dashboard counts")
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--pose-hz", type=float, default=10.0)
    parser.add_argument("--image-hz", type=float, default=1.0)
    parser.add_argument("--no-slow", action="store_true",
                        help="skip the slow-client witness")
    args = parser.parse_args(argv)
    sweep = tuple(int(part) for part in args.sweep.split(",") if part)
    doc = run_fleet_bench(
        sweep=sweep, robots=args.robots, duration=args.duration,
        pose_hz=args.pose_hz, image_hz=args.image_hz,
        slow=not args.no_slow,
    )
    print(json.dumps(doc, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
