"""Graph-plane benchmarks: shard failover recovery and RouteD overhead.

Two experiments, one JSON payload (``BENCH_graphplane.json``):

* ``run_failover`` -- kill the owning shard's leader mid-traffic (data
  links severed too), over several rounds.  Measures delivery recovery
  (same clock as the chaos soak's rounds, so the numbers are comparable
  to the PR-4 single-master bounce) and, separately, how long the
  control plane takes to accept a registration again (the promotion
  window as a client sees it).  Asserts zero lost registrations.
* ``run_routed_overhead`` -- the same pub/sub workload direct and
  through a RouteD mux pair.  The headlines are a recorded overhead
  budget (the p50 latency ratio must stay under
  ``ROUTED_BUDGET_RATIO``; the raw ratio is too scheduler-noisy at
  sub-millisecond latencies to gate directly) plus the connection
  count per host pair, which the mux must pin at 1.

Run standalone via ``snapshot.py --experiment graphplane``, or under
pytest with ``REPRO_SOAK=1`` (like the chaos soak, nightly material).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import chaos
from repro.bench.stats import summarize
from repro.graphplane.routed import RouteD
from repro.msg.library import String
from repro.ros.master import Master
from repro.ros.node import NodeHandle
from repro.ros.retry import wait_until

from repro.ros.retry import RetryPolicy

KNOBS = dict(
    shmros=False,
    master_probe_interval=0.05,
    link_keepalive=0.2,
    link_idle_timeout=1.0,
    # Bench-cadence link retry (like the probe/keepalive knobs above):
    # a severed link's first redial comes after ~25 ms instead of the
    # production 50 ms, so the recovery clock measures the failover
    # machinery rather than the backoff schedule's first rung.
    link_retry=RetryPolicy(base_delay=0.025, max_delay=0.5),
)
PERIOD = 0.01   # 100 Hz
RESUME_BURST = 5
TOPIC = "/bench/failover"
# The mux may cost at most this multiple of the direct path's p50.
ROUTED_BUDGET_RATIO = 2.0


# ----------------------------------------------------------------------
# Shard failover
# ----------------------------------------------------------------------
def _failover_round(seed: int) -> dict:
    """One kill-the-leader round; returns its measurements."""
    plane = chaos.ChaosGraphPlane(shards=2, probe_interval=0.05,
                                  probe_failures=3)
    plan = chaos.FaultPlan(seed=seed).install()
    pub_node = NodeHandle("gp_pub", plane.spec, **KNOBS)
    sub_node = NodeHandle("gp_sub", plane.spec, **KNOBS)
    got: list[str] = []
    publisher = pub_node.advertise(TOPIC, String)
    subscriber = sub_node.subscribe(TOPIC, String,
                                    lambda msg: got.append(msg.data))
    wait_until(lambda: subscriber.get_num_connections() > 0,
               desc="initial link")

    sent = [0]
    stop = threading.Event()

    def pump() -> None:
        while not stop.wait(PERIOD):
            msg = String()
            msg.data = str(sent[0])
            try:
                publisher.publish(msg)
                sent[0] += 1
            except Exception:
                pass

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    try:
        wait_until(lambda: len(got) >= 10, desc="steady state")
        shard = plane.shard_for(TOPIC)
        state_before = pub_node.master.get_system_state(pub_node.name)
        epoch_before = pub_node.master.get_epoch(pub_node.name)

        mark = len(got)
        plane.kill_leader(shard)
        plan.sever(seam="tcpros")
        killed_at = time.monotonic()

        # Delivery recovery: the chaos-soak clock (fault lands ->
        # RESUME_BURST messages delivered).
        wait_until(lambda: len(got) >= mark + RESUME_BURST, timeout=15.0,
                   desc="delivery recovery")
        recovery_s = time.monotonic() - killed_at

        # Control-plane recovery: how long until the shard accepts a
        # registration again (rides the proxy's failover retries across
        # the promotion window).
        pub_node.master.register_publisher(
            pub_node.name, TOPIC, "std_msgs/String", pub_node.uri)
        reregister_s = time.monotonic() - killed_at

        wait_until(lambda: plane.replica(shard).promoted, timeout=5.0,
                   desc="promotion")
        state_after = pub_node.master.get_system_state(pub_node.name)
        epoch_after = pub_node.master.get_epoch(pub_node.name)
        before = {(topic, node) for topic, nodes in state_before[0]
                  for node in nodes}
        before |= {(topic, node) for topic, nodes in state_before[1]
                   for node in nodes}
        after = {(topic, node) for topic, nodes in state_after[0]
                 for node in nodes}
        after |= {(topic, node) for topic, nodes in state_after[1]
                  for node in nodes}
        return {
            "recovery_s": recovery_s,
            "reregister_s": reregister_s,
            "registrations_lost": len(before - after),
            "epoch_preserved": epoch_after == epoch_before,
            "lost_messages": sent[0] - len(got),
        }
    finally:
        stop.set()
        thread.join(timeout=2.0)
        sub_node.shutdown()
        pub_node.shutdown()
        plan.uninstall()
        plane.shutdown()


def run_failover(rounds: int = 6, seed: int = 1) -> dict:
    recoveries: list[float] = []
    reregisters: list[float] = []
    lost_registrations = 0
    lost_messages = 0
    epochs_preserved = True
    for round_index in range(rounds):
        result = _failover_round(seed + round_index)
        recoveries.append(result["recovery_s"])
        reregisters.append(result["reregister_s"])
        lost_registrations += result["registrations_lost"]
        lost_messages += result["lost_messages"]
        epochs_preserved = epochs_preserved and result["epoch_preserved"]
    stats = summarize("graphplane_failover", recoveries)
    restats = summarize("graphplane_reregister", reregisters)
    return {
        "rounds": rounds,
        "seed": seed,
        "recovery_ms": {
            "p50": stats.p50_ms,
            "p99": stats.p99_ms,
            "mean": stats.mean_ms,
            "max": stats.max_ms,
        },
        "reregister_ms": {
            "p50": restats.p50_ms,
            "p99": restats.p99_ms,
            "max": restats.max_ms,
        },
        "registrations_lost": lost_registrations,
        "epoch_preserved": epochs_preserved,
        "lost_messages": lost_messages,
    }


# ----------------------------------------------------------------------
# RouteD overhead
# ----------------------------------------------------------------------
def _measure_latency(master_uri: str, topics: list[str],
                     messages: int, tag: str,
                     on_connected=None) -> list[float]:
    """One-way delivery latency for ``messages`` round-robined over
    ``topics`` (seconds, one sample per delivered message).
    ``on_connected`` runs once all links are up, while they still exist
    -- the mux run snapshots its connection counts there."""
    pub_node = NodeHandle(f"routed_bench_pub_{tag}", master_uri, **KNOBS)
    sub_node = NodeHandle(f"routed_bench_sub_{tag}", master_uri, **KNOBS)
    samples: list[float] = []
    done = threading.Event()

    def on_message(msg: String) -> None:
        samples.append(time.monotonic() - float(msg.data))
        if len(samples) >= messages:
            done.set()

    try:
        publishers = [pub_node.advertise(t, String) for t in topics]
        for topic in topics:
            sub_node.subscribe(topic, String, on_message)
        wait_until(lambda: all(p.get_num_connections() == 1
                               for p in publishers),
                   desc="bench links up")
        if on_connected is not None:
            on_connected()
        for i in range(messages):
            msg = String()
            msg.data = repr(time.monotonic())
            publishers[i % len(topics)].publish(msg)
            time.sleep(0.002)
        done.wait(10.0)
    finally:
        sub_node.shutdown()
        pub_node.shutdown()
    return samples


def run_routed_overhead(messages: int = 400, topics: int = 5) -> dict:
    topic_names = [f"/routed_bench/t{i}" for i in range(topics)]
    with Master() as master:
        direct = _measure_latency(master.uri, topic_names, messages,
                                  "direct")
        daemon_a = RouteD("bench_a", admin=False)
        daemon_b = RouteD("bench_b", admin=False)
        try:
            # Route the publisher node's (yet unknown) data port: install
            # first, then let _measure_latency's pub node come up and
            # patch the route before the subscribers dial.  Easier: wrap
            # the hook so ANY local dial goes through the mux -- an
            # upper bound on the overhead, since even direct-eligible
            # links pay the splice.
            daemon_a.install()
            original_dial = daemon_a.dial

            def route_everything(host, port, timeout,
                                 _original=original_dial):
                daemon_a.add_route((host, port), daemon_b.listen_addr)
                return _original(host, port, timeout)

            from repro.ros.transport import tcpros

            tcpros.install_connect_hook(route_everything)
            counts = {}

            def snapshot_counts() -> None:
                counts["mux_links"] = daemon_a.mux_link_count()
                counts["channels"] = daemon_a.channel_count()

            routed = _measure_latency(master.uri, topic_names, messages,
                                      "muxed", on_connected=snapshot_counts)
            mux_links = counts["mux_links"]
            channels = counts["channels"]
        finally:
            daemon_a.uninstall()
            daemon_a.shutdown()
            daemon_b.shutdown()
    direct_stats = summarize("routed_direct", direct)
    routed_stats = summarize("routed_muxed", routed)
    ratio = (routed_stats.p50_ms / direct_stats.p50_ms
             if direct_stats.p50_ms else 0.0)
    return {
        "messages": messages,
        "topics": topics,
        "direct_ms": {"p50": direct_stats.p50_ms,
                      "p99": direct_stats.p99_ms},
        "routed_ms": {"p50": routed_stats.p50_ms,
                      "p99": routed_stats.p99_ms},
        "routed_vs_direct_p50_ratio": ratio,
        # The per-message cost of the mux is sub-scheduler-quantum
        # (~tens of microseconds: two extra thread hops), so the raw
        # ratio swings 1.0x-1.5x run to run on a loaded machine.  The
        # gate is therefore a recorded budget, not the noisy ratio: the
        # splice must never cost more than ROUTED_BUDGET_RATIO x the
        # direct path.
        "overhead_budget_ratio": ROUTED_BUDGET_RATIO,
        "overhead_within_budget": int(ratio <= ROUTED_BUDGET_RATIO),
        "connections_per_pair": mux_links,
        "channels": channels,
    }


def run_graphplane_bench(rounds: int = 6, messages: int = 400,
                         seed: int = 1) -> dict:
    return {
        "failover": run_failover(rounds=rounds, seed=seed),
        "routed": run_routed_overhead(messages=messages),
    }


@pytest.mark.skipif(os.environ.get("REPRO_SOAK") != "1",
                    reason="graphplane bench is nightly-only "
                    "(set REPRO_SOAK=1)")
def test_graphplane_bench_meets_acceptance():
    payload = run_graphplane_bench(rounds=3, messages=150)
    failover = payload["failover"]
    assert failover["registrations_lost"] == 0
    assert failover["epoch_preserved"]
    assert failover["recovery_ms"]["p99"] < 5000.0
    routed = payload["routed"]
    assert routed["connections_per_pair"] == 1
    assert routed["channels"] >= 1


if __name__ == "__main__":
    import json

    print(json.dumps(run_graphplane_bench(), indent=2))
