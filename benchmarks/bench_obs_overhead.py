"""Observability overhead: 1 MB SHMROS trips, instrumentation on vs off.

The obs subsystem's budget is <5% added latency on the paper's 1 MB
SHMROS workload with every counter enabled (the traced wire prefix is
still *negotiated off* here -- tracing is a windowed debugging tool, the
always-on cost is the counters plus the per-frame stamp fields the
SHMROS doorbell carries unconditionally).

Run standalone via ``snapshot.py --experiment obs`` (writes
``BENCH_obs.json``), or under pytest-benchmark like the other bench
modules.
"""

from __future__ import annotations

import time

import pytest

import repro.obs as obs
from repro.bench.workloads import IMAGE_WORKLOADS

#: The paper's ~1 MB (800x600x24 bit) image.
ONE_MEGABYTE = IMAGE_WORKLOADS[1]


def _latency_rig(msg_class, workload):
    from bench_fig13_intra_machine import LatencyRig

    return LatencyRig(msg_class, workload, "shmros")


def _measure(msg_class, workload, iterations: int, warmup: int) -> dict:
    """Per-trip wall times (seconds) for a fresh rig in the current
    obs state; the rig is built *after* the state flip so connection
    handshakes negotiate accordingly."""
    rig = _latency_rig(msg_class, workload)
    try:
        for _ in range(warmup):
            rig.once()
        samples = []
        for _ in range(iterations):
            start = time.perf_counter()
            rig.once()
            samples.append(time.perf_counter() - start)
    finally:
        rig.close()
    samples.sort()
    count = len(samples)
    return {
        "count": count,
        "mean_ms": round(sum(samples) / count * 1000, 4),
        "p50_ms": round(samples[count // 2] * 1000, 4),
        "p99_ms": round(samples[min(count - 1, int(count * 0.99))] * 1000, 4),
    }


def run_overhead(iterations: int = 60, warmup: int = 10) -> dict:
    """Both states, one payload: the BENCH_obs.json body."""
    from repro.rossf import sfm_classes_for

    sfm_image, = sfm_classes_for("sensor_msgs/Image")
    was_enabled = obs.enabled()
    profiles = {}
    try:
        for key, state in (("disabled", False), ("enabled", True)):
            obs.set_enabled(state)
            profiles[key] = _measure(sfm_image, ONE_MEGABYTE,
                                     iterations, warmup)
    finally:
        obs.set_enabled(was_enabled)
    disabled_p50 = profiles["disabled"]["p50_ms"]
    enabled_p50 = profiles["enabled"]["p50_ms"]
    return {
        "payload_bytes": ONE_MEGABYTE.data_bytes,
        "transport": "shmros",
        "profiles": profiles,
        # Median-based for the same reason as BENCH_fig13: rare
        # scheduler stalls land in arbitrary cells.
        "overhead_pct": round(
            (enabled_p50 - disabled_p50) / disabled_p50 * 100, 2
        ),
        "overhead_basis": "p50",
        "budget_pct": 5.0,
    }


@pytest.fixture(params=["disabled", "enabled"])
def obs_state(request):
    was = obs.enabled()
    obs.set_enabled(request.param == "enabled")
    yield request.param
    obs.set_enabled(was)


def bench_obs_overhead_1mb_shmros(benchmark, image_classes, obs_state):
    rig = _latency_rig(image_classes["ROS-SF"], ONE_MEGABYTE)
    try:
        for _ in range(10):
            rig.once()
        benchmark(rig.once)
    finally:
        rig.close()
