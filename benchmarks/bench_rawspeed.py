"""Raw-speed microbenchmarks behind ``BENCH_rawspeed.json``.

Three measurements, one per hot-path layer (DESIGN.md "Hot path"):

- **field_access** — scalar get/set ns/op on a root SFM message through
  the compiled accessors vs the generic descriptors.  Interleaved
  min-of-repeats: each repeat times both strategies back to back so a
  scheduler stall cannot land on only one of them, and the minimum is
  the closest observable to the true cost on a shared machine.
- **doorbell** — 37-byte slot-announcement frames per second through a
  real socketpair with a consuming reader thread, coalesced
  (``send_frames``, 16 per sendmsg) vs frame-at-a-time
  (``send_slot_frame``).  This isolates the syscall amortization the
  SHMROS sender's drain-batch flush buys on small-message streams.
- **publish** — end-to-end SHMROS delivery rate (publish to callback,
  batching on) for a 64 B string and a 1 MB image, so the component
  wins above stay anchored to what the whole Python pipeline does.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.sfm.generator import generate_sfm_class
import repro.msg.library  # noqa: F401 - registers the standard types


# ----------------------------------------------------------------------
# Field access: codegen vs descriptors
# ----------------------------------------------------------------------
def _time_ns_per_op(fn, number: int) -> float:
    start = time.perf_counter_ns()
    fn(number)
    return (time.perf_counter_ns() - start) / number


def _interleaved_min(fast_fn, slow_fn, number: int,
                     repeats: int) -> tuple[float, float]:
    fast = slow = float("inf")
    for _ in range(repeats):
        fast = min(fast, _time_ns_per_op(fast_fn, number))
        slow = min(slow, _time_ns_per_op(slow_fn, number))
    return fast, slow


def _make_get(msg):
    def run(n: int) -> None:
        for _ in range(n):
            msg.height
    return run


def _make_set(msg):
    def run(n: int) -> None:
        for _ in range(n):
            msg.height = 480
    return run


def _make_cycle(msg):
    def run(n: int) -> None:
        for _ in range(n):
            msg.height = 480
            msg.height
    return run


def bench_field_access(number: int = 200_000, repeats: int = 7) -> dict:
    fast_cls = generate_sfm_class("sensor_msgs/Image", codegen=True)
    slow_cls = generate_sfm_class("sensor_msgs/Image", codegen=False)
    fast_msg, slow_msg = fast_cls(), slow_cls()
    fast_msg.height = slow_msg.height = 480
    out: dict = {"type": "sensor_msgs/Image", "field": "height",
                 "number": number, "repeats": repeats}
    for label, maker in (("get", _make_get), ("set", _make_set),
                         ("cycle", _make_cycle)):
        fast_ns, slow_ns = _interleaved_min(
            maker(fast_msg), maker(slow_msg), number, repeats
        )
        out[f"codegen_{label}_ns"] = round(fast_ns, 1)
        out[f"descriptor_{label}_ns"] = round(slow_ns, 1)
        out[f"speedup_{label}"] = round(slow_ns / fast_ns, 3)
    return out


# ----------------------------------------------------------------------
# Doorbell: coalesced vs frame-at-a-time
# ----------------------------------------------------------------------
def _doorbell_rate(batched: bool, total: int, batch_size: int = 16) -> float:
    from repro.ros.transport import shm

    tx, rx = socket.socketpair()
    seen = threading.Event()

    def consume() -> None:
        reader = shm.DoorbellReader(rx)
        for _ in range(total):
            reader.read_frame()
        seen.set()

    reader_thread = threading.Thread(target=consume, daemon=True)
    reader_thread.start()
    start = time.perf_counter()
    if batched:
        frame = [("slot", 1, seq, 64, 0, 0) for seq in range(batch_size)]
        for _ in range(total // batch_size):
            shm.send_frames(tx, frame)
    else:
        for seq in range(total):
            shm.send_slot_frame(tx, 1, seq, 64)
    seen.wait(60)
    elapsed = time.perf_counter() - start
    tx.close()
    rx.close()
    return total / elapsed


def bench_doorbell(total: int = 64_000, repeats: int = 3) -> dict:
    batched = unbatched = 0.0
    for _ in range(repeats):  # interleaved, best-of
        batched = max(batched, _doorbell_rate(True, total))
        unbatched = max(unbatched, _doorbell_rate(False, total))
    return {
        "frames": total,
        "batch_size": 16,
        "batched_frames_per_s": round(batched),
        "unbatched_frames_per_s": round(unbatched),
        "speedup": round(batched / unbatched, 3),
    }


# ----------------------------------------------------------------------
# End-to-end SHMROS delivery
# ----------------------------------------------------------------------
def _publish_rate(make_msg, count: int, shm_slots: int = 256) -> dict:
    from repro.ros import RosGraph
    from repro.ros.retry import wait_until

    msg = make_msg()
    got = [0]
    done = threading.Event()

    def callback(_msg) -> None:
        got[0] += 1
        if got[0] >= count:
            done.set()

    with RosGraph() as graph:
        pub_node = graph.node("rawspeed_pub")
        sub_node = graph.node("rawspeed_sub")
        subscriber = sub_node.subscribe("/rawspeed", type(msg), callback)
        publisher = pub_node.advertise(
            "/rawspeed", type(msg), queue_size=count + 8, shm_slots=shm_slots
        )
        wait_until(
            lambda: subscriber.stats()["transports"].get("SHMROS"),
            desc="SHMROS link",
        )
        start = time.perf_counter()
        for _ in range(count):
            publisher.publish(msg)
        completed = done.wait(120)
        elapsed = time.perf_counter() - start
        payload = publisher.stats()["bytes"] // max(count, 1)
    return {
        "messages": count,
        "payload_bytes": payload,
        "delivered": got[0],
        "completed": completed,
        "messages_per_s": round(count / elapsed, 1),
        "megabytes_per_s": round(count * payload / elapsed / 1e6, 2),
    }


def bench_publish(small_count: int = 4000, large_count: int = 200) -> dict:
    from repro.msg.library import Image, String

    def small() -> String:
        msg = String()
        msg.data = "x" * 64
        return msg

    def large() -> Image:
        msg = Image()
        msg.height = 1024
        msg.width = 1024
        msg.step = 1024
        msg.data = b"\x5a" * (1024 * 1024)
        return msg

    return {
        "string_64b": _publish_rate(small, small_count),
        "image_1mb": _publish_rate(large, large_count, shm_slots=8),
    }


def run_rawspeed(field_number: int = 200_000, doorbell_frames: int = 64_000,
                 small_count: int = 4000, large_count: int = 200) -> dict:
    return {
        "field_access": bench_field_access(number=field_number),
        "doorbell": bench_doorbell(total=doorbell_frames),
        "publish": bench_publish(small_count, large_count),
    }


if __name__ == "__main__":
    import json

    print(json.dumps(run_rawspeed(), indent=2))
