#!/usr/bin/env python
"""Reactor vs. thread-per-connection: bridge fan-out at scale.

The reactor tentpole replaces the gateway's two-threads-per-session
model with one selector loop and a small worker pool.  This bench pins
the two claims that justify the redesign:

* **Fan-out throughput** -- one internal publisher streams small
  ``std_msgs/String`` messages through the bridge to 768 raw-socket
  subscribers (the acceptance bar names 256+; at 768 the threaded
  server is carrying ~1550 threads and the scheduler cost dominates).
  The identical workload runs in two subprocesses, one per
  ``REPRO_REACTOR`` mode, and the per-connection delivery rate is
  compared.  Clients are raw sockets drained by a single selector loop
  so the client side adds no threads of its own and the measured win
  is the server's.

* **Sustain** -- 1000 concurrent subscriptions on the reactor server,
  every published message delivered to every client with zero drops
  and zero evictions, while the process grows by at most the reactor's
  fixed pool (1 loop + 3 workers).

The recorded ``meets_floor`` verdict (reactor >= 2x threaded
per-connection throughput at 256+ clients AND the 1k sustain holding) is
what ``benchmarks/check_regression.py`` gates -- the boolean, not the
raw ratio, because ratios swing with machine load.

Usage::

    PYTHONPATH=src python benchmarks/bench_reactor.py [--clients N]
        [--messages M] [--sustain-clients N] [--sustain-messages M]

``benchmarks/snapshot.py --experiment reactor`` wraps this into the
committed ``BENCH_reactor.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import selectors
import socket
import subprocess
import sys
import threading
import time

#: The acceptance floor: reactor per-connection fan-out throughput must
#: be at least this multiple of the threaded path's at 256+ clients.
SPEEDUP_FLOOR = 2.0

#: Thread growth allowed for the sustain witness: the reactor's own
#: fixed pool (1 loop + 3 workers).
THREAD_GROWTH_BOUND = 4

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src")


class _DeliveryCounter:
    """Count TAG_RAW delivery frames on one client socket.

    The bridge wire is ``u32le length | tag | body``; keepalives are
    zero-length frames and control replies are TAG_JSON, so a delivery
    is any non-empty frame whose tag byte is TAG_RAW (0x01).
    """

    __slots__ = ("buffer", "frames")

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.frames = 0

    def feed(self, data) -> None:
        self.buffer += data
        while len(self.buffer) >= 4:
            length = int.from_bytes(self.buffer[:4], "little")
            end = 4 + length
            if len(self.buffer) < end:
                break
            if length and self.buffer[4] == 0x01:
                self.frames += 1
            del self.buffer[:end]


def _connect_subscribers(server, topic: str, count: int) -> list:
    """Open ``count`` raw bridge connections subscribed to ``topic``
    with the raw codec.  Handshakes are pipelined (send all, then read
    all) so setup stays O(RTT), not O(count * RTT)."""
    from repro.bridge import protocol

    socks = []
    for _ in range(count):
        sock = socket.create_connection((server.host, server.port),
                                        timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        protocol.write_bridge_frame(
            sock, protocol.TAG_JSON,
            protocol.encode_json_op({"op": "hello", "codec": "raw"}))
        socks.append(sock)
    for sock in socks:
        _tag, body = protocol.read_bridge_frame(sock)
        op = protocol.decode_json_op(body)
        if op.get("op") != "hello_ok":
            raise RuntimeError(f"hello refused: {op}")
    for sock in socks:
        protocol.write_bridge_frame(
            sock, protocol.TAG_JSON,
            protocol.encode_json_op({
                "op": "subscribe", "topic": topic,
                "type": "std_msgs/String",
            }))
    for sock in socks:
        _tag, body = protocol.read_bridge_frame(sock)
        op = protocol.decode_json_op(body)
        if op.get("op") != "subscribe_ok":
            raise RuntimeError(f"subscribe refused: {op}")
    return socks


def _drive_fanout(pub, socks: list, messages: int,
                  window: int = 32, timeout: float = 180.0) -> dict:
    """Publish ``messages`` with a bounded in-flight window while one
    selector loop drains every client, until the slowest client has
    every message.  Returns elapsed plus the delivery floor."""
    from repro.msg.library import String

    sel = selectors.DefaultSelector()
    counters = []
    for sock in socks:
        sock.setblocking(False)
        counter = _DeliveryCounter()
        counters.append(counter)
        sel.register(sock, selectors.EVENT_READ, counter)
    msg = String()
    msg.data = "x" * 64
    published = 0
    deadline = time.monotonic() + timeout
    start = time.perf_counter()
    try:
        while True:
            floor = min(counter.frames for counter in counters)
            if floor >= messages:
                break
            # Windowed flow control: far enough ahead of the slowest
            # client to keep the server busy, bounded so queues (and the
            # threaded mode's memory) stay honest.
            while published < messages and published - floor < window:
                pub.publish(msg)
                published += 1
            for key, _events in sel.select(timeout=0.05):
                try:
                    chunk = key.fileobj.recv(1 << 18)
                except (BlockingIOError, InterruptedError):
                    continue
                if not chunk:
                    raise RuntimeError("bridge closed a bench client")
                key.data.feed(chunk)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"fan-out stalled at {floor}/{messages} deliveries")
        elapsed = time.perf_counter() - start
    finally:
        sel.close()
    return {
        "elapsed_s": round(elapsed, 4),
        "delivered": sum(counter.frames for counter in counters),
    }


def _fanout_cell(clients: int, messages: int) -> dict:
    """One fan-out measurement in the *current* process's mode."""
    from repro.bridge.server import BridgeServer
    from repro.msg.library import String
    from repro.ros import reactor
    from repro.ros.graph import RosGraph

    topic = "/reactor_fan"
    with RosGraph() as graph:
        with BridgeServer(graph.master_uri) as server:
            pub = graph.node("reactor_fan_pub").advertise(topic, String)
            socks = _connect_subscribers(server, topic, clients)
            try:
                if not pub.wait_for_subscribers(1, timeout=10.0):
                    raise RuntimeError("bridge tap never connected")
                threads = threading.active_count()
                result = _drive_fanout(pub, socks, messages)
            finally:
                for sock in socks:
                    sock.close()
    per_conn = messages / result["elapsed_s"]
    return {
        "mode": "reactor" if reactor.reactor_enabled() else "threaded",
        "clients": clients,
        "messages": messages,
        "elapsed_s": result["elapsed_s"],
        "delivered": result["delivered"],
        "threads_during": threads,
        "msgs_per_conn_per_s": round(per_conn, 2),
        "deliveries_per_s": round(per_conn * clients, 1),
    }


def _sustain_cell(clients: int, messages: int) -> dict:
    """The 1k-subscription sustain witness (reactor mode only): every
    delivery lands, nothing is shed or evicted, thread growth stays
    within the reactor's fixed pool."""
    from repro.bridge.server import BridgeServer
    from repro.msg.library import String
    from repro.ros.graph import RosGraph

    topic = "/reactor_sustain"
    with RosGraph() as graph:
        with BridgeServer(graph.master_uri) as server:
            before = threading.active_count()
            pub = graph.node("reactor_sustain_pub").advertise(topic, String)
            socks = _connect_subscribers(server, topic, clients)
            try:
                if not pub.wait_for_subscribers(1, timeout=10.0):
                    raise RuntimeError("bridge tap never connected")
                after = threading.active_count()
                result = _drive_fanout(pub, socks, messages,
                                       window=4, timeout=300.0)
                snap = server.stats_snapshot()
                dropped = sum(sub["dropped"]
                              for sub in snap["subscriptions"])
                evictions = snap["evictions"]
            finally:
                for sock in socks:
                    sock.close()
    expected = clients * messages
    growth = after - before
    return {
        "clients": clients,
        "messages": messages,
        "elapsed_s": result["elapsed_s"],
        "delivered": result["delivered"],
        "expected": expected,
        "dropped": dropped,
        "evictions": evictions,
        "thread_growth": growth,
        "sustained": bool(
            result["delivered"] >= expected
            and dropped == 0
            and evictions == 0
            and growth <= THREAD_GROWTH_BOUND
        ),
    }


def _run_child(child: str, mode: str, clients: int, messages: int,
               timeout: float = 600.0) -> dict:
    """Run one cell in a subprocess so each mode resolves REPRO_REACTOR
    fresh (the switch is read once per process)."""
    env = dict(os.environ)
    env["REPRO_REACTOR"] = mode
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", child,
         "--clients", str(clients), "--messages", str(messages)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{child} child (REPRO_REACTOR={mode}) failed:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def run_reactor_bench(clients: int = 768, messages: int = 100,
                      sustain_clients: int = 1000,
                      sustain_messages: int = 5) -> dict:
    reactor = _run_child("fanout", "1", clients, messages)
    print("  ran", reactor, flush=True)
    threaded = _run_child("fanout", "0", clients, messages)
    print("  ran", threaded, flush=True)
    sustain = _run_child("sustain", "1", sustain_clients, sustain_messages)
    print("  ran", sustain, flush=True)
    speedup = (reactor["msgs_per_conn_per_s"]
               / threaded["msgs_per_conn_per_s"])
    return {
        "fanout": {"reactor": reactor, "threaded": threaded},
        "sustain": sustain,
        "speedup_per_conn": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "meets_floor": bool(
            speedup >= SPEEDUP_FLOOR and sustain["sustained"]
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=768)
    parser.add_argument("--messages", type=int, default=100)
    parser.add_argument("--sustain-clients", type=int, default=1000)
    parser.add_argument("--sustain-messages", type=int, default=5)
    parser.add_argument("--child", choices=("fanout", "sustain"),
                        help="internal: run one cell in this process's "
                             "REPRO_REACTOR mode and print its JSON")
    args = parser.parse_args(argv)
    if args.child:
        if args.child == "fanout":
            cell = _fanout_cell(args.clients, args.messages)
        else:
            cell = _sustain_cell(args.clients, args.messages)
        print(json.dumps(cell))
        return 0
    payload = run_reactor_bench(
        clients=args.clients, messages=args.messages,
        sustain_clients=args.sustain_clients,
        sustain_messages=args.sustain_messages,
    )
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
