"""Table 1: the applicability study.

Analyzes the generated ROS-style corpus (103 files using the five studied
message classes plus filler modules) and checks the resulting table
against the paper's numbers exactly; the benchmark time is the analyzer's
cost over the whole corpus.
"""

from __future__ import annotations

from repro.converter.report import run_applicability_study

PAPER_TABLE1 = {
    "sensor_msgs/Image": (49, 40, 8, 6, 0),
    "sensor_msgs/CompressedImage": (7, 2, 5, 5, 0),
    "sensor_msgs/PointCloud": (14, 0, 13, 12, 2),
    "sensor_msgs/PointCloud2": (15, 1, 7, 7, 8),
    "sensor_msgs/LaserScan": (18, 5, 13, 12, 1),
}


def bench_applicability_study(benchmark):
    report = benchmark(run_applicability_study)
    for class_name, expected in PAPER_TABLE1.items():
        assert report.row(class_name).as_tuple() == expected, class_name
    benchmark.extra_info["files_scanned"] = report.files_scanned
    for class_name, expected in PAPER_TABLE1.items():
        benchmark.extra_info[class_name.split("/")[-1]] = str(expected)
