#!/usr/bin/env python
"""Micro-benchmarks for the unsized zero-copy machinery.

Two sections, both folded into ``BENCH_fig13.json`` by ``snapshot.py``:

``unsized``
    Republish of a *grown* ~1 MB vector message through the SHMROS slot
    ring: the seed's reseg-copy path (:meth:`ShmRingWriter.write`, a
    full-payload copy each publish) against the sticky-slot delta path
    (:meth:`ShmRingWriter.write_update`, which rewrites only the
    skeleton and the grown tail in place).  The whole point of routing
    growth through slabs is that a republish after a tail-grow copies
    kilobytes, not megabytes -- the speedup here is that claim measured.

``tzc_remote``
    A remote (socket) trip at >= 1 MB: classic TCPROS -- generated
    serialize, frame, read, generated deserialize -- against the TZC
    split -- no serialization, control segment plus bulk iovecs sent in
    one vectored syscall, reassembled straight into an adopted SFM
    buffer.  Ping-pong over a loopback socketpair; each sample covers
    encode + send + receive + decode, acknowledged by the consumer
    after the decode so both costs land inside the sample.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.bench.stats import LatencyStats, summarize
from repro.ros.transport import shm, tcpros, tzc


def _stats_entry(stats: LatencyStats) -> dict:
    return {
        "count": stats.count,
        "mean_ms": round(stats.mean_ms, 4),
        "std_ms": round(stats.std_ms, 4),
        "p50_ms": round(stats.p50_ms, 4),
        "p99_ms": round(stats.p99_ms, 4),
    }


# ----------------------------------------------------------------------
# unsized: grown-vector republish through the slot ring
# ----------------------------------------------------------------------
START_BYTES = 1 << 20  # the grown vector: ~1 MB of content
GROW_BYTES = 1024      # appended per republish (the dirty tail)
PREFIX_BYTES = 96      # stand-in for the SFM skeleton, always rewritten
UNSIZED_FLOOR = 2.0    # delta republish must beat the full copy by this
TZC_FLOOR = 1.5        # TZC must beat classic TCPROS by this at >= 1 MB


def _ring_samples(delta: bool, iterations: int) -> tuple[list, dict]:
    """Run one arm: ``iterations`` grow-then-republish rounds."""
    slot_bytes = START_BYTES + GROW_BYTES * (iterations + 2)
    ring = shm.ShmRingWriter(slot_count=4, slot_bytes=slot_bytes)
    try:
        payload = bytearray(START_BYTES)
        payload[:] = bytes(range(256)) * (START_BYTES // 256)
        reader, key = object(), object()
        # Prime: the first publish is a full copy on both arms (the delta
        # arm's copy-on-write into its sticky slot).
        if delta:
            slot, seq, _ = ring.write_update(
                payload, (reader,), key, PREFIX_BYTES, PREFIX_BYTES
            )
        else:
            slot, seq, _ = ring.write(payload, (reader,))
        ring.release(slot, seq, reader)
        samples: list[float] = []
        for _ in range(iterations):
            stable = len(payload)
            payload += b"\xaa" * GROW_BYTES  # the tail-grow
            begin = time.perf_counter()
            if delta:
                result = ring.write_update(
                    payload, (reader,), key, PREFIX_BYTES, stable
                )
            else:
                result = ring.write(payload, (reader,))
            samples.append(time.perf_counter() - begin)
            slot, seq, _ = result
            ring.release(slot, seq, reader)
        counters = {
            "delta_writes": ring.delta_writes,
            "delta_bytes": ring.delta_bytes,
        }
        return samples, counters
    finally:
        ring.close()


def run_unsized(iterations: int) -> dict:
    """Grown 1 MB republish: full-copy ring writes vs sticky deltas."""
    if not shm.shm_available() or shm.env_disabled():
        return {"skipped": "shared memory unavailable"}
    rounds = max(50, iterations * 5)
    warmup = max(3, rounds // 10)
    full_samples, _ = _ring_samples(delta=False, iterations=rounds)
    delta_samples, counters = _ring_samples(delta=True, iterations=rounds)
    full = summarize("unsized full-copy", full_samples, warmup)
    delta = summarize("unsized delta", delta_samples, warmup)
    return {
        "payload_bytes": START_BYTES,
        "grow_bytes_per_publish": GROW_BYTES,
        "iterations": rounds,
        "full_copy": _stats_entry(full),
        "delta": _stats_entry(delta),
        "delta_writes": counters["delta_writes"],
        "delta_bytes_total": counters["delta_bytes"],
        "speedup": round(full.p50_ms / delta.p50_ms, 3),
        "speedup_basis": "p50",
        # The acceptance floor: delta republish must stay >= 2x over the
        # reseg copy.  The measured ratio (tens of x) swings with machine
        # load, so the regression gate judges this verdict, not the raw
        # ratio (the routed.overhead_within_budget pattern).
        "floor": UNSIZED_FLOOR,
        "meets_floor": int(full.p50_ms / delta.p50_ms >= UNSIZED_FLOOR),
    }


# ----------------------------------------------------------------------
# tzc_remote: classic TCPROS vs TZC split at >= 1 MB over loopback
# ----------------------------------------------------------------------
IMAGE_SIDE = 592  # 592 * 592 * 3 = ~1.05 MB of pixel data


def _make_plain_image():
    from repro.msg import library

    msg = library.Image()
    msg.height = IMAGE_SIDE
    msg.width = IMAGE_SIDE
    msg.encoding = "rgb8"
    msg.step = IMAGE_SIDE * 3
    msg.data = bytes(range(256)) * (IMAGE_SIDE * IMAGE_SIDE * 3 // 256 + 1)
    msg.data = msg.data[: IMAGE_SIDE * IMAGE_SIDE * 3]
    return msg


def _make_sfm_image():
    from repro.sfm.generator import sfm_class_for

    cls = sfm_class_for("sensor_msgs/Image")
    msg = cls()
    msg.height = IMAGE_SIDE
    msg.width = IMAGE_SIDE
    msg.encoding = "rgb8"
    msg.step = IMAGE_SIDE * 3
    data = bytes(range(256)) * (IMAGE_SIDE * IMAGE_SIDE * 3 // 256 + 1)
    msg.data = data[: IMAGE_SIDE * IMAGE_SIDE * 3]
    return msg


def _pingpong(iterations: int, produce, consume) -> list[float]:
    """Measure ``iterations`` produce->consume round trips; the consumer
    acknowledges only after its decode, so the sample covers the whole
    remote path."""
    left, right = socket.socketpair()
    samples: list[float] = []
    failure: list[BaseException] = []

    def consumer() -> None:
        try:
            for _ in range(iterations):
                consume(right)
                right.sendall(b"\x01")
        except BaseException as exc:  # surfaced by the main thread
            failure.append(exc)

    thread = threading.Thread(target=consumer, daemon=True)
    thread.start()
    try:
        for _ in range(iterations):
            begin = time.perf_counter()
            produce(left)
            if left.recv(1) != b"\x01":
                raise RuntimeError("consumer died mid-benchmark")
            samples.append(time.perf_counter() - begin)
    finally:
        left.close()
        thread.join(timeout=5.0)
        right.close()
    if failure:
        raise failure[0]
    return samples


def run_tzc_remote(iterations: int) -> dict:
    """>= 1 MB loopback trip: classic serialize/frame vs TZC split."""
    from repro.ros.codecs import RosCodec
    from repro.rossf.serializer import SfmCodec

    # A ratio of two p50s wants plenty of samples: each round trip is
    # sub-millisecond, so tripling the rounds is cheap and keeps the
    # gated speedup stable under CI scheduler noise.
    rounds = max(90, iterations * 3)
    warmup = max(5, rounds // 10)

    plain = _make_plain_image()
    ros_codec = RosCodec(type(plain))

    def classic_produce(sock) -> None:
        wire, _release = ros_codec.encode(plain)
        tcpros.write_frame(sock, wire)

    def classic_consume(sock) -> None:
        wire = tcpros.read_frame(sock)
        ros_codec.decode(wire)

    classic = summarize(
        "tzc-remote classic",
        _pingpong(rounds, classic_produce, classic_consume),
        warmup,
    )

    sfm_msg = _make_sfm_image()
    sfm_codec = SfmCodec(type(sfm_msg))
    layout = type(sfm_msg)._layout
    budget = tzc.BulkBudget()

    def tzc_produce(sock) -> None:
        payload, release = sfm_codec.encode(sfm_msg)
        try:
            parts = tzc.split_message(layout, payload, len(payload))
            tzc.send_split(sock, parts)
        finally:
            if release is not None:
                release()

    def tzc_consume(sock) -> None:
        buffer, order, _trace, _stamp = tzc.read_split(sock, budget)
        sfm_codec.decode_adopted(buffer, order)

    split = summarize(
        "tzc-remote tzc",
        _pingpong(rounds, tzc_produce, tzc_consume),
        warmup,
    )
    return {
        "payload_bytes": IMAGE_SIDE * IMAGE_SIDE * 3,
        "iterations": rounds,
        "classic": _stats_entry(classic),
        "tzc": _stats_entry(split),
        "speedup": round(classic.p50_ms / split.p50_ms, 3),
        "speedup_basis": "p50",
        # Same floor-verdict gating as ``unsized``: the ratio inflates
        # several-fold on loaded machines (the serializer arm is
        # CPU-bound, the TZC arm syscall-bound), so gate the contract.
        "floor": TZC_FLOOR,
        "meets_floor": int(classic.p50_ms / split.p50_ms >= TZC_FLOOR),
    }


def main() -> int:
    unsized = run_unsized(40)
    remote = run_tzc_remote(40)
    if "skipped" in unsized:
        print(f"unsized: skipped ({unsized['skipped']})")
    else:
        print(
            f"unsized republish (grown {unsized['payload_bytes']} B): "
            f"delta {unsized['speedup']:.2f}x over full copy "
            f"(p50 {unsized['full_copy']['p50_ms']:.3f} ms -> "
            f"{unsized['delta']['p50_ms']:.3f} ms)"
        )
    print(
        f"tzc remote ({remote['payload_bytes']} B loopback): "
        f"{remote['speedup']:.2f}x over classic TCPROS "
        f"(p50 {remote['classic']['p50_ms']:.3f} ms -> "
        f"{remote['tzc']['p50_ms']:.3f} ms)"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
