#!/usr/bin/env python
"""Guard the committed benchmark headlines against regressions.

Discovers every ``BENCH_*.json`` present in the current directory,
pairs each with the committed baseline of the same name at the
repository root, and fails when a headline metric regresses by more
than the tolerance (default 5%).  The headline set deliberately sticks
to *ratio* metrics (speedups, delivery ratios, overhead budgets)
rather than absolute latencies: ratios compare a measurement against a
same-run control, so they survive the machine-to-machine and
run-to-run variance that makes raw milliseconds meaningless in CI.

Usage::

    PYTHONPATH=src python benchmarks/snapshot.py --experiment rawspeed \
        --out /tmp/bench/BENCH_rawspeed.json
    python benchmarks/check_regression.py --current-dir /tmp/bench

Snapshots without a baseline (and baselines without a fresh snapshot)
are reported and skipped, so the checker only ever judges what both
sides actually measured.  A ``BENCH_*.json`` with no registered
extractor is an error: every committed experiment must be gated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Directions: ``higher`` means the metric must not *drop* more than
#: the tolerance; ``lower`` the inverse.  Extractors return
#: ``{metric: (value, direction)}`` so one experiment can mix both.


def _fig13_headlines(doc: dict) -> dict:
    metrics = {
        f"workloads.{label}.shmros_speedup_vs_tcpros":
            (entry["shmros_speedup_vs_tcpros"], "higher")
        for label, entry in doc.get("workloads", {}).items()
    }
    # Unsized zero-copy satellites (absent in pre-slab baselines, and
    # "unsized" is skipped where shared memory is unavailable).  The raw
    # speedups swing several-fold with machine load, so the gate judges
    # the recorded acceptance-floor verdict -- >= 2x for the delta
    # republish, >= 1.5x for TZC -- not the ratio itself (the
    # routed.overhead_within_budget pattern).
    unsized = doc.get("unsized") or {}
    if "meets_floor" in unsized:
        metrics["unsized.meets_floor"] = (unsized["meets_floor"], "higher")
    tzc_remote = doc.get("tzc_remote") or {}
    if "meets_floor" in tzc_remote:
        metrics["tzc_remote.meets_floor"] = (
            tzc_remote["meets_floor"], "higher"
        )
    return metrics


def _bridge_headlines(doc: dict) -> dict:
    return {
        "selective_vs_full_json_wire_ratio":
            (doc["selective_vs_full_json_wire_ratio"], "higher"),
    }


def _chaos_headlines(doc: dict) -> dict:
    return {"recovery_ms.p50": (doc["recovery_ms"]["p50"], "lower")}


def _rawspeed_headlines(doc: dict) -> dict:
    access = doc["field_access"]
    return {
        "field_access.speedup_get": (access["speedup_get"], "higher"),
        "field_access.speedup_set": (access["speedup_set"], "higher"),
        "field_access.speedup_cycle": (access["speedup_cycle"], "higher"),
        "doorbell.speedup": (doc["doorbell"]["speedup"], "higher"),
        "publish.string_64b.messages_per_s":
            (doc["publish"]["string_64b"]["messages_per_s"], "higher"),
        "publish.image_1mb.megabytes_per_s":
            (doc["publish"]["image_1mb"]["megabytes_per_s"], "higher"),
    }


def _fleet_headlines(doc: dict) -> dict:
    metrics = {
        f"sweep.{dashboards}.delivery_ratio":
            (cell["delivery_ratio"], "higher")
        for dashboards, cell in doc.get("sweep", {}).items()
    }
    slow = doc.get("slow_client")
    if slow:
        # Healthy-client latency degradation caused by stalled clients;
        # eviction keeps it bounded, so growth here is a regression.
        # Median-based (see bench_fleet.run_slow_client): a gated p99
        # at millisecond latencies would flake on scheduler stalls.
        metrics["slow_client.p50_ratio"] = (slow["p50_ratio"], "lower")
        # The policy itself must keep firing: both stalled clients
        # evicted, every run.
        metrics["slow_client.evictions"] = (slow["evictions"], "higher")
    return metrics


def _graphplane_headlines(doc: dict) -> dict:
    failover = doc["failover"]
    routed = doc["routed"]
    return {
        # Absolute, like the chaos gate it must stay comparable to.
        "failover.recovery_ms.p50":
            (failover["recovery_ms"]["p50"], "lower"),
        # Zero-loss is part of the contract: any loss at all regresses
        # past any tolerance against a baseline of 0... which the ratio
        # math skips (division by zero), so gate its inverse: the
        # number of rounds with zero loss must not drop.
        "failover.clean_rounds":
            (failover["rounds"] - min(failover["rounds"],
                                      failover["registrations_lost"]),
             "higher"),
        # Mux overhead self-gates against its recorded budget (like the
        # obs overhead): the raw routed/direct p50 ratio is a few tens
        # of microseconds of thread-hop cost and swings 1.0x-1.5x run
        # to run, so gate the budget verdict, not the ratio.
        "routed.overhead_within_budget":
            (routed["overhead_within_budget"], "higher"),
        # M topic links between one host pair must stay on exactly one
        # connection; 2 against a baseline of 1 is +100%.
        "routed.connections_per_pair":
            (routed["connections_per_pair"], "lower"),
    }


def _reactor_headlines(doc: dict) -> dict:
    sustain = doc["sustain"]
    return {
        # The tentpole verdict: reactor >= 2x threaded per-connection
        # fan-out throughput at 256+ clients.  The raw speedup swings
        # several-fold with scheduler load (the threaded side is >1500
        # threads deep), so -- like unsized.meets_floor -- the gate
        # judges the recorded acceptance-floor verdict, not the ratio.
        "meets_floor": (doc["meets_floor"], "higher"),
        # The 1k-subscription sustain: every delivery landed, nothing
        # shed, nothing evicted, thread growth within the fixed pool.
        "sustain.sustained": (sustain["sustained"], "higher"),
        # 999 against a baseline of 1000 is -0.1%: any eroded client
        # count fails past the tolerance only if someone shrinks the
        # bench, which is exactly the silent-cap change to catch.
        "sustain.clients": (sustain["clients"], "higher"),
    }


EXTRACTORS = {
    "fig13": _fig13_headlines,
    "bridge": _bridge_headlines,
    "chaos": _chaos_headlines,
    "graphplane": _graphplane_headlines,
    "rawspeed": _rawspeed_headlines,
    "fleet": _fleet_headlines,
    "reactor": _reactor_headlines,
    "obs": None,  # self-gating: see check_obs_budget
}


def check_experiment(name: str, baseline: dict, current: dict,
                     tolerance: float) -> list[str]:
    extractor = EXTRACTORS[name]
    failures: list[str] = []
    base_metrics = extractor(baseline)
    new_metrics = extractor(current)
    for metric, (base_value, direction) in sorted(base_metrics.items()):
        entry = new_metrics.get(metric)
        if entry is None or not base_value:
            continue
        new_value = entry[0]
        if direction == "higher":
            regression = (base_value - new_value) / base_value * 100.0
        else:
            regression = (new_value - base_value) / base_value * 100.0
        verdict = "FAIL" if regression > tolerance else "ok"
        print(
            f"  [{verdict}] {name}:{metric}: baseline {base_value:g}, "
            f"current {new_value:g} ({regression:+.1f}% regression)"
        )
        if regression > tolerance:
            failures.append(f"{name}:{metric}")
    return failures


def check_obs_budget(current: dict) -> list[str]:
    """The obs experiment carries its own acceptance: measured overhead
    must stay inside the recorded budget (the committed baseline's value
    hovers around zero, so a ratio against it would be noise)."""
    overhead = current["overhead_pct"]
    budget = current["budget_pct"]
    verdict = "FAIL" if overhead > budget else "ok"
    print(f"  [{verdict}] obs:overhead_pct: {overhead:+.2f}% "
          f"(budget {budget:.0f}%)")
    return ["obs:overhead_pct"] if overhead > budget else []


def _experiment_names(*dirs: Path) -> list[str]:
    names: set[str] = set()
    for directory in dirs:
        for path in directory.glob("BENCH_*.json"):
            names.add(path.stem[len("BENCH_"):])
    return sorted(names)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--current-dir", type=Path, required=True,
                        help="directory with freshly generated snapshots")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="max allowed regression, percent")
    args = parser.parse_args(argv)

    failures: list[str] = []
    checked = 0
    for name in _experiment_names(args.baseline_dir, args.current_dir):
        if name not in EXTRACTORS:
            print(f"BENCH_{name}.json has no registered headline "
                  f"extractor; add one to benchmarks/check_regression.py")
            failures.append(f"{name}:unregistered")
            continue
        baseline_path = args.baseline_dir / f"BENCH_{name}.json"
        current_path = args.current_dir / f"BENCH_{name}.json"
        if not baseline_path.exists() or not current_path.exists():
            print(f"skipping {name}: no "
                  f"{'baseline' if not baseline_path.exists() else 'current'}"
                  f" snapshot")
            continue
        print(f"checking {name}:")
        current = json.loads(current_path.read_text())
        checked += 1
        if name == "obs":
            failures += check_obs_budget(current)
        else:
            baseline = json.loads(baseline_path.read_text())
            failures += check_experiment(
                name, baseline, current, args.tolerance
            )
    if failures:
        print(f"{len(failures)} headline metric(s) regressed beyond "
              f"{args.tolerance:.0f}%: {', '.join(failures)}")
        return 1
    if not checked:
        print("nothing to check")
        return 1
    print(f"all headline metrics within {args.tolerance:.0f}% "
          f"across {checked} experiment(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
