"""Shared benchmark fixtures.

Every benchmark tunes the allocator first (see
:mod:`repro.bench.allocator`): the experiments move multi-megabyte buffers
every iteration, and default glibc mmap behaviour would measure page
faults instead of the serialization costs under study.
"""

from __future__ import annotations

import pytest

import repro.msg.library  # noqa: F401  (registers the standard library)
from repro.bench.allocator import tune_for_large_messages


@pytest.fixture(scope="session", autouse=True)
def tuned_allocator():
    tune_for_large_messages()


@pytest.fixture(scope="session")
def image_classes():
    from repro.msg import library
    from repro.rossf import sfm_classes_for

    sfm_image, = sfm_classes_for("sensor_msgs/Image")
    return {"ROS": library.Image, "ROS-SF": sfm_image}
