#!/usr/bin/env python
"""Quick committed snapshots of the headline experiments.

``--experiment fig13`` (default) runs the intra-machine latency
experiment across both transports (loopback TCPROS and the SHMROS
shared-memory ring) at reduced iteration counts and writes
``BENCH_fig13.json`` at the repository root, so CI and reviewers see the
transport comparison without a full paper-scale run.

``--experiment bridge`` runs ``bench_bridge_fanout.py`` (gateway fan-out,
full-message vs. selective-field subscriptions) and writes
``BENCH_bridge.json``.

``--experiment obs`` runs ``bench_obs_overhead.py`` (1 MB SHMROS trips
with the repro.obs instrumentation enabled vs disabled) and writes
``BENCH_obs.json``; the recorded ``overhead_pct`` must stay under
``budget_pct`` (5%).

``--experiment chaos`` runs ``bench_chaos_soak.py`` (repeated link
severs and amnesiac master bounces under a 100 Hz stream) and writes
``BENCH_chaos.json`` with recovery-time p50/p99 and total loss.

``--experiment rawspeed`` runs ``bench_rawspeed.py`` (compiled accessor
vs descriptor field access, coalesced vs frame-at-a-time doorbell,
end-to-end SHMROS delivery at 64 B and 1 MiB) and writes
``BENCH_rawspeed.json``.

``--experiment fleet`` runs ``bench_fleet.py`` (N robots x M dashboard
clients through the WebSocket front door: saturation sweep up to 256
concurrent ws subscribers plus the slow-client eviction witness) and
writes ``BENCH_fleet.json``.

``--experiment reactor`` runs ``bench_reactor.py`` (bridge fan-out at
768 raw-socket subscribers, reactor vs thread-per-connection, plus the
1000-subscription sustain witness) and writes ``BENCH_reactor.json``;
the recorded ``meets_floor`` verdict (>= 2x per-connection throughput
and a clean sustain) is what CI gates.

``--experiment graphplane`` runs ``bench_graphplane.py`` (shard-leader
kill/promote rounds with recovery stats and zero-loss accounting, plus
the RouteD mux latency-ratio and connection-count check) and writes
``BENCH_graphplane.json``.

Usage::

    PYTHONPATH=src python benchmarks/snapshot.py [--iterations N] [--out PATH]
    PYTHONPATH=src python benchmarks/snapshot.py --experiment bridge
    PYTHONPATH=src python benchmarks/snapshot.py --experiment obs
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.bench.harness import IntraMachineExperiment
from repro.bench.stats import improvement_percent
from repro.bench.workloads import IMAGE_WORKLOADS


def run_snapshot(iterations: int) -> dict:
    experiment = IntraMachineExperiment(
        iterations=iterations,
        warmup=5,
        rate_hz=None,
        sync=True,  # stop-and-wait: no queueing noise on small machines
        stamp_at_publish=True,  # measure the transport trip, not construction
        workloads=IMAGE_WORKLOADS,
        transports=("tcpros", "shmros"),
    )
    results = experiment.run()
    payload: dict = {
        "experiment": "fig13_intra_machine",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "iterations": iterations,
        "workloads": {},
    }
    for workload in IMAGE_WORKLOADS:
        per_profile = results[workload.label]
        entry: dict = {"payload_bytes": workload.data_bytes, "profiles": {}}
        for key, stats in per_profile.items():
            entry["profiles"][key] = {
                "count": stats.count,
                "mean_ms": round(stats.mean_ms, 4),
                "std_ms": round(stats.std_ms, 4),
                "p50_ms": round(stats.p50_ms, 4),
                "p99_ms": round(stats.p99_ms, 4),
            }
        # The two headline ratios: what SFM saves over serialization, and
        # what shared memory saves over loopback sockets.
        entry["rossf_vs_ros_tcpros_pct"] = round(
            improvement_percent(
                per_profile["ROS@tcpros"], per_profile["ROS-SF@tcpros"]
            ),
            2,
        )
        # Median-based: on a small shared machine rare multi-ms scheduler
        # stalls land in arbitrary cells and would dominate a mean ratio.
        entry["shmros_speedup_vs_tcpros"] = round(
            per_profile["ROS-SF@tcpros"].p50_ms
            / per_profile["ROS-SF@shmros"].p50_ms,
            3,
        )
        entry["speedup_basis"] = "p50"
        payload["workloads"][workload.label] = entry
    # The unsized zero-copy satellites ride in the same snapshot: the
    # grown-vector delta republish and the TZC remote split.
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_unsized_tzc

    payload["unsized"] = bench_unsized_tzc.run_unsized(iterations)
    payload["tzc_remote"] = bench_unsized_tzc.run_tzc_remote(iterations)
    return payload


def run_bridge_snapshot(messages: int) -> dict:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_bridge_fanout

    payload: dict = {
        "experiment": "bridge_fanout",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "messages": messages,
    }
    payload.update(bench_bridge_fanout.run_fanout(messages))
    return payload


def run_obs_snapshot(iterations: int) -> dict:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_obs_overhead

    payload: dict = {
        "experiment": "obs_overhead",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "iterations": iterations,
    }
    payload.update(bench_obs_overhead.run_overhead(iterations))
    return payload


def run_rawspeed_snapshot(field_number: int, doorbell_frames: int,
                          small_count: int, large_count: int) -> dict:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_rawspeed

    payload: dict = {
        "experiment": "rawspeed",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
    }
    payload.update(bench_rawspeed.run_rawspeed(
        field_number=field_number, doorbell_frames=doorbell_frames,
        small_count=small_count, large_count=large_count,
    ))
    return payload


def run_fleet_snapshot(sweep, robots: int, duration: float,
                       slow: bool = True) -> dict:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_fleet

    payload: dict = {
        "experiment": "fleet",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "robots": robots,
        "duration_s": duration,
    }
    payload.update(bench_fleet.run_fleet_bench(
        sweep=sweep, robots=robots, duration=duration, slow=slow,
    ))
    return payload


def run_reactor_snapshot(clients: int, messages: int,
                         sustain_clients: int,
                         sustain_messages: int) -> dict:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_reactor

    payload: dict = {
        "experiment": "reactor",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
    }
    payload.update(bench_reactor.run_reactor_bench(
        clients=clients, messages=messages,
        sustain_clients=sustain_clients,
        sustain_messages=sustain_messages,
    ))
    return payload


def run_chaos_snapshot(rounds: int, seed: int = 1) -> dict:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_chaos_soak

    payload: dict = {
        "experiment": "chaos_soak",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
    }
    payload.update(bench_chaos_soak.run_soak(rounds=rounds, seed=seed))
    return payload


def run_graphplane_snapshot(rounds: int, messages: int,
                            seed: int = 1) -> dict:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    import bench_graphplane

    payload: dict = {
        "experiment": "graphplane",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
    }
    payload.update(bench_graphplane.run_graphplane_bench(
        rounds=rounds, messages=messages, seed=seed,
    ))
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment",
                        choices=("fig13", "bridge", "obs", "chaos",
                                 "rawspeed", "fleet", "graphplane",
                                 "reactor"),
                        default="fig13")
    parser.add_argument("--iterations", type=int, default=40,
                        help="fig13/obs iterations")
    parser.add_argument("--messages", type=int, default=8,
                        help="bridge messages per fan-out cell")
    parser.add_argument("--rounds", type=int, default=10,
                        help="chaos soak fault/recovery rounds")
    parser.add_argument("--robots", type=int, default=2,
                        help="fleet robot count")
    parser.add_argument("--sweep", default="8,64,256",
                        help="fleet dashboard counts, comma separated")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="fleet measurement window per cell, seconds")
    parser.add_argument("--no-slow", action="store_true",
                        help="fleet: skip the slow-client witness")
    parser.add_argument("--clients", type=int, default=768,
                        help="reactor fan-out client count (256+)")
    parser.add_argument("--sustain-clients", type=int, default=1000,
                        help="reactor sustain subscription count")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    if args.experiment == "fleet":
        out = args.out or root / "BENCH_fleet.json"
        sweep = tuple(
            int(part) for part in args.sweep.split(",") if part
        )
        payload = run_fleet_snapshot(
            sweep=sweep, robots=args.robots, duration=args.duration,
            slow=not args.no_slow,
        )
        out.write_text(json.dumps(payload, indent=2) + "\n")
        for dashboards, cell in payload["sweep"].items():
            latency = cell["latency_ms"]
            print(
                f"fleet {payload['robots']}x{dashboards}: "
                f"{cell['delivered_per_s']:,.0f} msg/s delivered "
                f"(ratio {cell['delivery_ratio']:.3f}), "
                f"p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms, "
                f"{cell['evictions']} eviction(s)"
            )
        slow = payload.get("slow_client")
        if slow:
            print(
                f"slow-client witness: {slow['evictions']} eviction(s), "
                f"healthy p99 {slow['contended_p99_ms']:.2f} ms vs "
                f"baseline {slow['baseline_p99_ms']:.2f} ms "
                f"({slow['p99_ratio']:.2f}x; gated on p50 "
                f"{slow['p50_ratio']:.2f}x)"
            )
        print(f"wrote {out}")
        return 0
    if args.experiment == "rawspeed":
        out = args.out or root / "BENCH_rawspeed.json"
        payload = run_rawspeed_snapshot(
            field_number=args.iterations * 5000,
            doorbell_frames=args.iterations * 1600,
            small_count=args.iterations * 100,
            large_count=args.iterations * 5,
        )
        out.write_text(json.dumps(payload, indent=2) + "\n")
        access = payload["field_access"]
        doorbell = payload["doorbell"]
        print(
            f"compiled accessors: get {access['speedup_get']:.2f}x, "
            f"set {access['speedup_set']:.2f}x, "
            f"cycle {access['speedup_cycle']:.2f}x over descriptors"
        )
        print(
            f"doorbell batching: {doorbell['speedup']:.2f}x frames/s "
            f"({doorbell['batched_frames_per_s']:,} vs "
            f"{doorbell['unbatched_frames_per_s']:,})"
        )
        small = payload["publish"]["string_64b"]
        large = payload["publish"]["image_1mb"]
        print(
            f"SHMROS end to end: {small['messages_per_s']:,.0f} msg/s at "
            f"{small['payload_bytes']} B, {large['megabytes_per_s']:.0f} "
            f"MB/s at 1 MiB"
        )
        print(f"wrote {out}")
        return 0
    if args.experiment == "graphplane":
        out = args.out or root / "BENCH_graphplane.json"
        payload = run_graphplane_snapshot(args.rounds, args.messages * 50)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        failover = payload["failover"]
        routed = payload["routed"]
        print(
            f"shard failover over {failover['rounds']} rounds: recovery "
            f"p50={failover['recovery_ms']['p50']:.0f} ms "
            f"p99={failover['recovery_ms']['p99']:.0f} ms, "
            f"re-register p50={failover['reregister_ms']['p50']:.0f} ms, "
            f"{failover['registrations_lost']} registration(s) lost, "
            f"epoch preserved: {failover['epoch_preserved']}"
        )
        print(
            f"routed mux: {routed['connections_per_pair']} connection(s) "
            f"for {routed['channels']} topic link(s), p50 "
            f"{routed['routed_ms']['p50']:.3f} ms vs direct "
            f"{routed['direct_ms']['p50']:.3f} ms "
            f"({routed['routed_vs_direct_p50_ratio']:.2f}x)"
        )
        print(f"wrote {out}")
        return 0
    if args.experiment == "reactor":
        out = args.out or root / "BENCH_reactor.json"
        payload = run_reactor_snapshot(
            clients=args.clients, messages=args.messages * 12,
            sustain_clients=args.sustain_clients, sustain_messages=5,
        )
        out.write_text(json.dumps(payload, indent=2) + "\n")
        fanout = payload["fanout"]
        print(
            f"reactor fan-out at {fanout['reactor']['clients']} clients: "
            f"{fanout['reactor']['msgs_per_conn_per_s']:.0f} msg/conn/s "
            f"on {fanout['reactor']['threads_during']} threads vs "
            f"{fanout['threaded']['msgs_per_conn_per_s']:.0f} on "
            f"{fanout['threaded']['threads_during']} "
            f"({payload['speedup_per_conn']:.2f}x; floor "
            f"{payload['speedup_floor']:.1f}x)"
        )
        sustain = payload["sustain"]
        print(
            f"sustain: {sustain['clients']} subscriptions, "
            f"{sustain['delivered']}/{sustain['expected']} delivered, "
            f"{sustain['dropped']} dropped, {sustain['evictions']} "
            f"evicted, thread growth {sustain['thread_growth']} -> "
            f"sustained={sustain['sustained']}"
        )
        print(f"meets_floor: {payload['meets_floor']}")
        print(f"wrote {out}")
        return 0
    if args.experiment == "chaos":
        out = args.out or root / "BENCH_chaos.json"
        payload = run_chaos_snapshot(args.rounds)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        recovery = payload["recovery_ms"]
        print(
            f"chaos soak over {payload['rounds']} rounds: recovery "
            f"p50={recovery['p50']:.0f} ms p99={recovery['p99']:.0f} ms, "
            f"{payload['lost']} messages lost"
        )
        print(f"wrote {out}")
        return 0
    if args.experiment == "obs":
        out = args.out or root / "BENCH_obs.json"
        payload = run_obs_snapshot(args.iterations)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"obs overhead on 1MB SHMROS (p50): "
            f"{payload['overhead_pct']:+.2f}% "
            f"(budget {payload['budget_pct']:.0f}%)"
        )
        print(f"wrote {out}")
        return 0
    if args.experiment == "bridge":
        out = args.out or root / "BENCH_bridge.json"
        payload = run_bridge_snapshot(args.messages)
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(
            f"selective vs full-JSON wire ratio (16 clients, "
            f"{payload['payload_bytes']} B payload): "
            f"{payload['selective_vs_full_json_wire_ratio']:.0f}x smaller"
        )
        print(f"wrote {out}")
        return 0
    out = args.out or root / "BENCH_fig13.json"
    payload = run_snapshot(args.iterations)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    for label, entry in payload["workloads"].items():
        print(
            f"{label:<24} SHMROS speedup over TCPROS (ROS-SF): "
            f"{entry['shmros_speedup_vs_tcpros']:.2f}x"
        )
    unsized = payload["unsized"]
    if "skipped" in unsized:
        print(f"shmros-unsized: skipped ({unsized['skipped']})")
    else:
        print(
            f"shmros-unsized: delta republish {unsized['speedup']:.2f}x "
            f"over full copy at {unsized['payload_bytes']} B"
        )
    remote = payload["tzc_remote"]
    print(
        f"tzc-remote: {remote['speedup']:.2f}x over classic TCPROS "
        f"at {remote['payload_bytes']} B"
    )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
