#!/usr/bin/env python3
"""Record a live SFM session to a bag, inspect it, replay it.

Bags store *raw wire payloads*, so recording an SFM topic writes the
message buffer as-is (no serialization) and replay adopts it back (no
de-serialization) -- the serialization-free property extends to logging,
a direct corollary of the paper's design.

Run:  python examples/bag_record_replay.py
"""

import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.ros import BagReader, BagRecorder, BagWriter, RosGraph
from repro.ros.bag import play
from repro.ros.rostime import Time
from repro.rossf import sfm_classes_for


def record_session(bag_path: str, frames: int = 5) -> None:
    Image, = sfm_classes_for("sensor_msgs/Image")
    rng = np.random.default_rng(3)
    with RosGraph() as graph, BagWriter(bag_path) as writer:
        cam = graph.node("camera")
        logger = graph.node("logger")
        recorder = BagRecorder(logger, writer)
        recorder.record("/camera/image", Image)
        pub = cam.advertise("/camera/image", Image)
        pub.wait_for_subscribers(1)
        for seq in range(frames):
            img = Image(height=48, width=64, step=192)
            img.header.seq = seq
            img.header.stamp = tuple(Time.now())
            img.encoding = "rgb8"
            img.data = rng.integers(0, 255, size=48 * 64 * 3,
                                    dtype=np.uint8).tobytes()
            pub.publish(img)
            time.sleep(0.05)
        deadline = time.monotonic() + 5
        while writer.message_count < frames and time.monotonic() < deadline:
            time.sleep(0.05)
        recorder.stop()
    print(f"recorded {writer.message_count} messages to {bag_path}")


def inspect(bag_path: str) -> None:
    reader = BagReader(bag_path)
    print(f"bag contains {len(reader)} messages on "
          f"{len(reader.topics())} topic(s):")
    for topic, connection in reader.topics().items():
        count = len(reader.messages(topic))
        print(f"  {topic}: {count} x {connection.type_name} "
              f"(format={connection.format_name})")
    first = reader.messages()[0].decode()
    print(f"first frame: seq={int(first.header.seq)} "
          f"encoding={str(first.encoding)!r} bytes={len(first.data)}")


def replay(bag_path: str) -> None:
    reader = BagReader(bag_path)
    with RosGraph() as graph:
        player = graph.node("bag_player")
        viewer = graph.node("viewer")
        received = []
        done = threading.Event()
        Image, = sfm_classes_for("sensor_msgs/Image")

        def on_image(msg):
            received.append(int(msg.header.seq))
            if len(received) >= len(reader):
                done.set()

        viewer.subscribe("/camera/image", Image, on_image)
        thread = threading.Thread(
            target=lambda: play(reader, player, rate=2.0,
                                wait_for_subscribers=10.0)
        )
        thread.start()
        done.wait(30)
        thread.join()
        print(f"replayed sequence (2x speed): {received}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        bag_path = str(Path(tmp) / "camera_session.bag")
        record_session(bag_path)
        inspect(bag_path)
        replay(bag_path)


if __name__ == "__main__":
    main()
