#!/usr/bin/env python3
"""The ROS-SF Converter workflow: check, guide, rewrite, run.

1. Analyze a package source for the paper's three assumptions.
2. Print the modification guidance for each violation (the paper: "even
   in the failure cases, our ROS-SF framework can provide modification
   guidance").
3. Rewrite the imports of a *clean* file to the SFM classes and execute
   the result, showing the program now runs serialization-free.
4. Regenerate the paper's Table 1 over the bundled corpus.

Run:  python examples/converter_workflow.py
"""

from repro.converter import (
    analyze_source,
    conversion_guidance,
    rewrite_imports_to_sfm,
    run_applicability_study,
)
from repro.sfm.message import SFMMessage

FAILING_SOURCE = '''\
def republish_rotated(msg, cv_image, transform, pub):
    # Fig. 19: patching a string field on a converted message.
    out_img = cv_bridge(msg.header, msg.encoding, cv_image).toImageMsg()
    out_img.header.frame_id = transform.child_frame_id
    pub.publish(out_img)


def pack_points(dense_points, pub):
    # Fig. 21: push_back over a validity filter.
    cloud = PointCloud()
    cloud.points.resize(0)
    for point in dense_points:
        if point.ok:
            cloud.points.append(point)
    pub.publish(cloud)
'''

CLEAN_SOURCE = '''\
from repro.msg.library import Image

img = Image()
img.encoding = "rgb8"
img.height = 10
img.width = 10
img.data.resize(10 * 10 * 3)
'''


def main() -> None:
    print("== 1+2. analyze a failing package and print guidance ==")
    report = analyze_source(FAILING_SOURCE, path="image_pipeline/node.py")
    print(conversion_guidance(report))
    print()

    print("== 3. rewrite a clean file to the SFM classes and run it ==")
    rewritten = rewrite_imports_to_sfm(CLEAN_SOURCE)
    print(rewritten)
    namespace: dict = {}
    exec(rewritten, namespace)  # noqa: S102 - demonstration
    img = namespace["img"]
    assert isinstance(img, SFMMessage)
    print(f"the rewritten program produced an SFM message: "
          f"whole size {img.whole_size} bytes, "
          f"encoding {str(img.encoding)!r}, data length {len(img.data)}")
    print()

    print("== 4. the applicability study (paper Table 1) ==")
    print(run_applicability_study().render())


if __name__ == "__main__":
    main()
