#!/usr/bin/env python3
"""Format gallery: the memory layouts of Figs. 5, 6 and 7, side by side.

Builds the paper's simplified Image (encoding="rgb8", 10x10, 300 data
bytes) through each wire format and hex-dumps the result, so you can see
with your own eyes why SFM fields sit at fixed offsets (transparent
access) while FlatData needs a linear scan and FlatBuffer a vtable.

Run:  python examples/format_gallery.py
"""

import struct

from repro.msg.registry import default_registry
import repro.msg.library  # noqa: F401  (registers types)
from repro.serialization.flatbuffer import FlatBufferBuilder, TableView
from repro.serialization.xcdr2 import FlatDataBuilder, XcdrView
from repro.sfm.generator import generate_sfm_class

TYPE = "rossf_bench/SimpleImage"
DATA = bytes(range(256)) + bytes(44)  # 300 bytes


def hexdump(buffer, limit: int = 64) -> str:
    rows = []
    data = bytes(buffer)[:limit]
    for offset in range(0, len(data), 16):
        chunk = data[offset : offset + 16]
        hex_part = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        rows.append(f"  {offset:#06x}  {hex_part:<47}  {text}")
    if len(buffer) > limit:
        rows.append(f"  ... ({len(buffer)} bytes total)")
    return "\n".join(rows)


def show_sfm() -> None:
    print("== SFM (paper Fig. 7): skeleton with fixed offsets ==")
    cls = generate_sfm_class(TYPE)
    img = cls()
    img.encoding = "rgb8"
    img.height = 10
    img.width = 10
    img.data = DATA
    wire = bytes(img.to_wire())
    print(hexdump(wire))
    length, rel = struct.unpack_from("<II", wire, 0)
    print(f"  encoding skeleton @0x0000: length={length} offset={rel} "
          f"-> content at {4 + rel:#06x}")
    print(f"  height/width @0x0008: {struct.unpack_from('<II', wire, 8)}")
    length, rel = struct.unpack_from("<II", wire, 16)
    print(f"  data skeleton @0x0010: count={length} offset={rel} "
          f"-> elements at {20 + rel:#06x}")
    print(f"  whole message: {len(wire)} bytes (paper: 0x014c = 332)")
    print(f"  transparent access: img.height == {img.height}, "
          f"img.encoding == {img.encoding!r}\n")


def show_flatdata() -> None:
    print("== XCDR2 / FlatData (paper Fig. 5): EMHEADER parameter list ==")
    builder = FlatDataBuilder(default_registry, TYPE)
    builder.add("encoding", "rgb8")
    builder.add("height", 10).add("width", 10).add("data", DATA)
    wire = builder.finish_sample()
    print(hexdump(wire))
    (emheader,) = struct.unpack_from("<I", wire, 0)
    print(f"  first EMHEADER: {emheader:#010x} "
          "(LC=4 length-delimited, member id=2 -- as in Fig. 5)")
    view = XcdrView(default_registry, default_registry.get(TYPE), wire)
    print("  access requires traversal: view.get('width') scans members "
          f"until id matches -> {view.get('width')}\n")


def show_flatbuffer() -> None:
    print("== FlatBuffer (paper Fig. 6): vtable indirection ==")
    builder = FlatBufferBuilder(default_registry, TYPE)
    builder.add("encoding", "rgb8")
    builder.add("height", 10).add("width", 10).add("data", DATA)
    wire = builder.finish()
    print(hexdump(wire))
    (root,) = struct.unpack_from("<I", wire, 0)
    vsize, inline = struct.unpack_from("<HH", wire, 4)
    print(f"  root table at {root:#06x}; vtable: size={vsize}, "
          f"inline data={inline}")
    slots = struct.unpack_from("<4H", wire, 8)
    print(f"  vtable slots (offsets from root table): {slots}")
    view = TableView.root(default_registry, TYPE, wire)
    print("  access goes through the vtable: view.get('height') -> "
          f"{view.get('height')}\n")


def main() -> None:
    show_sfm()
    show_flatdata()
    show_flatbuffer()
    print("Only the SFM layout has every field at a fixed offset, which is")
    print("what lets ROS-SF expose fields as plain attributes (Section 4.1).")


if __name__ == "__main__":
    main()
