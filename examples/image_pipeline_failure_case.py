#!/usr/bin/env python3
"""The paper's first failure case (Fig. 19), reproduced live.

A camera node feeds an ``image_rotate``-style republisher.  The buggy
version converts the incoming image and then patches
``header.frame_id`` on the already-constructed message -- which violates
the One-Shot String Assignment Assumption and, under ROS-SF, raises the
run-time alert with modification guidance.  The fixed version (the
paper's rewrite: prepare the final header first) runs unmodified under
both profiles.

The static checker catches the same bug before running, which is how the
Table 1 study was produced.

Run:  python examples/image_pipeline_failure_case.py
"""

import threading

import numpy as np

from repro.converter import analyze_source, conversion_guidance
from repro.msg import library
from repro.ros import RosGraph
from repro.rossf import sfm_classes_for
from repro.sfm.errors import OneShotStringError


def convert_image(msg_class, source, header_seq, frame_id, encoding):
    """A cv_bridge-style conversion: builds a fully-assigned message."""
    out = msg_class()
    out.header.seq = header_seq
    out.header.frame_id = frame_id
    out.height, out.width = source.shape[:2]
    out.encoding = encoding
    out.step = source.shape[1] * 3
    out.data = np.ascontiguousarray(source, dtype=np.uint8).reshape(-1)
    return out


def rotate180(image: np.ndarray) -> np.ndarray:
    return image[::-1, ::-1].copy()


def buggy_rotate_node(msg_class, msg, image, publisher) -> None:
    """Fig. 19, line-for-line: convert, then patch the frame_id."""
    out_img = convert_image(
        msg_class, rotate180(image), int(msg.header.seq),
        str(msg.header.frame_id), str(msg.encoding),
    )
    out_img.header.frame_id = "rotated_camera"   # the second assignment!
    publisher.publish(out_img)


def fixed_rotate_node(msg_class, msg, image, publisher) -> None:
    """The paper's rewrite: decide the final header before converting."""
    out_img = convert_image(
        msg_class, rotate180(image), int(msg.header.seq),
        "rotated_camera",                         # assigned exactly once
        str(msg.encoding),
    )
    publisher.publish(out_img)


def run(msg_class, rotate, label: str) -> str:
    frame = np.random.default_rng(0).integers(
        0, 255, size=(60, 80, 3), dtype=np.uint8
    )
    outcome = {}
    done = threading.Event()

    with RosGraph() as graph:
        cam = graph.node("camera")
        rot = graph.node("rotator")
        view = graph.node("viewer")

        def on_rotated(msg):
            outcome["frame_id"] = str(msg.header.frame_id)
            done.set()

        view.subscribe("/image_rotated", msg_class, on_rotated)
        rotated_pub = rot.advertise("/image_rotated", msg_class)

        def on_raw(msg):
            try:
                rotate(msg_class, msg, frame, rotated_pub)
            except OneShotStringError as exc:
                outcome["error"] = str(exc)
                done.set()

        rot.subscribe("/image_raw", msg_class, on_raw)
        raw_pub = cam.advertise("/image_raw", msg_class)
        raw_pub.wait_for_subscribers(1)
        rotated_pub.wait_for_subscribers(1)

        raw = convert_image(msg_class, frame, 0, "camera", "rgb8")
        raw_pub.publish(raw)
        done.wait(10)

    if "error" in outcome:
        return f"[{label}] RUNTIME ALERT: {outcome['error']}"
    return f"[{label}] delivered with frame_id={outcome.get('frame_id')!r}"


BUGGY_SOURCE = '''\
def callback(msg, cv_image, transform, pub):
    out_img = cv_bridge(msg.header, msg.encoding, cv_image).toImageMsg()
    out_img.header.frame_id = transform.child_frame_id
    pub.publish(out_img)
'''


def main() -> None:
    SfmImage, = sfm_classes_for("sensor_msgs/Image")

    print("== static check (what the Converter reports) ==")
    print(conversion_guidance(
        analyze_source(BUGGY_SOURCE, path="image_rotate_nodelet.py")
    ))
    print()

    print("== live runs ==")
    print(run(library.Image, buggy_rotate_node, "ROS,    buggy"))
    print(run(SfmImage, buggy_rotate_node, "ROS-SF, buggy"))
    print(run(SfmImage, fixed_rotate_node, "ROS-SF, fixed"))
    print()
    print("Plain ROS silently tolerates the reassignment; ROS-SF raises the")
    print("alert with the Fig. 19 guidance; the rewritten node runs clean.")


if __name__ == "__main__":
    main()
