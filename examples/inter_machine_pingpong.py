#!/usr/bin/env python3
"""The paper's inter-machine experiment (Fig. 15/16) on a modeled link.

Topology: ``pub`` (machine A) -> topic 1 -> ``trans`` (machine B) ->
topic 2 -> ``sub`` (machine A).  The trans node re-creates the image with
the original timestamp, so A can subtract timestamps without cross-machine
clock sync -- the paper's ping-pong methodology.

Without two hosts, the wire is a 10 GbE *link model* (frame overhead +
size/bandwidth + propagation) composed with measured construction and
(de)serialization time; a bandwidth-shaped in-process channel demo shows
the same effect in wall-clock time at the end.

Run:  python examples/inter_machine_pingpong.py
"""

from repro.bench.harness import InterMachineExperiment
from repro.bench.tables import render_profile_comparison
from repro.net.link import GIGABIT, HUNDRED_MEGABIT, TEN_GIGABIT
from repro.net.shaper import ShapedChannel


def modeled_experiment() -> None:
    print("== Fig. 16: ping-pong latency over a modeled 10 GbE link ==")
    experiment = InterMachineExperiment(iterations=20, warmup=10)
    results = experiment.run()
    print(render_profile_comparison("ROS vs ROS-SF (ping-pong, modeled "
                                    "10GbE wire + measured compute)",
                                    results))
    print()


def bandwidth_trend() -> None:
    print("== Section 1's motivation: wire time vs serialization time ==")
    size = 6_220_800  # the 6 MB image
    for profile in (HUNDRED_MEGABIT, GIGABIT, TEN_GIGABIT):
        wire_ms = 1000 * profile.transmit_time(size)
        print(f"  {profile.name:>6}: one-way wire time for 6 MB = "
              f"{wire_ms:8.2f} ms")
    print("  As bandwidth grows 100x, wire time shrinks ~100x while the")
    print("  serialization cost stays constant -- which is why eliminating")
    print("  it matters on modern links.\n")


def shaped_channel_demo() -> None:
    print("== Wall-clock demo: token-bucket shaped channel at 10 GbE ==")
    import time

    channel = ShapedChannel(TEN_GIGABIT)
    payload = bytes(6_220_800)
    start = time.monotonic()
    channel.send(payload)
    received = channel.recv(timeout=5)
    elapsed_ms = 1000 * (time.monotonic() - start)
    assert received == payload
    print(f"  6 MB through the shaped channel took {elapsed_ms:.2f} ms "
          f"(model predicts {1000 * TEN_GIGABIT.transmit_time(len(payload)):.2f} ms)")


def main() -> None:
    modeled_experiment()
    bandwidth_trend()
    shaped_channel_demo()


if __name__ == "__main__":
    main()
