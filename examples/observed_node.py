#!/usr/bin/env python3
"""A fully observed node: metrics endpoint, /statistics, live tracing.

One camera-style SFM publisher and one subscriber, with the whole
repro.obs surface switched on:

- a Prometheus ``/metrics`` endpoint (plus ``/trace.json`` and
  ``/healthz``) served over HTTP;
- a ``/statistics`` topic other tools (``tools top``) can watch;
- a short trace window exporting publish->callback spans as Chrome
  ``trace_event`` JSON.

Run:  python examples/observed_node.py [--metrics-port 9464] [--duration 5]

While it runs, scrape it::

    curl http://127.0.0.1:9464/metrics
    curl http://127.0.0.1:9464/trace.json
"""

import argparse
import json
import threading
import time

import numpy as np

from repro.obs import tracer
from repro.obs.export import MetricsServer
from repro.obs.statistics import StatisticsPublisher
from repro.ros import RosGraph
from repro.ros.rostime import Time
from repro.rossf import sfm_classes_for


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics-port", type=int, default=0,
                        help="0 picks a free port")
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--rate", type=float, default=20.0)
    args = parser.parse_args()

    Image, = sfm_classes_for("sensor_msgs/Image")
    rng = np.random.default_rng(7)
    frame = rng.integers(0, 255, size=120 * 160 * 3,
                         dtype=np.uint8).tobytes()

    received = {"count": 0}
    with RosGraph() as graph, \
            MetricsServer(port=args.metrics_port) as metrics:
        cam = graph.node("camera")
        viewer = graph.node("viewer")
        viewer.subscribe(
            "/camera/image", Image,
            lambda msg: received.__setitem__("count",
                                             received["count"] + 1),
        )
        pub = cam.advertise("/camera/image", Image)
        pub.wait_for_subscribers(1)
        stats = StatisticsPublisher(cam, interval=0.5)
        tracer.start()
        print(f"metrics at {metrics.url}/metrics", flush=True)

        deadline = time.monotonic() + args.duration
        seq = 0
        while time.monotonic() < deadline:
            img = Image(height=120, width=160, step=480)
            img.header.seq = seq
            img.header.stamp = tuple(Time.now())
            img.encoding = "rgb8"
            img.data = frame
            pub.publish(img)
            seq += 1
            time.sleep(1.0 / args.rate)

        tracer.stop()
        stats.close()
        doc = tracer.export()
        span_names = sorted({event["name"] for event in doc["traceEvents"]})
        print(f"published {seq} frames, delivered {received['count']}")
        print(f"trace: {len(doc['traceEvents'])} spans "
              f"({', '.join(span_names)})")
        # The acceptance check: publish->callback on one timeline.
        by_name = {}
        for event in doc["traceEvents"]:
            by_name.setdefault(event["name"], event)
        assert by_name["publish"]["ts"] <= by_name["callback"]["ts"]
        print("trace timeline ok: publish precedes callback")


if __name__ == "__main__":
    main()
