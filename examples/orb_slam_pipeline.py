#!/usr/bin/env python3
"""The paper's application case study (Fig. 17/18): an ORB-SLAM-like
pipeline fed by a synthetic TUM-style RGBD sequence.

Five nodes: ``pub_tum`` publishes RGB + depth images; ``orb_slam`` tracks
camera motion, maintains a map, and publishes a pose, a point cloud and a
debug image; three subscribers measure the end-to-end latency from input
image creation to each output's arrival.  The whole graph is then re-run
under ROS-SF with zero changes to the pipeline code.

Run:  python examples/orb_slam_pipeline.py [frames]
"""

import sys

import numpy as np

from repro.ros import RosGraph
from repro.slam.dataset import SyntheticRgbdDataset
from repro.slam.pipeline import SlamPipeline, profile


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    dataset = SyntheticRgbdDataset(width=320, height=240, length=frames)
    print(f"== ORB-SLAM case study: {frames} frames of "
          f"{dataset.width}x{dataset.height} RGBD ==\n")

    results = {}
    for kind in ("ros", "rossf"):
        with RosGraph() as graph:
            pipeline = SlamPipeline(graph, profile(kind), dataset.intrinsics)
            outcome = pipeline.run(dataset, frame_gap_s=0.05, timeout=300)
            results[outcome.profile_name] = outcome

            final = pipeline.slam.tracker.translation
            truth = dataset.frame(frames - 1).true_translation
            error_cm = 100 * np.linalg.norm(final - truth)
            print(f"[{outcome.profile_name}] processed "
                  f"{pipeline.slam.frames_processed} frames, "
                  f"map size {len(pipeline.slam.map)} points, "
                  f"trajectory error {error_cm:.1f} cm")
            for output in SlamPipeline.OUTPUTS:
                print(f"    {output:<12} mean latency "
                      f"{outcome.mean_ms(output):7.2f} ms")
            print()

    print("Latency reduction by ROS-SF (the paper reports ~5%, since the")
    print("SLAM computation dominates the pipeline):")
    for output in SlamPipeline.OUTPUTS:
        base = results["ROS"].mean_ms(output)
        best = results["ROS-SF"].mean_ms(output)
        print(f"    {output:<12} {100 * (base - best) / base:+5.1f}%")


if __name__ == "__main__":
    main()
