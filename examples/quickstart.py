#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 3 program pattern, with and without ROS-SF.

The publisher and subscriber below are written once.  The only difference
between the two runs is *which generated Image class* the code uses --
the plain one (messages are serialized/deserialized by the middleware) or
the SFM one (messages are their own wire buffers; the middleware moves
them zero-copy).  That one-line class swap is exactly what the ROS-SF
Converter automates, and it is the paper's transparency claim.

Construction copies the camera frame into the message on both paths (as a
camera driver's memcpy does), so the measured difference is the
(de)serialization that ROS-SF eliminates.

Run:  python examples/quickstart.py
"""

import threading
import time

from repro.bench.allocator import tune_for_large_messages
from repro.msg import library
from repro.ros import RosGraph
from repro.ros.rostime import Time
from repro.rossf import sfm_classes_for
from repro.sfm.message import SFMMessage

WIDTH, HEIGHT = 800, 600
FRAME = bytes(bytearray(range(256)) * (WIDTH * HEIGHT * 3 // 256 + 1))[
    : WIDTH * HEIGHT * 3
]


def make_image(image_class, seq: int):
    """The Fig. 3 construction pattern, identical for both classes."""
    img = image_class()                      # Image img;
    img.header.seq = seq
    img.header.stamp = tuple(Time.now())
    img.encoding = "rgb8"                    # img.encoding = "rgb8";
    img.height = HEIGHT                      # img.height = ...;
    img.width = WIDTH
    img.step = WIDTH * 3
    if isinstance(img, SFMMessage):
        img.data = FRAME                     # copies into the SFM buffer
    else:
        img.data = bytearray(FRAME)          # the driver's memcpy
    return img


def run_pipeline(image_class, label: str, count: int = 30) -> float:
    latencies = []
    done = threading.Event()

    def callback(img):
        # Accessing img -- identical for both classes (Fig. 3, right).
        secs, nsecs = img.header.stamp
        latencies.append(time.time() - (secs + nsecs / 1e9))
        assert img.height == HEIGHT and img.width == WIDTH
        assert img.encoding == "rgb8"
        if len(latencies) >= count:
            done.set()

    with RosGraph() as graph:
        talker = graph.node("talker")
        listener = graph.node("listener")
        listener.subscribe("/camera/image", image_class, callback)
        publisher = talker.advertise("/camera/image", image_class)
        publisher.wait_for_subscribers(1)
        for seq in range(count):
            publisher.publish(make_image(image_class, seq))
            time.sleep(0.01)
        done.wait(30)

    steady = latencies[10:]
    mean_ms = 1000 * sum(steady) / len(steady)
    print(f"{label:<8} mean latency over {len(steady)} messages: "
          f"{mean_ms:6.2f} ms")
    return mean_ms


def main() -> None:
    tune_for_large_messages()
    print(f"== quickstart: {WIDTH}x{HEIGHT} rgb8 image (~{len(FRAME)//1000} KB) "
          "over the negotiated local transport (SHMROS, TCPROS fallback) ==")
    ros_ms = run_pipeline(library.Image, "ROS")

    # The one-line switch ROS-SF's converter performs automatically:
    sfm_image, = sfm_classes_for("sensor_msgs/Image")
    rossf_ms = run_pipeline(sfm_image, "ROS-SF")

    reduction = 100 * (ros_ms - rossf_ms) / ros_ms
    print(f"ROS-SF changed mean latency by {reduction:+.1f}% "
          "(positive = faster) with zero changes to the pipeline code.")


if __name__ == "__main__":
    main()
