#!/usr/bin/env python3
"""A fleet dashboard over the WebSocket front door.

One process plays every role, end to end:

1. a graph + bridge with ``enable_ws()`` -- the front door browsers and
   remote dashboards dial;
2. a "robot": a :class:`~repro.bridge.ws.WsBridgeClient` publishing
   ``PoseStamped@sfm`` telemetry with ``publish_raw`` (the buffer goes
   onto the graph without a single per-field touch);
3. a "dashboard": a second ws client holding a *selective-field* cbin
   subscription -- only ``pose.position.{x,y}`` cross the last hop;
4. an SSE tail: the same deliveries as ``text/event-stream`` for
   clients that cannot upgrade (curl works: the URL is printed).

Run:  python examples/ws_dashboard.py [--duration 3]
"""

import argparse
import socket
import threading
import time

from repro.bridge.server import BridgeServer
from repro.bridge.ws import WsBridgeClient, sse_url
from repro.ros import RosGraph
from repro.rossf import sfm_classes_for

POSE_TYPE = "geometry_msgs/PoseStamped@sfm"
TOPIC = "/fleet/robot0/pose"


def robot(client: WsBridgeClient, duration: float) -> int:
    """Publish a circling pose at 20 Hz (serialization-free ingest)."""
    PoseStamped, = sfm_classes_for("geometry_msgs/PoseStamped")
    pose = PoseStamped()
    published = 0
    deadline = time.monotonic() + duration
    while time.monotonic() < deadline:
        pose.pose.position.x = float(published % 10)
        pose.pose.position.y = float(published % 7)
        client.publish_raw(TOPIC, bytes(pose.to_wire()))
        published += 1
        time.sleep(0.05)
    return published


def sse_tail(host: str, port: int, events: list, stop) -> None:
    """Read ``data:`` lines from the /sse fallback endpoint."""
    url = sse_url(host, port, TOPIC, POSE_TYPE,
                  fields=["pose.position.x"])
    path = url.split(str(port), 1)[1]
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    buffered = b""
    sock.settimeout(0.25)
    while not stop.is_set():
        try:
            chunk = sock.recv(4096)
        except socket.timeout:
            continue
        except OSError:
            break
        if not chunk:
            break
        buffered += chunk
        while b"\r\n\r\n" in buffered:
            event, _, buffered = buffered.partition(b"\r\n\r\n")
            if event.startswith(b"data: ") and b'"publish"' in event:
                events.append(event)
    sock.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=3.0)
    args = parser.parse_args()

    with RosGraph() as graph:
        with BridgeServer(graph.master_uri) as server:
            frontend = server.enable_ws()
            print(f"front door at {frontend.url}")
            print("sse fallback:",
                  sse_url(server.host, frontend.port, TOPIC, POSE_TYPE,
                          fields=["pose.position.x"]))

            robot_client = WsBridgeClient(server.host, frontend.port)
            robot_client.advertise(TOPIC, POSE_TYPE)

            dashboard = WsBridgeClient(server.host, frontend.port)
            received = []
            dashboard.subscribe(
                TOPIC, POSE_TYPE,
                lambda msg, meta: received.append(msg),
                codec="cbin", fields=["pose.position.x", "pose.position.y"],
            )

            sse_events: list = []
            stop = threading.Event()
            tail = threading.Thread(
                target=sse_tail,
                args=(server.host, frontend.port, sse_events, stop),
                daemon=True,
            )
            tail.start()

            published = robot(robot_client, args.duration)
            deadline = time.monotonic() + 5.0
            while not received and time.monotonic() < deadline:
                time.sleep(0.05)
            stop.set()
            tail.join(timeout=2.0)

            snap = server.stats_snapshot()
            print(f"robot published {published} poses (raw, zero-touch)")
            print(f"ws dashboard received {len(received)} selective "
                  f"deliveries; latest fields: {received[-1]}")
            print(f"sse tail captured {len(sse_events)} event(s)")
            print(f"clients by transport: {snap['clients_by_transport']}")

            robot_client.close()
            dashboard.close()


if __name__ == "__main__":
    main()
