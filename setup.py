"""Setup shim.

``pip install -e .`` needs the ``wheel`` package (PEP 660) which is not
available in fully-offline environments; ``python setup.py develop`` keeps
working there.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
