"""ROS-SF reproduction: a transparent, serialization-free ROS-like middleware.

This package reproduces the system described in "ROS-SF: A Transparent and
Efficient ROS Middleware using Serialization-Free Message" (Middleware '22)
in pure Python.  The major subpackages are:

- :mod:`repro.msg` -- the ``.msg`` interface definition language, message
  specs, md5 fingerprints and plain (ROS-style) message class generation.
- :mod:`repro.serialization` -- wire formats: the ROS baseline plus the
  ProtoBuf-like, FlatBuffer-like and XCDR2/FlatData-like comparators used
  by the paper's Fig. 14.
- :mod:`repro.sfm` -- the paper's contribution: the SFM serialization-free
  message format, skeleton layout, ``sfm`` string/vector views and the
  message life-cycle manager.
- :mod:`repro.ros` -- "miniros", a ROS1-like middleware substrate (master,
  node, topics, TCPROS-style transport).
- :mod:`repro.rossf` -- the ROS-SF integration layer that swaps dummy
  (de)serialization routines under the unchanged ROS API.
- :mod:`repro.converter` -- the ROS-SF Converter analogue: a static
  checker/rewriter for the paper's three assumptions.
- :mod:`repro.net` -- the inter-machine link model used by Fig. 16.
- :mod:`repro.slam` -- the ORB-SLAM-like application case study of Fig. 18.
- :mod:`repro.bench` -- the experiment harness regenerating every table
  and figure of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = [
    "msg",
    "serialization",
    "sfm",
    "ros",
    "rossf",
    "converter",
    "net",
    "slam",
    "bench",
]
