"""Experiment harness regenerating every table and figure of the paper.

- :mod:`repro.bench.workloads` -- the paper's image workloads (~200 KB /
  ~1 MB / ~6 MB, Section 5.1) and message construction that copies pixel
  data into the message on *both* profiles, as a camera driver does.
- :mod:`repro.bench.stats` -- mean/stddev aggregation for the
  "boxes + black lines" the figures report.
- :mod:`repro.bench.harness` -- one experiment class per figure/table:
  Fig. 13 (intra-machine), Fig. 14 (middleware comparison), Fig. 16
  (inter-machine ping-pong), Fig. 18 (ORB-SLAM case study), Table 1
  (applicability study).
- :mod:`repro.bench.tables` -- renders the same rows/series the paper
  prints.
"""

from repro.bench.stats import LatencyStats, summarize
from repro.bench.workloads import IMAGE_WORKLOADS, ImageWorkload

__all__ = ["IMAGE_WORKLOADS", "ImageWorkload", "LatencyStats", "summarize"]
