"""glibc allocator tuning for large-message benchmarks.

CPython hands allocations above the pymalloc threshold straight to
``malloc``; glibc serves multi-megabyte blocks via ``mmap`` by default and
unmaps them on ``free``.  A benchmark loop that allocates and frees 6 MB
buffers every iteration then pays ~1500 page faults per allocation --
noise that swamps the serialization costs under study and that a
long-running C++ middleware process does not see (its allocator reuses the
arena).  Raising ``M_MMAP_THRESHOLD`` and disabling trim makes glibc keep
the blocks on its free list, restoring steady-state behaviour.

No-op (returns False) on platforms without glibc ``mallopt``.
"""

from __future__ import annotations

import ctypes
import ctypes.util

_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

_tuned = False


def tune_for_large_messages(threshold_bytes: int = 64 * 1024 * 1024) -> bool:
    """Raise the mmap threshold so large message buffers are recycled by
    the allocator.  Idempotent; returns True when tuning took effect."""
    global _tuned
    if _tuned:
        return True
    try:
        libc_name = ctypes.util.find_library("c") or "libc.so.6"
        libc = ctypes.CDLL(libc_name, use_errno=True)
        mallopt = libc.mallopt
    except (OSError, AttributeError):
        return False
    mallopt.argtypes = [ctypes.c_int, ctypes.c_int]
    mallopt.restype = ctypes.c_int
    ok = mallopt(_M_MMAP_THRESHOLD, threshold_bytes)
    ok &= mallopt(_M_TRIM_THRESHOLD, threshold_bytes)
    _tuned = bool(ok)
    return _tuned
