"""Experiment implementations, one per figure/table of the evaluation.

Each experiment is deterministic in shape and parameterized in scale
(iterations, rate) so it can run as a quick pytest-benchmark target or as
a full paper-scale run (2,000 iterations at 10 Hz).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Optional

from repro.bench.stats import LatencyStats, summarize
from repro.bench.workloads import (
    IMAGE_WORKLOADS,
    SIX_MEGABYTE,
    ImageWorkload,
    construct_image,
)
from repro.msg.registry import default_registry
from repro.net.link import LinkProfile, NetworkLink, TEN_GIGABIT
from repro.ros.graph import RosGraph
from repro.ros.rate import Rate
from repro.ros.rostime import Time


def _image_classes() -> dict[str, type]:
    """{'ROS': plain Image class, 'ROS-SF': SFM Image class}."""
    from repro.msg import library
    from repro.rossf import sfm_classes_for

    sfm_image, = sfm_classes_for("sensor_msgs/Image")
    return {"ROS": library.Image, "ROS-SF": sfm_image}


# ----------------------------------------------------------------------
# Fig. 13: intra-machine transmission latency
# ----------------------------------------------------------------------
@dataclass
class IntraMachineExperiment:
    """One pub node, one sub node, one Image topic over loopback TCPROS
    (the Fig. 12 topology); latency = receive time - creation stamp."""

    iterations: int = 50
    rate_hz: Optional[float] = 50.0
    warmup: int = 10
    workloads: tuple[ImageWorkload, ...] = IMAGE_WORKLOADS
    #: Transport column(s): ``"tcpros"`` (loopback sockets) and/or
    #: ``"shmros"`` (shared-memory ring).  With the single default the
    #: result keys stay the plain profile names; with several, keys are
    #: ``"<profile>@<transport>"`` so columns can sit side by side.
    transports: tuple[str, ...] = ("tcpros",)
    #: Stop-and-wait pacing: publish the next message only once the
    #: previous one arrived.  Removes queueing noise on small machines
    #: (a paced burst larger than one core can drain would otherwise
    #: measure backlog depth, not per-message latency).
    sync: bool = False
    #: Re-stamp immediately before ``publish``: the sample then covers
    #: the transport trip alone, excluding message construction (which is
    #: identical across transports and dilutes transport comparisons).
    stamp_at_publish: bool = False

    def run(self) -> dict[str, dict[str, LatencyStats]]:
        """Returns ``{workload_label: {profile[@transport]: stats}}``."""
        from repro.bench.allocator import tune_for_large_messages

        tune_for_large_messages()
        labelled = len(self.transports) > 1
        results: dict[str, dict[str, LatencyStats]] = {}
        for workload in self.workloads:
            per_profile: dict[str, LatencyStats] = {}
            for transport in self.transports:
                for profile_name, msg_class in _image_classes().items():
                    key = (
                        f"{profile_name}@{transport}"
                        if labelled
                        else profile_name
                    )
                    samples = self._run_one(
                        msg_class, workload, key, transport
                    )
                    per_profile[key] = summarize(
                        f"{key} {workload.label}", samples, self.warmup
                    )
            results[workload.label] = per_profile
        return results

    def _run_one(self, msg_class, workload: ImageWorkload,
                 profile_name: str, transport: str = "tcpros") -> list[float]:
        frame = workload.make_frame()
        total = self.iterations + self.warmup
        samples: list[float] = []
        done = threading.Event()
        arrived = threading.Event()

        def callback(msg) -> None:
            secs, nsecs = msg.header.stamp
            samples.append(time.time() - (secs + nsecs / 1e9))
            arrived.set()
            if len(samples) >= total:
                done.set()

        use_shm = transport == "shmros"
        with RosGraph() as graph:
            pub_node = graph.node("pub", shmros=use_shm)
            sub_node = graph.node("sub", shmros=use_shm)
            sub_node.subscribe("/bench_image", msg_class, callback)
            publisher = pub_node.advertise("/bench_image", msg_class)
            if not publisher.wait_for_subscribers(1):
                raise TimeoutError("subscriber did not connect")
            rate = Rate(self.rate_hz) if self.rate_hz else None
            for seq in range(total):
                msg = construct_image(
                    msg_class, frame, workload, seq, tuple(Time.now())
                )
                if self.stamp_at_publish:
                    msg.header.stamp = tuple(Time.now())
                arrived.clear()
                publisher.publish(msg)
                if self.sync and not arrived.wait(timeout=30.0):
                    raise TimeoutError(
                        f"{profile_name}: message {seq} did not arrive"
                    )
                if rate is not None:
                    rate.sleep()
            if not done.wait(timeout=60.0):
                raise TimeoutError(
                    f"{profile_name}: received {len(samples)}/{total}"
                )
        return samples


# ----------------------------------------------------------------------
# Fig. 14: middleware comparison at 6 MB
# ----------------------------------------------------------------------
def _loopback_transfer(payload) -> bytearray:
    """Model a loopback TCP transfer uniformly for every middleware: the
    kernel copies the payload in (send) and out (receive) -- exactly two
    copies for every format (``bytearray`` always copies, unlike
    ``bytes(bytes)`` which would be free for formats that serialize to
    ``bytes``)."""
    staged = bytearray(payload)
    return bytearray(staged)


def _access_fields(height, width, encoding, data) -> int:
    """The subscriber-side access pattern: metadata plus a data probe."""
    probe = int(data[0]) + int(data[-1])
    return int(height) + int(width) + len(encoding) + len(data) + probe


@dataclass
class MiddlewareComparison:
    """Construction -> loopback transfer -> access, per middleware
    (the seven bars of Fig. 14), single-threaded for low noise."""

    iterations: int = 30
    warmup: int = 10
    workload: ImageWorkload = SIX_MEGABYTE
    type_name: str = "sensor_msgs/Image"

    def middlewares(self) -> dict[str, Callable[[bytes, int], None]]:
        from repro.serialization.flatbuffer import FlatBufferFormat
        from repro.serialization.protobuf import ProtoBufFormat
        from repro.serialization.rosser import ROSSerializer
        from repro.serialization.xcdr2 import XCDR2Format

        registry = default_registry
        classes = _image_classes()
        ros = ROSSerializer(registry)
        protobuf = ProtoBufFormat(registry)
        flatbuf = FlatBufferFormat(registry)
        xcdr2 = XCDR2Format(registry)
        workload = self.workload
        plain_cls, sfm_cls = classes["ROS"], classes["ROS-SF"]
        type_name = self.type_name

        def run_serializing(fmt):
            def one(frame: bytes, seq: int) -> None:
                msg = construct_image(plain_cls, frame, workload, seq, (0, 0))
                wire = fmt.serialize(msg)
                received = _loopback_transfer(wire)
                out = fmt.deserialize(type_name, received)
                _access_fields(out.height, out.width, out.encoding, out.data)
            return one

        def run_builder_sf(fmt):
            def one(frame: bytes, seq: int) -> None:
                builder = fmt.builder(type_name)
                builder.add("header", {"seq": seq, "stamp": (0, 0),
                                       "frame_id": "camera"})
                builder.add("height", workload.height)
                builder.add("width", workload.width)
                builder.add("encoding", "rgb8")
                builder.add("is_bigendian", 0)
                builder.add("step", workload.width * 3)
                builder.add("data", frame)
                wire = builder.finish()
                received = _loopback_transfer(wire)
                view = fmt.wrap(type_name, received)
                _access_fields(view.get("height"), view.get("width"),
                               view.get("encoding"), view.get("data"))
            return one

        def run_rossf(frame: bytes, seq: int) -> None:
            msg = construct_image(sfm_cls, frame, workload, seq, (0, 0))
            pointer = msg.publish_pointer()
            received = _loopback_transfer(pointer.memoryview())
            pointer.release()
            out = sfm_cls.from_buffer(received)
            _access_fields(out.height, out.width, out.encoding, out.data)

        return {
            "ROS": run_serializing(ros),
            "ROS-SF": run_rossf,
            "ProtoBuf": run_serializing(protobuf),
            "FlatBuf": run_serializing(flatbuf),
            "FlatBuf-SF": run_builder_sf(flatbuf),
            "RTI": run_serializing(xcdr2),
            "RTI-FlatData": run_builder_sf(xcdr2),
        }

    def run(self, only: Optional[list[str]] = None) -> dict[str, LatencyStats]:
        from repro.bench.allocator import tune_for_large_messages

        tune_for_large_messages()
        frame = self.workload.make_frame()
        results: dict[str, LatencyStats] = {}
        for name, step in self.middlewares().items():
            if only is not None and name not in only:
                continue
            samples: list[float] = []
            for seq in range(self.iterations + self.warmup):
                start = time.perf_counter()
                step(frame, seq)
                samples.append(time.perf_counter() - start)
            results[name] = summarize(name, samples, self.warmup)
        return results


# ----------------------------------------------------------------------
# Fig. 16: inter-machine ping-pong latency
# ----------------------------------------------------------------------
@dataclass
class InterMachineExperiment:
    """The Fig. 15 topology (pub -> trans -> sub across a modeled link):
    measured compute + modeled wire time per ping-pong iteration."""

    iterations: int = 30
    warmup: int = 10
    link: LinkProfile = TEN_GIGABIT
    workloads: tuple[ImageWorkload, ...] = IMAGE_WORKLOADS
    type_name: str = "sensor_msgs/Image"

    def run(self) -> dict[str, dict[str, LatencyStats]]:
        from repro.bench.allocator import tune_for_large_messages
        from repro.serialization.rosser import ROSSerializer

        tune_for_large_messages()
        serializer = ROSSerializer(default_registry)
        classes = _image_classes()
        results: dict[str, dict[str, LatencyStats]] = {}
        for workload in self.workloads:
            frame = workload.make_frame()
            per_profile: dict[str, LatencyStats] = {}
            for profile_name, msg_class in classes.items():
                samples = self._pingpong(
                    profile_name, msg_class, serializer, frame, workload
                )
                per_profile[profile_name] = summarize(
                    f"{profile_name} {workload.label}", samples, self.warmup
                )
            results[workload.label] = per_profile
        return results

    def _hop(self, profile_name, msg_class, serializer, frame, workload,
             link: NetworkLink, seq: int):
        """One direction: construct on the sender, deliver a decoded
        message on the receiver; returns (message, measured_seconds)."""
        start = time.perf_counter()
        msg = construct_image(msg_class, frame, workload, seq, (0, 0))
        if profile_name == "ROS":
            wire = serializer.serialize(msg)
            elapsed = time.perf_counter() - start
            link.send(len(wire))
            start2 = time.perf_counter()
            received = serializer.deserialize(self.type_name, wire)
            elapsed += time.perf_counter() - start2
            return received, elapsed
        pointer = msg.publish_pointer()
        wire_view = pointer.memoryview()
        elapsed = time.perf_counter() - start
        link.send(len(wire_view))
        start2 = time.perf_counter()
        received = msg_class.from_buffer(bytearray(wire_view))
        pointer.release()
        elapsed += time.perf_counter() - start2
        return received, elapsed

    def _pingpong(self, profile_name, msg_class, serializer, frame,
                  workload) -> list[float]:
        samples: list[float] = []
        for seq in range(self.iterations + self.warmup):
            link = NetworkLink(self.link)
            # pub -> trans (machine A -> machine B)
            received, measured_1 = self._hop(
                profile_name, msg_class, serializer, frame, workload, link, seq
            )
            # trans re-creates an Image with the same stamp (Fig. 15)
            stamp_probe = (int(received.height), int(received.width))
            assert stamp_probe == (workload.height, workload.width)
            # trans -> sub (machine B -> machine A)
            _final, measured_2 = self._hop(
                profile_name, msg_class, serializer, frame, workload, link, seq
            )
            samples.append(measured_1 + measured_2 + link.modeled_seconds)
        return samples


# ----------------------------------------------------------------------
# Fig. 18: ORB-SLAM case study
# ----------------------------------------------------------------------
@dataclass
class SlamCaseStudy:
    """Runs the Fig. 17 pipeline under both profiles.

    The SLAM computation dominates the pipeline (paper: 30-40 ms of the
    latency) and its wall time drifts by several percent over minutes on
    a busy machine, so single back-to-back runs would mis-attribute the
    drift to the middleware.  ``repeats`` interleaves ROS and ROS-SF runs
    (A/B/A/B...) and pools the samples.
    """

    frames: int = 20
    width: int = 640
    height: int = 480
    frame_gap_s: float = 0.06
    warmup: int = 3
    repeats: int = 2

    def run(self) -> dict[str, dict[str, LatencyStats]]:
        from repro.slam.dataset import SyntheticRgbdDataset
        from repro.slam.pipeline import SlamPipeline, profile

        dataset = SyntheticRgbdDataset(
            width=self.width, height=self.height,
            length=self.frames + self.warmup,
        )
        pooled: dict[str, dict[str, list]] = {}
        for _round in range(self.repeats):
            for kind in ("ros", "rossf"):
                with RosGraph() as graph:
                    pipeline = SlamPipeline(
                        graph, profile(kind), dataset.intrinsics
                    )
                    outcome = pipeline.run(
                        dataset, frame_gap_s=self.frame_gap_s, timeout=180.0
                    )
                per_output = pooled.setdefault(outcome.profile_name, {})
                for output, samples in outcome.latencies.items():
                    per_output.setdefault(output, []).extend(
                        samples[self.warmup :]
                    )
        return {
            profile_name: {
                output: summarize(f"{profile_name} {output}", samples)
                for output, samples in per_output.items()
            }
            for profile_name, per_output in pooled.items()
        }
