"""One-shot reproduction of every table and figure in the paper.

``python -m repro.bench.paper_run [--quick]`` runs Figs. 13, 14, 16, 18
and Table 1 at a moderate scale and prints them in the paper's shapes.
``--full`` approaches the paper's 2,000-iteration runs (slow).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.allocator import tune_for_large_messages
from repro.bench.harness import (
    InterMachineExperiment,
    IntraMachineExperiment,
    MiddlewareComparison,
    SlamCaseStudy,
)
from repro.bench.tables import (
    render_middleware_bars,
    render_profile_comparison,
    render_slam_outputs,
)
from repro.converter.report import run_applicability_study

#: (iterations, warmup, slam frames, publish rate Hz) per scale.  The
#: paper publishes at 10 Hz; faster paced rates keep the default run
#: short while still leaving the pipeline drained between messages.
SCALES = {
    "quick": (20, 10, 10, 60.0),
    "default": (60, 15, 20, 60.0),
    "full": (2000, 50, 60, 10.0),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI-sized)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale iteration counts (slow)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write all results as JSON")
    args = parser.parse_args(argv)
    scale = "full" if args.full else ("quick" if args.quick else "default")
    iterations, warmup, slam_frames, rate_hz = SCALES[scale]
    tune_for_large_messages()

    started = time.monotonic()
    print(f"# ROS-SF paper reproduction run (scale={scale}, "
          f"iterations={iterations})\n")

    fig13 = IntraMachineExperiment(
        iterations=iterations, warmup=warmup, rate_hz=rate_hz
    ).run()
    print(render_profile_comparison(
        "Fig. 13 -- intra-machine transmission latency (loopback TCPROS)",
        fig13,
    ))
    print()

    fig14 = MiddlewareComparison(iterations=iterations, warmup=warmup).run()
    print(render_middleware_bars(
        "Fig. 14 -- intra-machine latency at 6 MB by middleware", fig14,
    ))
    print()

    fig16 = InterMachineExperiment(iterations=iterations, warmup=warmup).run()
    print(render_profile_comparison(
        "Fig. 16 -- inter-machine ping-pong latency (modeled 10 GbE wire "
        "+ measured compute)",
        fig16,
    ))
    print()

    fig18 = SlamCaseStudy(frames=slam_frames).run()
    print(render_slam_outputs(
        "Fig. 18 -- ORB-SLAM case study overall latency", fig18,
    ))
    print()

    table1 = run_applicability_study()
    print("Table 1 -- applicability study")
    print(table1.render())
    print()

    if args.json:
        _write_json(args.json, scale, fig13, fig14, fig16, fig18, table1)
        print(f"(JSON results written to {args.json})")

    print(f"(total reproduction time: {time.monotonic() - started:.1f} s)")
    return 0


def _stats_dict(stats) -> dict:
    return {
        "count": stats.count,
        "mean_ms": stats.mean_ms,
        "std_ms": stats.std_ms,
        "p50_ms": stats.p50_ms,
        "p99_ms": stats.p99_ms,
    }


def _nested(results: dict) -> dict:
    return {
        outer: {inner: _stats_dict(stats) for inner, stats in group.items()}
        for outer, group in results.items()
    }


def _write_json(path, scale, fig13, fig14, fig16, fig18, table1) -> None:
    import json

    payload = {
        "scale": scale,
        "fig13_intra_machine": _nested(fig13),
        "fig14_middleware": {
            name: _stats_dict(stats) for name, stats in fig14.items()
        },
        "fig16_inter_machine": _nested(fig16),
        "fig18_orbslam": _nested(fig18),
        "table1_applicability": {
            name: row.as_tuple() for name, row in table1.rows.items()
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


if __name__ == "__main__":
    sys.exit(main())
