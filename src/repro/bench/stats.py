"""Latency sample aggregation.

The paper's figures report the average latency (boxes) and standard
deviation (black lines); :class:`LatencyStats` computes both plus the
percentiles useful when eyeballing tail behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set, in milliseconds."""

    label: str
    count: int
    mean_ms: float
    std_ms: float
    min_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float

    def row(self) -> str:
        return (
            f"{self.label:<24} n={self.count:<5} "
            f"mean={self.mean_ms:8.3f} ms  std={self.std_ms:7.3f}  "
            f"p50={self.p50_ms:8.3f}  p99={self.p99_ms:8.3f}"
        )


def summarize(label: str, seconds: list[float], warmup: int = 0) -> LatencyStats:
    """Aggregate latency samples (seconds in, milliseconds out).

    ``warmup`` leading samples are dropped (cold caches, first-connection
    effects), mirroring common middleware benchmarking practice.
    """
    samples = sorted(seconds[warmup:])
    if not samples:
        raise ValueError(f"{label}: no samples after warmup")
    count = len(samples)
    mean = sum(samples) / count
    variance = sum((value - mean) ** 2 for value in samples) / count
    def pct(fraction: float) -> float:
        index = min(count - 1, int(round(fraction * (count - 1))))
        return samples[index] * 1000.0
    return LatencyStats(
        label=label,
        count=count,
        mean_ms=mean * 1000.0,
        std_ms=math.sqrt(variance) * 1000.0,
        min_ms=samples[0] * 1000.0,
        p50_ms=pct(0.50),
        p99_ms=pct(0.99),
        max_ms=samples[-1] * 1000.0,
    )


def improvement_percent(baseline: LatencyStats, improved: LatencyStats) -> float:
    """The paper's headline metric: latency reduction in percent."""
    if baseline.mean_ms <= 0:
        return float("nan")
    return 100.0 * (baseline.mean_ms - improved.mean_ms) / baseline.mean_ms
