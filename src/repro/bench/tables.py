"""Rendering of experiment results in the paper's figure/table shapes."""

from __future__ import annotations

from repro.bench.stats import LatencyStats, improvement_percent


def render_profile_comparison(
    title: str, results: dict[str, dict[str, LatencyStats]],
    baseline: str = "ROS", improved: str = "ROS-SF",
) -> str:
    """Figs. 13/16 shape: per workload, ROS vs ROS-SF mean +- std and the
    latency reduction."""
    lines = [title, "=" * len(title)]
    for workload, per_profile in results.items():
        base = per_profile[baseline]
        best = per_profile[improved]
        reduction = improvement_percent(base, best)
        lines.append(
            f"{workload:<24} {baseline}: {base.mean_ms:8.3f} +- "
            f"{base.std_ms:6.3f} ms   {improved}: {best.mean_ms:8.3f} +- "
            f"{best.std_ms:6.3f} ms   reduction: {reduction:5.1f}%"
        )
    return "\n".join(lines)


def render_middleware_bars(
    title: str, results: dict[str, LatencyStats]
) -> str:
    """Fig. 14 shape: one bar per middleware, grouped as in the paper."""
    groups = [
        ("ProtoBuf / FlatBuf", ["ProtoBuf", "FlatBuf", "FlatBuf-SF"]),
        ("RTI / RTI-FlatData", ["RTI", "RTI-FlatData"]),
        ("ROS / ROS-SF", ["ROS", "ROS-SF"]),
    ]
    lines = [title, "=" * len(title)]
    for group_name, names in groups:
        lines.append(f"[{group_name}]")
        for name in names:
            stats = results.get(name)
            if stats is None:
                continue
            bar = "#" * max(1, int(round(stats.mean_ms)))
            lines.append(
                f"  {name:<14} {stats.mean_ms:8.3f} +- {stats.std_ms:6.3f} ms  {bar}"
            )
    return "\n".join(lines)


def render_slam_outputs(
    title: str, results: dict[str, dict[str, LatencyStats]]
) -> str:
    """Fig. 18 shape: per output topic, ROS vs ROS-SF overall latency."""
    lines = [title, "=" * len(title)]
    outputs = ("pose", "pointcloud", "debug_image")
    for output in outputs:
        base = results["ROS"][output]
        best = results["ROS-SF"][output]
        reduction = improvement_percent(base, best)
        lines.append(
            f"{output:<14} ROS: {base.mean_ms:8.2f} +- {base.std_ms:6.2f} ms   "
            f"ROS-SF: {best.mean_ms:8.2f} +- {best.std_ms:6.2f} ms   "
            f"reduction: {reduction:5.1f}%"
        )
    return "\n".join(lines)
