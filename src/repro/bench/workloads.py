"""Workload generation for the latency experiments.

The paper's Section 5.1/5.2 workloads are ``sensor_msgs::Image`` messages
of three sizes: ~200 KB (256x256x24 bit), ~1 MB (800x600x24 bit) and
~6 MB (1920x1080x24 bit).  The creation time is stored into the message
(via ``header.stamp``) and the subscriber records ``now - stamp``.

Construction parity matters: in the C++ experiment both the original ROS
and the ROS-SF code resize the data vector and write the pixels into the
message -- one copy each.  :func:`construct_image` reproduces that: the
source frame is copied into the message on *both* profiles (``bytes(...)``
for the plain class, buffer write for SFM), so the measured difference is
exactly the (de)serialization the paper eliminates, not an accidental
difference in construction work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ImageWorkload:
    """One image-size configuration from the paper."""

    label: str
    width: int
    height: int

    @property
    def data_bytes(self) -> int:
        return self.width * self.height * 3

    def make_frame(self, seed: int = 42) -> bytes:
        """A deterministic pseudo-camera frame of the right size."""
        rng = np.random.default_rng(seed)
        return rng.integers(0, 255, size=self.data_bytes, dtype=np.uint8).tobytes()


#: The paper's three sizes (Fig. 13 / Fig. 16).
IMAGE_WORKLOADS: tuple[ImageWorkload, ...] = (
    ImageWorkload(label="~200KB (256x256x24b)", width=256, height=256),
    ImageWorkload(label="~1MB (800x600x24b)", width=800, height=600),
    ImageWorkload(label="~6MB (1920x1080x24b)", width=1920, height=1080),
)

#: The single size used by Fig. 14's middleware comparison.
SIX_MEGABYTE = IMAGE_WORKLOADS[2]


def construct_image(msg_class, frame: bytes, workload: ImageWorkload,
                    seq: int, stamp) -> object:
    """Build one ``sensor_msgs/Image`` message, copying the frame in.

    The same statements run for the plain and the SFM class -- the code is
    the paper's Fig. 3 pattern and the Converter would leave it unchanged.
    """
    msg = msg_class()
    msg.header.seq = seq
    msg.header.stamp = stamp
    msg.header.frame_id = "camera"
    msg.height = workload.height
    msg.width = workload.width
    msg.encoding = "rgb8"
    msg.is_bigendian = 0
    msg.step = workload.width * 3
    # Copy the pixels into the message (what a camera driver's memcpy
    # does).  bytearray(frame) forces the copy for the plain class; the
    # SFM class copies into its buffer by assignment.
    from repro.sfm.message import SFMMessage

    if isinstance(msg, SFMMessage):
        msg.data = frame
    else:
        msg.data = bytearray(frame)
    return msg


def construct_simple_image(msg_class, frame: bytes, workload: ImageWorkload,
                           stamp) -> object:
    """The paper's simplified StampedImage variant (Figs. 1/3)."""
    msg = msg_class()
    msg.stamp = stamp
    msg.encoding = "rgb8"
    msg.height = workload.height
    msg.width = workload.width
    from repro.sfm.message import SFMMessage

    if isinstance(msg, SFMMessage):
        msg.data = frame
    else:
        msg.data = bytearray(frame)
    return msg
