"""repro.bridge: a rosbridge-style gateway for external clients.

One TCP port in front of a miniros graph; a rosbridge-v2-style op
protocol (advertise / publish / subscribe / unsubscribe / call_service /
status) with three delivery codecs and serialization-free selective
field extraction for SFM topics (see DESIGN.md, "Bridge").
"""

from repro.bridge.client import BridgeClient, BridgeError
from repro.bridge.extract import FieldPathError, FieldSelector
from repro.bridge.protocol import PROTOCOL_VERSION, BridgeProtocolError
from repro.bridge.server import BridgeServer, resolve_msg_class

__all__ = [
    "BridgeClient",
    "BridgeError",
    "BridgeProtocolError",
    "BridgeServer",
    "FieldPathError",
    "FieldSelector",
    "PROTOCOL_VERSION",
    "resolve_msg_class",
]
