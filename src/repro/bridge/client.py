"""BridgeClient: the external-client side of the gateway protocol.

A thin, dependency-free library for programs *outside* the graph::

    client = BridgeClient("127.0.0.1", port)
    client.subscribe("/image", "sensor_msgs/Image@sfm",
                     lambda msg, meta: print(msg["height"], msg["width"]),
                     fields=["height", "width"])

Callbacks receive ``(msg, meta)`` where ``msg`` is

- a dict for ``json`` subscriptions (full message or the selected-field
  subtree),
- ``bytes`` for ``raw`` subscriptions (the message payload exactly as it
  travelled the internal graph -- for SFM topics, the SFM buffer),
- a flat ``{path: value}`` dict for ``cbin`` subscriptions (decoded from
  the packed fields using the schema the server returned at subscribe
  time),

and ``meta`` carries ``sid``, ``topic`` and the per-delivery
``wire_bytes``.  The client counts received messages and bytes-on-wire
per subscription (``received`` / ``wire_bytes``), which is what the
fan-out benchmark reads.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Callable, Optional

from repro.bridge import protocol
from repro.bridge.extract import unpack_packed
from repro.bridge.protocol import (
    BridgeProtocolError,
    TAG_CBIN,
    TAG_JSON,
    TAG_RAW,
)


class BridgeError(Exception):
    """The server reported an error status for one of our requests."""


class _Pending:
    """One in-flight request awaiting its reply op."""

    __slots__ = ("event", "reply", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: Optional[dict] = None
        self.error: Optional[str] = None


class _ClientSub:
    __slots__ = ("sid", "topic", "codec", "schema", "callback")

    def __init__(self, sid, topic, codec, schema, callback) -> None:
        self.sid = sid
        self.topic = topic
        self.codec = codec
        self.schema = schema
        self.callback = callback


class BridgeClient:
    """One connection to a :class:`~repro.bridge.server.BridgeServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        codec: str = "json",
        max_frame: Optional[int] = None,
        timeout: float = 10.0,
    ) -> None:
        self.timeout = timeout
        #: Status ops not tied to a pending request, newest last.
        self.statuses: list[dict] = []
        #: Per-sid counters, fed by the reader thread.
        self.received: dict[int, int] = {}
        self.wire_bytes: dict[int, int] = {}
        self._subs: dict[int, _ClientSub] = {}
        self._chans: dict[str, int] = {}
        self._pending: dict[str, _Pending] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = False
        self._reassembler = protocol.Reassembler()
        self._frag_bytes: dict[object, int] = {}
        self.max_frame = protocol.MAX_FRAME  # until hello_ok negotiates it

        self.sock = self._connect(host, port, timeout)
        hello = {"op": "hello", "codec": codec, "id": self._next_id()}
        if max_frame is not None:
            hello["max_frame"] = max_frame
        pending = self._register(hello["id"])
        self._send_op(hello)
        # The handshake reply is read inline (the reader thread starts
        # after it) so construction fails loudly on a refused hello.
        while not pending.event.is_set():
            self._handle_unit(*self._read_unit())
        reply = self._await(pending, "hello")
        self.codec = reply["codec"]
        self.max_frame = reply["max_frame"]
        self.sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"bridge-client:{host}:{port}",
        )
        self._reader.start()

    def _connect(self, host: str, port: int, timeout: float) -> socket.socket:
        """Open the transport (hook: the ws client adds an HTTP upgrade
        here and swaps the frame codec)."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    # ------------------------------------------------------------------
    # Public ops
    # ------------------------------------------------------------------
    def advertise(self, topic: str, type: str) -> int:
        """Advertise ``topic``; returns the raw-publish channel id."""
        reply = self._request({
            "op": "advertise", "topic": topic, "type": type,
        }, expect="advertise_ok")
        with self._lock:
            self._chans[topic] = reply["chan"]
        return reply["chan"]

    def unadvertise(self, topic: str) -> None:
        self._send_op({"op": "unadvertise", "topic": topic})
        with self._lock:
            self._chans.pop(topic, None)

    def publish(self, topic: str, msg: dict) -> None:
        """Publish a JSON message dict (converted by the gateway)."""
        self._send_op({"op": "publish", "topic": topic, "msg": msg})

    def publish_raw(self, topic: str, payload: bytes) -> None:
        """Publish pre-encoded payload bytes over the raw binary codec
        (for SFM topics: the SFM buffer, forwarded without conversion)."""
        with self._lock:
            chan = self._chans.get(topic)
        if chan is None:
            raise BridgeError(f"{topic} is not advertised on this client")
        self._send_unit(TAG_RAW, protocol.encode_sid_body(chan, payload))

    def subscribe(
        self,
        topic: str,
        type: str,
        callback: Callable,
        fields: Optional[list] = None,
        codec: Optional[str] = None,
        throttle_rate: int = 0,
        queue_length: int = 0,
    ) -> int:
        """Subscribe; returns the sid the server assigned."""
        op = {"op": "subscribe", "topic": topic, "type": type}
        if fields:
            op["fields"] = list(fields)
        if codec:
            op["codec"] = codec
        if throttle_rate:
            op["throttle_rate"] = throttle_rate
        if queue_length:
            op["queue_length"] = queue_length
        reply = self._request(op, expect="subscribe_ok")
        sub = _ClientSub(
            reply["sid"], topic, reply["codec"], reply.get("schema"), callback
        )
        with self._lock:
            self._subs[sub.sid] = sub
            self.received.setdefault(sub.sid, 0)
            self.wire_bytes.setdefault(sub.sid, 0)
        return sub.sid

    def unsubscribe(self, sid: Optional[int] = None,
                    topic: Optional[str] = None) -> None:
        op = {"op": "unsubscribe"}
        if sid is not None:
            op["sid"] = sid
        if topic is not None:
            op["topic"] = topic
        reply = self._request(op, expect="unsubscribe_ok")
        with self._lock:
            for done in reply.get("sids", ()):
                self._subs.pop(done, None)

    def call_service(self, service: str, type: str,
                     args: Optional[dict] = None,
                     timeout: Optional[float] = None) -> dict:
        """Call a graph service; returns the response values dict."""
        op = {"op": "call_service", "service": service, "type": type}
        if args:
            op["args"] = args
        if timeout is not None:
            op["timeout"] = timeout
        reply = self._request(op, expect="service_response",
                              timeout=timeout)
        if not reply.get("result"):
            raise BridgeError(
                reply.get("values", {}).get("error", "service call failed")
            )
        return reply["values"]

    def stats(self) -> dict:
        """The gateway's live counters (subscriptions, advertisements,
        internal subscriber link errors)."""
        return self._request({"op": "stats"}, expect="stats")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for entry in pending:
            entry.error = "client closed"
            entry.event.set()
        # shutdown() before close(): our reader thread is blocked in
        # recv on this socket, and a plain close() would leave the
        # kernel socket (and the server's end) open until it returned.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "BridgeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"c{next(self._ids)}"

    def _register(self, op_id: str) -> _Pending:
        entry = _Pending()
        with self._lock:
            self._pending[op_id] = entry
        return entry

    def _request(self, op: dict, expect: str,
                 timeout: Optional[float] = None) -> dict:
        op_id = self._next_id()
        op["id"] = op_id
        entry = self._register(op_id)
        self._send_op(op)
        reply = self._await(entry, expect, timeout)
        return reply

    def _await(self, entry: _Pending, expect: str,
               timeout: Optional[float] = None) -> dict:
        if not entry.event.wait(timeout or self.timeout):
            raise BridgeError(f"timed out waiting for {expect}")
        if entry.error is not None:
            raise BridgeError(entry.error)
        return entry.reply

    def _send_op(self, op: dict) -> None:
        self._send_unit(TAG_JSON, protocol.encode_json_op(op))

    def _send_unit(self, tag: int, body: bytes) -> None:
        with self._send_lock:
            if 5 + len(body) <= self.max_frame:
                protocol.write_bridge_frame(self.sock, tag, body)
                return
            frag_id = self._next_id()
            for fragment in protocol.fragment_unit(
                tag, body, self.max_frame, frag_id
            ):
                protocol.write_bridge_frame(
                    self.sock, TAG_JSON, protocol.encode_json_op(fragment)
                )

    # ------------------------------------------------------------------
    # Reader
    # ------------------------------------------------------------------
    def _read_unit(self) -> tuple[int, bytearray, int]:
        tag, body = protocol.read_bridge_frame(self.sock)
        return tag, body, 5 + len(body)

    def _read_loop(self) -> None:
        try:
            while not self._closed:
                self._handle_unit(*self._read_unit())
        except (ConnectionError, OSError, BridgeProtocolError):
            pass
        finally:
            self.close()

    def _handle_unit(self, tag: int, body, wire: int) -> None:
        if tag in (TAG_RAW, TAG_CBIN):
            sid, payload = protocol.decode_sid_body(body)
            self._deliver(sid, tag, payload, wire)
            return
        op = protocol.decode_json_op(body)
        kind = op.get("op")
        if kind == "fragment":
            frag_id = op.get("id")
            self._frag_bytes[frag_id] = self._frag_bytes.get(frag_id, 0) + wire
            unit = self._reassembler.add(op)
            if unit is not None:
                total = self._frag_bytes.pop(frag_id, wire)
                self._handle_unit(unit[0], unit[1], total)
            return
        if kind == "publish":
            self._deliver(op.get("sid"), TAG_JSON, op.get("msg"), wire)
            return
        if kind == "status":
            self._on_status(op)
            return
        entry = self._pop_pending(op.get("id"))
        if entry is not None:
            entry.reply = op
            entry.event.set()
        else:
            self.statuses.append(op)

    def _pop_pending(self, op_id) -> Optional[_Pending]:
        if op_id is None:
            return None
        with self._lock:
            return self._pending.pop(op_id, None)

    def _on_status(self, op: dict) -> None:
        entry = self._pop_pending(op.get("id"))
        if entry is not None and op.get("level") in ("error", "warning"):
            # A status addressed to a pending request is its answer: the
            # op was refused (e.g. rate limited).  Fail the caller fast
            # instead of letting it time out.
            entry.error = op.get("msg", "bridge error")
            entry.event.set()
            return
        self.statuses.append(op)

    def _deliver(self, sid, tag: int, payload, wire: int) -> None:
        with self._lock:
            sub = self._subs.get(sid)
            if sub is not None:
                self.received[sid] = self.received.get(sid, 0) + 1
                self.wire_bytes[sid] = self.wire_bytes.get(sid, 0) + wire
        if sub is None:
            return
        if tag == TAG_CBIN:
            if sub.schema is None:
                return
            payload = unpack_packed(sub.schema, payload)
        elif tag == TAG_RAW:
            payload = bytes(payload)
        meta = {"sid": sid, "topic": sub.topic, "wire_bytes": wire}
        try:
            sub.callback(payload, meta)
        except Exception:
            pass  # a client callback must not kill the reader
