"""Message <-> JSON-able dict conversion (the bridge's ``json`` codec).

The conversion is type-driven off the message spec, so it covers both the
plain generated classes and the SFM classes with identical output:

- ``time``/``duration``   <->  ``[secs, nsecs]``
- ``uint8[]`` / ``char[]`` (and fixed byte arrays)  <->  base64 string
  (rosbridge's convention for binary blobs)
- nested messages         <->  nested objects
- ``map`` fields          <->  ``[[key, value], ...]`` pair lists (JSON
  objects cannot carry non-string keys)

``msg_to_dict`` is the *full conversion* path -- it walks every field,
which for a big Image costs exactly the serialization the paper wants to
avoid.  That cost is the bridge benchmark's baseline; selective
subscriptions bypass this module entirely via
:mod:`repro.bridge.extract`.
"""

from __future__ import annotations

import base64

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    MapType,
    PrimitiveType,
    StringType,
)
from repro.msg.generator import generate_message_class
from repro.msg.registry import TypeRegistry
from repro.sfm.message import SFMMessage


class ConversionError(ValueError):
    """A JSON value does not fit the field it is assigned to."""


def _is_byte_element(ftype) -> bool:
    return isinstance(ftype, PrimitiveType) and ftype.name in ("uint8", "char")


# ----------------------------------------------------------------------
# Message -> dict
# ----------------------------------------------------------------------
def msg_to_dict(msg) -> dict:
    """Convert a plain or SFM message object to a JSON-able dict."""
    spec = type(msg)._spec
    registry = type(msg)._registry
    return {
        field.name: _value_to_jsonable(
            getattr(msg, field.name), field.type, registry
        )
        for field in spec.fields
    }


def _value_to_jsonable(value, ftype, registry: TypeRegistry):
    if isinstance(ftype, PrimitiveType):
        if ftype.is_time or ftype.struct_fmt in ("II", "ii"):
            secs, nsecs = value
            return [int(secs), int(nsecs)]
        if ftype.struct_fmt == "?":
            return bool(value)
        return value
    if isinstance(ftype, StringType):
        return str(value)
    if isinstance(ftype, MapType):
        items = value.items() if hasattr(value, "items") else value
        return [
            [
                _value_to_jsonable(key, ftype.key_type, registry),
                _value_to_jsonable(val, ftype.value_type, registry),
            ]
            for key, val in items
        ]
    if isinstance(ftype, ArrayType):
        if _is_byte_element(ftype.element_type):
            raw = value.tobytes() if hasattr(value, "tobytes") else bytes(value)
            return base64.b64encode(raw).decode("ascii")
        return [
            _value_to_jsonable(item, ftype.element_type, registry)
            for item in value
        ]
    if isinstance(ftype, ComplexType):
        return msg_to_dict(
            value if hasattr(value, "_spec") else _as_message(value)
        )
    raise ConversionError(f"unconvertible field type {ftype!r}")


def _as_message(value):  # pragma: no cover - defensive
    raise ConversionError(f"cannot convert {type(value).__name__} to JSON")


# ----------------------------------------------------------------------
# dict -> message
# ----------------------------------------------------------------------
def dict_to_msg(data: dict, msg_class: type):
    """Build a ``msg_class`` instance from a JSON-decoded dict.

    Unknown keys are rejected (they signal a schema mismatch between
    client and graph); missing keys keep their defaults, so sparse
    publishes work.
    """
    if not isinstance(data, dict):
        raise ConversionError(
            f"message value must be an object, got {type(data).__name__}"
        )
    spec = msg_class._spec
    registry = msg_class._registry
    known = {field.name: field for field in spec.fields}
    unknown = set(data) - set(known)
    if unknown:
        raise ConversionError(
            f"{spec.full_name} has no field(s): {', '.join(sorted(unknown))}"
        )
    sfm = isinstance(msg_class, type) and issubclass(msg_class, SFMMessage)
    kwargs = {
        name: _jsonable_to_value(value, known[name].type, registry, sfm)
        for name, value in data.items()
    }
    return msg_class(**kwargs)


def _jsonable_to_value(value, ftype, registry: TypeRegistry, sfm: bool):
    if isinstance(ftype, PrimitiveType):
        if ftype.is_time or ftype.struct_fmt in ("II", "ii"):
            if not isinstance(value, (list, tuple)) or len(value) != 2:
                raise ConversionError(
                    f"time value must be [secs, nsecs], got {value!r}"
                )
            return (int(value[0]), int(value[1]))
        if ftype.is_integral and isinstance(value, bool):
            return int(value) if ftype.struct_fmt != "?" else value
        if ftype.is_integral and not isinstance(value, int):
            raise ConversionError(f"expected integer, got {value!r}")
        if ftype.is_float and not isinstance(value, (int, float)):
            raise ConversionError(f"expected number, got {value!r}")
        return value
    if isinstance(ftype, StringType):
        if not isinstance(value, str):
            raise ConversionError(f"expected string, got {value!r}")
        return value
    if isinstance(ftype, MapType):
        if isinstance(value, dict):
            pairs = list(value.items())
        elif isinstance(value, list):
            pairs = value
        else:
            raise ConversionError(f"expected map pairs, got {value!r}")
        return {
            _jsonable_to_value(k, ftype.key_type, registry, sfm):
                _jsonable_to_value(v, ftype.value_type, registry, sfm)
            for k, v in pairs
        }
    if isinstance(ftype, ArrayType):
        if _is_byte_element(ftype.element_type):
            if isinstance(value, str):
                try:
                    raw = base64.b64decode(value.encode("ascii"),
                                           validate=True)
                except (ValueError, UnicodeEncodeError) as exc:
                    raise ConversionError(
                        f"undecodable base64 byte array: {exc}"
                    ) from exc
            elif isinstance(value, list):
                raw = bytes(value)
            else:
                raise ConversionError(
                    f"expected base64 string or int list, got {value!r}"
                )
            if ftype.length is not None and len(raw) != ftype.length:
                raise ConversionError(
                    f"fixed array expects {ftype.length} bytes, "
                    f"got {len(raw)}"
                )
            return bytearray(raw)
        if not isinstance(value, list):
            raise ConversionError(f"expected array, got {value!r}")
        if ftype.length is not None and len(value) != ftype.length:
            raise ConversionError(
                f"fixed array expects {ftype.length} elements, "
                f"got {len(value)}"
            )
        return [
            _jsonable_to_value(item, ftype.element_type, registry, sfm)
            for item in value
        ]
    if isinstance(ftype, ComplexType):
        if sfm:
            # SFM nested assignment takes a field dict directly (the
            # descriptor recurses through _copy_fields_from).
            nested_cls = None
        else:
            nested_cls = generate_message_class(ftype.name, registry)
        if not isinstance(value, dict):
            raise ConversionError(
                f"expected object for {ftype.name}, got {value!r}"
            )
        spec = registry.get(ftype.name)
        known = {field.name: field for field in spec.fields}
        unknown = set(value) - set(known)
        if unknown:
            raise ConversionError(
                f"{ftype.name} has no field(s): {', '.join(sorted(unknown))}"
            )
        converted = {
            name: _jsonable_to_value(item, known[name].type, registry, sfm)
            for name, item in value.items()
        }
        if nested_cls is None:
            return converted
        return nested_cls(**converted)
    raise ConversionError(f"unconvertible field type {ftype!r}")
