"""Serialization-free selective field extraction (the bridge's headline).

Klüner et al.'s Selective Field Transmission observation (PAPERS.md) is
that most external subscribers of standardized schemas need only a few
fields.  rosbridge still converts the *whole* message to JSON; with SFM
the bridge can do strictly better, because every field of an SFM buffer
lives at a fixed offset (paper Section 4.1).  A :class:`FieldSelector`
compiles a list of dotted field paths against the message type's
:class:`~repro.sfm.layout.SkeletonLayout` **once at subscribe time**:

- a fixed-size primitive becomes a precompiled ``struct`` read at an
  absolute offset;
- a string/vector becomes one ``(length, offset)`` pair read plus a slice
  of the content region;
- a nested message path (``header.stamp``) folds the bases together at
  compile time into a single absolute offset.

``extract()`` then slices exactly the requested fields out of the raw
published buffer -- no SFM object is constructed, no generated
deserializer runs, and untouched fields (for an Image, the megabytes of
``data``) are never read at all.

The compact binary codec rides the same compilation: ``pack()`` copies
each selected field's bytes (already little-endian on the wire) into a
tiny frame, and ``unpack_packed()`` reverses it client-side from the
``schema()`` the server sends in the subscribe ack.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.sfm.layout import (
    NestedDesc,
    PairDesc,
    PrimDesc,
    SkeletonLayout,
    Slot,
    StrDesc,
    decode_pair,
)

_U32 = struct.Struct("<I")


class FieldPathError(ValueError):
    """A requested field path does not resolve against the layout."""


def _is_time(prim) -> bool:
    return prim.is_time or prim.type.struct_fmt in ("II", "ii")


def _string_at(buffer, offset: int) -> str:
    """Read an SFM string field/element at ``offset`` (length includes
    terminator + padding; content ends at the first NUL)."""
    length, start = decode_pair(buffer, offset)
    if length == 0:
        return ""
    raw = bytes(buffer[start : start + length])
    nul = raw.find(b"\x00")
    return (raw[:nul] if nul >= 0 else raw).decode("utf-8")


class _Reader:
    """One compiled terminal: reads a python value at a fixed offset."""

    __slots__ = ("path", "offset", "kind", "packer", "element", "sub", "count")

    def __init__(self, path: str, offset: int, kind: str, packer=None,
                 element=None, sub=None, count: Optional[int] = None) -> None:
        self.path = path
        self.offset = offset
        self.kind = kind
        self.packer = packer
        self.element = element
        self.sub = sub          # list[_Reader] for nested terminals
        self.count = count      # fixed_array length

    # ------------------------------------------------------------------
    def read(self, buffer):
        kind = self.kind
        offset = self.offset
        if kind == "prim":
            return self.packer.unpack_from(buffer, offset)[0]
        if kind == "time":
            return list(self.packer.unpack_from(buffer, offset))
        if kind == "string":
            return _string_at(buffer, offset)
        if kind == "bytes":
            count, start = decode_pair(buffer, offset)
            return bytes(buffer[start : start + count])
        if kind == "prim_vector":
            count, start = decode_pair(buffer, offset)
            if count == 0:
                return []
            return list(
                struct.unpack_from(f"<{count}{self.element.type.struct_fmt}",
                                   buffer, start)
            )
        if kind == "time_vector":
            count, start = decode_pair(buffer, offset)
            return [
                list(self.packer.unpack_from(buffer, start + i * 8))
                for i in range(count)
            ]
        if kind == "str_vector":
            count, start = decode_pair(buffer, offset)
            return [_string_at(buffer, start + i * 8) for i in range(count)]
        if kind == "nested_vector":
            count, start = decode_pair(buffer, offset)
            size = self.element.size
            return [
                _read_all(self.sub, buffer, start + i * size)
                for i in range(count)
            ]
        if kind == "map":
            count, start = decode_pair(buffer, offset)
            pair: PairDesc = self.element
            out = []
            for i in range(count):
                base = start + i * pair.size
                out.append([
                    _read_element(pair.key, buffer, base),
                    _read_element(pair.value, buffer, base + pair.key.size),
                ])
            return out
        if kind == "fixed_bytes":
            return bytes(buffer[offset : offset + self.count])
        if kind == "fixed_prims":
            return list(
                struct.unpack_from(
                    f"<{self.count}{self.element.type.struct_fmt}",
                    buffer, offset,
                )
            )
        if kind == "fixed_elems":
            size = self.element.size
            return [
                _read_element(self.element, buffer, offset + i * size)
                for i in range(self.count)
            ]
        if kind == "nested":
            return _read_all(self.sub, buffer, 0)
        raise AssertionError(kind)  # pragma: no cover - exhaustive


def _read_all(readers: list[_Reader], buffer, shift: int) -> dict:
    """Read a nested terminal's sub-readers, shifted by an element base."""
    out = {}
    for reader in readers:
        if shift:
            reader = _shifted(reader, shift)
        out[reader.path] = reader.read(buffer)
    return out


def _shifted(reader: _Reader, shift: int) -> _Reader:
    return _Reader(reader.path, reader.offset + shift, reader.kind,
                   reader.packer, reader.element, reader.sub, reader.count)


def _read_element(element, buffer, offset: int):
    if isinstance(element, PrimDesc):
        if _is_time(element):
            return list(struct.unpack_from("<II", buffer, offset))
        return struct.unpack_from(
            "<" + element.type.struct_fmt, buffer, offset
        )[0]
    if isinstance(element, StrDesc):
        return _string_at(buffer, offset)
    if isinstance(element, NestedDesc):
        readers = [
            _compile_slot(slot.name, slot, slot.offset)
            for slot in element.layout.slots
        ]
        return _read_all(readers, buffer, offset)
    raise AssertionError(element)  # pragma: no cover


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _compile_slot(path: str, slot: Slot, offset: int) -> _Reader:
    if slot.kind == "primitive":
        packer = struct.Struct("<" + slot.prim.type.struct_fmt)
        kind = "time" if _is_time(slot.prim) else "prim"
        return _Reader(path, offset, kind, packer=packer)
    if slot.kind == "string":
        return _Reader(path, offset, "string")
    if slot.kind == "vector":
        if slot.is_map:
            return _Reader(path, offset, "map", element=slot.element)
        element = slot.element
        if isinstance(element, PrimDesc):
            if _is_time(element):
                return _Reader(path, offset, "time_vector",
                               packer=struct.Struct("<II"), element=element)
            if element.size == 1 and element.type.is_integral:
                return _Reader(path, offset, "bytes", element=element)
            return _Reader(path, offset, "prim_vector", element=element)
        if isinstance(element, StrDesc):
            return _Reader(path, offset, "str_vector", element=element)
        sub = [
            _compile_slot(s.name, s, s.offset) for s in element.layout.slots
        ]
        return _Reader(path, offset, "nested_vector", element=element, sub=sub)
    if slot.kind == "fixed_array":
        element = slot.element
        if isinstance(element, PrimDesc) and not _is_time(element):
            if element.size == 1 and element.type.is_integral:
                return _Reader(path, offset, "fixed_bytes",
                               count=slot.fixed_length)
            return _Reader(path, offset, "fixed_prims", element=element,
                           count=slot.fixed_length)
        return _Reader(path, offset, "fixed_elems", element=element,
                       count=slot.fixed_length)
    if slot.kind == "nested":
        sub = [
            _compile_slot(s.name, s, offset + s.offset)
            for s in slot.nested.slots
        ]
        return _Reader(path, offset, "nested", sub=sub)
    raise AssertionError(slot.kind)  # pragma: no cover


def _resolve(layout: SkeletonLayout, path: str) -> _Reader:
    parts = path.split(".")
    base = 0
    current = layout
    for depth, part in enumerate(parts):
        slot = current.slot_by_name.get(part)
        if slot is None:
            raise FieldPathError(
                f"{layout.type_name}: no field {path!r} "
                f"({current.type_name} has no {part!r})"
            )
        if depth == len(parts) - 1:
            return _compile_slot(path, slot, base + slot.offset)
        if slot.kind != "nested":
            raise FieldPathError(
                f"{layout.type_name}: {path!r} descends through "
                f"non-message field {part!r}"
            )
        base += slot.offset
        current = slot.nested
    raise FieldPathError(f"{layout.type_name}: empty path")  # pragma: no cover


#: Compact-binary schema entry kinds the client-side unpacker understands.
_CBIN_PACKABLE = ("prim", "time", "string", "bytes", "prim_vector")


class FieldSelector:
    """Selected fields of one SFM message type, compiled to offset reads.

    ``extracts`` counts how many buffers this selector has sliced -- the
    observable witness (used by tests and the fan-out benchmark) that the
    serialization-free accessor path served the subscription, rather than
    a decode of the whole message.
    """

    def __init__(self, layout: SkeletonLayout, paths: list[str]) -> None:
        if not paths:
            raise FieldPathError("empty field selection")
        seen = set()
        self.paths = []
        for path in paths:
            if path not in seen:
                seen.add(path)
                self.paths.append(path)
        self.layout = layout
        self._readers = [_resolve(layout, path) for path in self.paths]
        self.extracts = 0

    # ------------------------------------------------------------------
    # JSON-able extraction
    # ------------------------------------------------------------------
    def extract(self, buffer) -> dict:
        """Flat ``{path: value}`` dict sliced from a raw SFM buffer."""
        self.extracts += 1
        return {reader.path: reader.read(buffer) for reader in self._readers}

    def extract_nested(self, buffer) -> dict:
        """Like :meth:`extract` but with dotted paths unfolded into
        nested objects (the shape a rosbridge ``msg`` field has)."""
        return nest_paths(self.extract(buffer))

    # ------------------------------------------------------------------
    # Compact binary codec
    # ------------------------------------------------------------------
    def schema(self) -> list[list]:
        """Wire schema for ``cbin`` subscriptions: one
        ``[path, kind, struct_fmt]`` entry per selected field.

        Raises :class:`FieldPathError` when a selected field has no
        compact encoding (nested/map/array-of-message terminals) -- the
        server rejects such ``cbin`` subscriptions with an error status;
        select packable leaf fields or use the ``json`` codec instead.
        """
        entries = []
        for reader in self._readers:
            if reader.kind not in _CBIN_PACKABLE:
                raise FieldPathError(
                    f"field {reader.path!r} ({reader.kind}) has no compact "
                    "binary encoding"
                )
            fmt = ""
            if reader.kind == "prim":
                fmt = reader.packer.format.lstrip("<")
            elif reader.kind == "prim_vector":
                fmt = reader.element.type.struct_fmt
            entries.append([reader.path, reader.kind, fmt])
        return entries

    def pack(self, buffer) -> bytes:
        """Pack the selected fields into one compact binary body.

        Fixed-size fields are raw byte copies (the buffer is already
        little-endian wire format); strings and vectors carry a u32 count
        before their content bytes.
        """
        self.extracts += 1
        out = bytearray()
        for reader in self._readers:
            kind = reader.kind
            offset = reader.offset
            if kind == "prim":
                out += bytes(buffer[offset : offset + reader.packer.size])
            elif kind == "time":
                out += bytes(buffer[offset : offset + 8])
            elif kind == "string":
                text = _string_at(buffer, offset).encode("utf-8")
                out += _U32.pack(len(text)) + text
            elif kind == "bytes":
                count, start = decode_pair(buffer, offset)
                out += _U32.pack(count)
                out += bytes(buffer[start : start + count])
            elif kind == "prim_vector":
                count, start = decode_pair(buffer, offset)
                size = reader.element.size
                out += _U32.pack(count)
                out += bytes(buffer[start : start + count * size])
            else:  # pragma: no cover - schema() rejects these up front
                raise FieldPathError(reader.kind)
        return bytes(out)


def unpack_packed(schema: list, payload: bytes) -> dict:
    """Client-side inverse of :meth:`FieldSelector.pack`."""
    out: dict = {}
    offset = 0
    for path, kind, fmt in schema:
        if kind == "prim":
            packer = struct.Struct("<" + fmt)
            out[path] = packer.unpack_from(payload, offset)[0]
            offset += packer.size
        elif kind == "time":
            out[path] = list(struct.unpack_from("<II", payload, offset))
            offset += 8
        elif kind == "string":
            (length,) = _U32.unpack_from(payload, offset)
            offset += 4
            out[path] = payload[offset : offset + length].decode("utf-8")
            offset += length
        elif kind == "bytes":
            (length,) = _U32.unpack_from(payload, offset)
            offset += 4
            out[path] = bytes(payload[offset : offset + length])
            offset += length
        elif kind == "prim_vector":
            (count,) = _U32.unpack_from(payload, offset)
            offset += 4
            out[path] = list(
                struct.unpack_from(f"<{count}{fmt}", payload, offset)
            )
            offset += count * struct.calcsize("<" + fmt)
        else:
            raise FieldPathError(f"unknown schema kind {kind!r}")
    return out


def nest_paths(flat: dict) -> dict:
    """``{"header.seq": 1}`` -> ``{"header": {"seq": 1}}``."""
    out: dict = {}
    for path, value in flat.items():
        node = out
        parts = path.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    return out
