"""The bridge wire protocol: framing, op validation and fragmentation.

The gateway speaks a rosbridge-v2-style op protocol over a single TCP
port.  Every protocol unit is a *frame*::

    u32 LE length | u8 tag | body        (length counts tag + body)

with three frame kinds (the three wire codecs of the bridge):

- ``TAG_JSON``   -- ``body`` is one UTF-8 JSON object, an *op* such as
  ``subscribe`` or ``publish`` (full-message JSON conversion);
- ``TAG_RAW``    -- ``body`` is ``u32 sid | payload``: the payload bytes
  of one message exactly as they travelled the internal graph.  For SFM
  topics this is the SFM buffer untouched -- the serialization-free
  forwarding path;
- ``TAG_CBIN``   -- ``body`` is ``u32 sid | packed fields``: the compact
  binary encoding of the subscription's selected fields, packed straight
  out of the SFM buffer by :mod:`repro.bridge.extract`.

Ops are JSON regardless of delivery codec, so every connection can issue
control traffic.  Frames larger than the connection's negotiated
``max_frame`` are split into ``fragment`` ops (base64 chunks of the inner
``tag | body`` unit) and re-assembled by :class:`Reassembler` -- the
rosbridge fragmentation capability, generalized to all three codecs.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
from typing import Iterator, Optional

from repro.ros.transport import tcpros

PROTOCOL_VERSION = "2.0"

#: Frame tags (first byte inside the length-framed unit).
TAG_JSON = 0x00
TAG_RAW = 0x01
TAG_CBIN = 0x02

#: Upper bound on accepted frames, mirroring the TCPROS guard.
MAX_FRAME = tcpros.MAX_FRAME

#: Smallest negotiable fragmentation threshold; below this the base64 +
#: envelope overhead of a fragment op would not fit.
MIN_MAX_FRAME = 256

#: Most fragments one unit can legitimately need: a MAX_FRAME unit,
#: base64-expanded, split at the smallest chunk :func:`fragment_unit`
#: ever emits.  A client-supplied ``total`` above this is rejected
#: before any slot list is allocated for it.
MAX_FRAGMENT_TOTAL = (4 * MAX_FRAME // 3 + 4) // (MIN_MAX_FRAME // 2) + 1

#: Most base64 text one reassembly may buffer (a MAX_FRAME unit,
#: encoded, plus padding).
_MAX_ENCODED = 4 * MAX_FRAME // 3 + 8

_LEN = struct.Struct("<I")
_SID = struct.Struct("<I")

#: Delivery codecs a subscription (or a connection default) may name.
CODECS = ("json", "raw", "cbin")

#: Status severity levels (rosbridge's set).
STATUS_LEVELS = ("error", "warning", "info", "none")


class BridgeProtocolError(Exception):
    """A malformed frame or op that cannot be attributed to a request."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def write_bridge_frame(sock: socket.socket, tag: int, body) -> int:
    """Write one ``length | tag | body`` frame; returns bytes on wire."""
    payload = bytes([tag]) + bytes(body)
    tcpros.write_frame(sock, payload)
    return 4 + len(payload)


def read_bridge_frame(sock: socket.socket) -> tuple[int, bytearray]:
    """Read one frame, returning ``(tag, body)``."""
    frame = tcpros.read_frame(sock)
    if not frame:
        raise BridgeProtocolError("empty bridge frame")
    return frame[0], frame[1:]


def encode_json_op(op: dict) -> bytes:
    return json.dumps(op, separators=(",", ":")).encode("utf-8")


def decode_json_op(body) -> dict:
    try:
        op = json.loads(bytes(body).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise BridgeProtocolError(f"undecodable JSON op: {exc}") from exc
    if not isinstance(op, dict):
        raise BridgeProtocolError("JSON op must be an object")
    return op


def encode_sid_body(sid: int, payload) -> bytes:
    """``u32 sid | payload`` body for RAW and CBIN frames."""
    return _SID.pack(sid) + bytes(payload)


def decode_sid_body(body) -> tuple[int, bytes]:
    if len(body) < 4:
        raise BridgeProtocolError("binary frame shorter than its sid")
    return _SID.unpack_from(body)[0], bytes(body[4:])


# ----------------------------------------------------------------------
# Op validation
# ----------------------------------------------------------------------
#: Required fields per op, as (name, acceptable types).  ``subscribe``'s
#: ``type`` may carry an ``@sfm`` suffix, resolved by the server.
_REQUIRED: dict[str, tuple[tuple[str, tuple], ...]] = {
    "hello": (),
    "advertise": (("topic", (str,)), ("type", (str,))),
    "unadvertise": (("topic", (str,)),),
    "publish": (("topic", (str,)), ("msg", (dict,))),
    "subscribe": (("topic", (str,)), ("type", (str,))),
    "unsubscribe": (),
    "call_service": (("service", (str,)), ("type", (str,))),
    "status": (("msg", (str,)),),
    "stats": (),
    "fragment": (
        ("id", (str, int)),
        ("num", (int,)),
        ("total", (int,)),
        ("data", (str,)),
    ),
}

#: Optional fields with type constraints (checked when present).
_OPTIONAL: dict[str, tuple[tuple[str, tuple], ...]] = {
    "hello": (
        ("codec", (str,)),
        ("max_frame", (int,)),
    ),
    "subscribe": (
        ("fields", (list,)),
        ("throttle_rate", (int,)),
        ("queue_length", (int,)),
        ("codec", (str,)),
    ),
    "unsubscribe": (("topic", (str,)), ("sid", (int,))),
    "call_service": (("args", (dict,)), ("timeout", (int, float))),
    "status": (("level", (str,)),),
}


def validate_op(op: dict) -> Optional[str]:
    """Return an error description for a malformed op, or None if OK."""
    name = op.get("op")
    if not isinstance(name, str):
        return "op object is missing its 'op' field"
    required = _REQUIRED.get(name)
    if required is None:
        return f"unknown op {name!r}"
    for field, types in required:
        if field not in op:
            return f"op {name!r} is missing required field {field!r}"
        if not isinstance(op[field], types):
            return (
                f"op {name!r} field {field!r} has type "
                f"{type(op[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    for field, types in _OPTIONAL.get(name, ()):
        if field in op and not isinstance(op[field], types):
            return (
                f"op {name!r} field {field!r} has type "
                f"{type(op[field]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if name == "hello" and op.get("codec") not in (None,) + tuple(CODECS):
        return f"unknown codec {op.get('codec')!r} (one of {CODECS})"
    if name == "subscribe":
        codec = op.get("codec")
        if codec is not None and codec not in CODECS:
            return f"unknown codec {codec!r} (one of {CODECS})"
        fields = op.get("fields")
        if fields is not None and not all(
            isinstance(path, str) and path for path in fields
        ):
            return "op 'subscribe' field 'fields' must be non-empty strings"
        for bound in ("throttle_rate", "queue_length"):
            if op.get(bound) is not None and op[bound] < 0:
                return f"op 'subscribe' field {bound!r} must be >= 0"
    if name == "unsubscribe" and "topic" not in op and "sid" not in op:
        return "op 'unsubscribe' needs a 'topic' or a 'sid'"
    if name == "fragment":
        if op["total"] <= 0 or not 0 <= op["num"] < op["total"]:
            return "op 'fragment' has an inconsistent num/total"
        if op["total"] > MAX_FRAGMENT_TOTAL:
            return (
                f"op 'fragment' total {op['total']} exceeds the "
                f"{MAX_FRAGMENT_TOTAL}-fragment bound"
            )
    return None


def status_op(level: str, msg: str, id=None) -> dict:
    """Build a ``status`` op (the error/diagnostic channel)."""
    op = {"op": "status", "level": level, "msg": msg}
    if id is not None:
        op["id"] = id
    return op


# ----------------------------------------------------------------------
# Fragmentation
# ----------------------------------------------------------------------
def fragment_unit(
    tag: int, body, max_frame: int, frag_id
) -> Iterator[dict]:
    """Split one oversized ``tag | body`` unit into ``fragment`` ops.

    The chunks carry base64 of the *whole inner unit* (tag byte included),
    so reassembly is codec-agnostic: RAW and CBIN deliveries fragment
    exactly like JSON ops.
    """
    unit = bytes([tag]) + bytes(body)
    encoded = base64.b64encode(unit).decode("ascii")
    # Budget for chunk text: the negotiated frame bound minus a generous
    # envelope allowance (op name, id, counters, JSON punctuation).
    chunk = max(MIN_MAX_FRAME // 2, max_frame - 128)
    total = -(-len(encoded) // chunk)
    for num in range(total):
        yield {
            "op": "fragment",
            "id": frag_id,
            "num": num,
            "total": total,
            "data": encoded[num * chunk : (num + 1) * chunk],
        }


class Reassembler:
    """Collects ``fragment`` ops and yields the reassembled unit.

    Keeps at most ``max_pending`` in-progress messages; older ones are
    discarded (a slow or broken peer must not grow memory unboundedly).

    ``sequential=True`` additionally rejects *interleaved* fragment
    streams: a fragment starting a new unit while another unit is still
    incomplete raises instead of allocating a second slot list.  The
    WebSocket front door runs in this mode -- ws framing is
    message-ordered per connection, so interleaving there is always a
    hostile or broken peer, and one client must not hold ``max_pending``
    reassembly buffers at once.
    """

    def __init__(self, max_pending: int = 8, sequential: bool = False) -> None:
        self._pending: dict[object, list] = {}
        self._sizes: dict[object, int] = {}
        self._order: list = []
        self._max_pending = max_pending
        self._sequential = sequential

    def _discard(self, frag_id) -> None:
        self._pending.pop(frag_id, None)
        self._sizes.pop(frag_id, None)
        if frag_id in self._order:
            self._order.remove(frag_id)

    def add(self, op: dict) -> Optional[tuple[int, bytearray]]:
        """Feed one fragment op; returns ``(tag, body)`` when complete."""
        error = validate_op(op) if op.get("op") == "fragment" else "not a fragment"
        if error:
            raise BridgeProtocolError(error)
        frag_id, num, total = op["id"], op["num"], op["total"]
        slots = self._pending.get(frag_id)
        if slots is None:
            if self._sequential and self._pending:
                pending = next(iter(self._pending))
                raise BridgeProtocolError(
                    f"fragment {frag_id!r} interleaves with the unfinished "
                    f"fragment stream {pending!r}"
                )
            slots = [None] * total
            self._pending[frag_id] = slots
            self._sizes[frag_id] = 0
            self._order.append(frag_id)
            while len(self._order) > self._max_pending:
                stale = self._order.pop(0)
                self._pending.pop(stale, None)
                self._sizes.pop(stale, None)
        if len(slots) != total:
            raise BridgeProtocolError(
                f"fragment {frag_id!r}: total changed mid-stream"
            )
        previous = slots[num]
        slots[num] = op["data"]
        self._sizes[frag_id] += len(op["data"]) - (
            len(previous) if previous is not None else 0
        )
        if self._sizes[frag_id] > _MAX_ENCODED:
            self._discard(frag_id)
            raise BridgeProtocolError(
                f"fragment {frag_id!r}: reassembled unit would exceed "
                f"the {MAX_FRAME}-byte frame bound"
            )
        if any(part is None for part in slots):
            return None
        self._discard(frag_id)
        try:
            unit = base64.b64decode("".join(slots).encode("ascii"))
        except (ValueError, UnicodeEncodeError) as exc:
            raise BridgeProtocolError(
                f"fragment {frag_id!r}: undecodable base64: {exc}"
            ) from exc
        if not unit:
            raise BridgeProtocolError(f"fragment {frag_id!r}: empty unit")
        return unit[0], bytearray(unit[1:])
