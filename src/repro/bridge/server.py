"""The bridge gateway: many external clients, one port, one graph node.

Architecture (mirroring rosbridge's server/protocol split, adapted to the
serialization-free middleware)::

    external clients                 gateway                 miniros graph
    ----------------   frames   -----------------   SHMROS/TCPROS
    BridgeClient  <--------------> _ClientSession <---+
    BridgeClient  <--------------> _ClientSession <---+--- _TopicTap --- Subscriber(raw)
    ...                                                |
                                                       +--- _Advertisement --- Publisher

- one **_ClientSession** per connection: a reader thread parsing frames
  and a writer thread draining that client's shared fan-out queue (all of
  its subscriptions feed one bounded queue, like the per-link queues of
  :mod:`repro.ros.topic`);
- one **_TopicTap** per (topic, class flavour): a single *raw* internal
  subscription whose payload bytes fan out to every bridge subscription,
  so the graph-side cost is paid once regardless of client count;
- per-delivery encoding happens **once per message per distinct
  (codec, fields) shape** and the encoded payload is shared by every
  subscription of that shape -- the bridge-level analogue of the
  topic layer's encode-once fan-out.

Selective field subscriptions on SFM topics never decode the message:
the tap hands the raw buffer to a compiled
:class:`~repro.bridge.extract.FieldSelector`, which slices the requested
fields by fixed offset (serialization-free selective field extraction).
"""

from __future__ import annotations

import base64
import itertools
import json
import socket
import struct
import threading
import time
from collections import deque
from typing import Optional

from repro.bridge import protocol
from repro.bridge.conversion import ConversionError, dict_to_msg, msg_to_dict
from repro.bridge.extract import FieldPathError, FieldSelector, nest_paths
from repro.bridge.protocol import (
    BridgeProtocolError,
    TAG_CBIN,
    TAG_JSON,
    TAG_RAW,
    status_op,
)
from repro.msg.fields import ComplexType
from repro.msg.generator import generate_message_class
from repro.msg.registry import TypeRegistry, UnknownTypeError, default_registry
from repro.msg.srv import default_service_registry, service_type
from repro.obs import instrument as obs_instrument
from repro.ros import reactor as reactor_mod
from repro.ros.codecs import codec_for_class
from repro.ros.transport import tcpros
from repro.sfm.generator import generate_sfm_class
from repro.sfm.message import SFMMessage


def resolve_msg_class(spelling: str, registry: Optional[TypeRegistry] = None):
    """``pkg/Type`` -> plain class, ``pkg/Type@sfm`` -> SFM class.

    Raises :class:`ValueError` for bad flavours and
    :class:`~repro.msg.registry.UnknownTypeError` for unknown types.
    """
    registry = registry or default_registry
    name, _, flavour = spelling.partition("@")
    if flavour and flavour != "sfm":
        raise ValueError(f"unknown class flavour {flavour!r} (use @sfm)")
    try:
        if flavour == "sfm":
            return generate_sfm_class(name, registry)
        return generate_message_class(name, registry)
    except UnknownTypeError:
        raise UnknownTypeError(f"unknown message type {name!r}") from None


class _Subscription:
    """One client subscription: codec shape, throttle/queue policy and
    wire counters."""

    __slots__ = (
        "sid", "session", "topic", "spelling", "codec", "fields", "selector",
        "schema", "throttle_rate", "queue_length", "sent", "wire_bytes",
        "dropped", "throttled", "queued", "_last_send",
    )

    def __init__(self, sid, session, topic, spelling, codec, fields,
                 selector, schema, throttle_rate, queue_length) -> None:
        self.sid = sid
        self.session = session
        self.topic = topic
        self.spelling = spelling
        self.codec = codec
        self.fields = fields
        self.selector = selector
        self.schema = schema
        self.throttle_rate = throttle_rate
        self.queue_length = queue_length
        self.sent = 0
        self.wire_bytes = 0
        self.dropped = 0
        self.throttled = 0
        #: Deliveries currently sitting in the session queue (guarded by
        #: the session condition) -- keeps the bound check O(1).
        self.queued = 0
        self._last_send = 0.0

    def throttle(self, now: float) -> bool:
        """True when this message must be dropped by throttle_rate."""
        if self.throttle_rate and (now - self._last_send) * 1000.0 < self.throttle_rate:
            self.throttled += 1
            return True
        self._last_send = now
        return False

    def describe(self) -> dict:
        return {
            "sid": self.sid,
            "topic": self.topic,
            "type": self.spelling,
            "codec": self.codec,
            "fields": self.fields,
            "throttle_rate": self.throttle_rate,
            "queue_length": self.queue_length,
            "sent": self.sent,
            "wire_bytes": self.wire_bytes,
            "dropped": self.dropped,
            "throttled": self.throttled,
        }


class _TopicTap:
    """One raw internal subscription fanning out to bridge subscriptions."""

    def __init__(self, server: "BridgeServer", topic: str, spelling: str) -> None:
        self.server = server
        self.topic = topic
        self.spelling = spelling
        self.msg_class = resolve_msg_class(spelling, server.registry)
        self.is_sfm = issubclass(self.msg_class, SFMMessage)
        self.codec = codec_for_class(self.msg_class)
        self._subs: list[_Subscription] = []
        self._lock = threading.Lock()
        self.subscriber = server.node.subscribe(
            topic, self.msg_class, self._on_raw, raw=True
        )

    def add(self, sub: _Subscription) -> None:
        with self._lock:
            self._subs.append(sub)

    def remove(self, sub: _Subscription) -> bool:
        """Drop ``sub``; returns True when the tap became empty."""
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)
            return not self._subs

    def empty(self) -> bool:
        with self._lock:
            return not self._subs

    # ------------------------------------------------------------------
    # Fan-out (runs on the internal subscriber's receive thread)
    # ------------------------------------------------------------------
    def _on_raw(self, payload: bytes) -> None:
        with self._lock:
            subs = list(self._subs)
        if not subs:
            return
        now = time.monotonic()
        topic_json = json.dumps(self.topic)
        cache: dict[tuple, object] = {}
        decoded: list = [None]
        failed: list[tuple[_Subscription, Exception]] = []
        for sub in subs:
            if sub.throttle(now):
                continue
            # Nothing may escape into the internal receive thread: an
            # uncaught error would kill the shared inbound link and
            # silence every other subscription on this tap.  Report the
            # failure to the offending client and drop its subscription.
            try:
                self._deliver(sub, payload, topic_json, cache, decoded)
            except Exception as exc:
                failed.append((sub, exc))
        for sub, exc in failed:
            sub.session.enqueue_op(status_op(
                "error",
                f"subscription {sub.sid} on {self.topic} dropped: {exc}",
            ))
            self.server.drop_subscription(sub)

    def _deliver(self, sub: _Subscription, payload: bytes, topic_json: str,
                 cache: dict, decoded: list) -> None:
        """Encode-and-enqueue one subscription's delivery (shared-shape
        encodings cached across the fan-out)."""
        if sub.codec == "raw":
            sub.session.enqueue_delivery(
                sub, TAG_RAW, protocol.encode_sid_body(sub.sid, payload)
            )
            return
        if sub.codec == "cbin":
            key = ("cbin", tuple(sub.fields))
            packed = cache.get(key)
            if packed is None:
                packed = sub.selector.pack(payload)
                cache[key] = packed
            sub.session.enqueue_delivery(
                sub, TAG_CBIN, protocol.encode_sid_body(sub.sid, packed)
            )
            return
        # JSON delivery: serialize the msg part once per distinct
        # fields shape, then compose the tiny envelope per client.
        key = ("json", tuple(sub.fields) if sub.fields else None)
        msg_json = cache.get(key)
        if msg_json is None:
            if sub.selector is not None:
                msg_dict = _json_safe(sub.selector.extract_nested(payload))
            else:
                if decoded[0] is None:
                    decoded[0] = msg_to_dict(self._decode(payload))
                msg_dict = (
                    _pick_paths(decoded[0], sub.fields)
                    if sub.fields else decoded[0]
                )
            msg_json = json.dumps(msg_dict, separators=(",", ":"))
            cache[key] = msg_json
        body = (
            '{"op":"publish","sid":%d,"topic":%s,"msg":%s}'
            % (sub.sid, topic_json, msg_json)
        ).encode("utf-8")
        sub.session.enqueue_delivery(sub, TAG_JSON, body)

    def _decode(self, payload: bytes):
        """Full decode (the expensive path, used only by full-JSON and
        decoded-subset subscriptions on plain topics)."""
        return self.codec.decode(bytearray(payload))


def _json_safe(value):
    """Base64 any raw byte values a selector sliced out (matching the
    full-conversion convention of :func:`msg_to_dict`)."""
    if isinstance(value, (bytes, bytearray)):
        return base64.b64encode(bytes(value)).decode("ascii")
    if isinstance(value, dict):
        return {key: _json_safe(val) for key, val in value.items()}
    if isinstance(value, list):
        return [_json_safe(item) for item in value]
    return value


def _validate_plain_paths(msg_class, paths: list[str],
                          registry: TypeRegistry) -> None:
    """Resolve dotted field paths against a plain message spec at
    subscribe time (SFM selections get the same check from
    :class:`FieldSelector` compilation), so a bad path is a subscribe
    error instead of a per-message failure inside the tap fan-out."""
    spec = msg_class._spec
    for path in paths:
        current = spec
        parts = path.split(".")
        for depth, part in enumerate(parts):
            try:
                field = current.field(part)
            except KeyError:
                raise FieldPathError(
                    f"{spec.full_name}: no field {path!r} "
                    f"({current.full_name} has no {part!r})"
                ) from None
            if depth < len(parts) - 1:
                if not isinstance(field.type, ComplexType):
                    raise FieldPathError(
                        f"{spec.full_name}: {path!r} descends through "
                        f"non-message field {part!r}"
                    )
                current = registry.get(field.type.name)


def _pick_paths(full: dict, paths: list[str]) -> dict:
    """Subset a decoded message dict by dotted paths (plain topics)."""
    flat = {}
    for path in paths:
        node = full
        for part in path.split("."):
            if not isinstance(node, dict) or part not in node:
                raise ConversionError(f"no field {path!r} in message")
            node = node[part]
        flat[path] = node
    return nest_paths(flat)


class _Advertisement:
    """One externally advertised topic (shared across sessions)."""

    def __init__(self, server: "BridgeServer", chan: int, topic: str,
                 spelling: str) -> None:
        self.chan = chan
        self.topic = topic
        self.spelling = spelling
        self.msg_class = resolve_msg_class(spelling, server.registry)
        self.is_sfm = issubclass(self.msg_class, SFMMessage)
        self.publisher = server.node.advertise(topic, self.msg_class)
        self.codec = codec_for_class(self.msg_class)
        self.sessions: set = set()
        self.published = 0


class _ClientSession:
    """One connected bridge client: reader + writer thread pair around a
    shared bounded fan-out queue.

    The class is also the transport seam of the gateway: the queue,
    dispatch and close machinery are framing-agnostic, and subclasses
    (the WebSocket and SSE sessions of :mod:`repro.bridge.ws`) override
    the ``_handshake`` / ``_recv_unit`` / ``_write_unit`` hooks to speak
    a different wire while reusing every op handler unchanged.
    """

    #: Transport label surfaced through describe()/stats_snapshot().
    transport = "tcp"
    #: Reassembler mode (ws sessions reject interleaved fragment streams).
    reassembler_sequential = False
    #: Slow-client policy knobs, all 0 = disabled (the raw-TCP bridge
    #: keeps the PR-2 behaviour: only client-requested queue_length
    #: bounds apply).  Front-door sessions overwrite these per policy.
    default_queue_length = 0
    high_watermark = 0
    evict_strikes = 0

    def __init__(self, server: "BridgeServer", sock: socket.socket,
                 peer: str) -> None:
        self.server = server
        self.sock = sock
        self.peer = peer
        self.codec = "json"
        self.max_frame = protocol.MAX_FRAME
        self.subscriptions: dict[int, _Subscription] = {}
        self.closed = False
        self.evicted = False
        self.evict_reason: Optional[str] = None
        #: Deliveries shed by the session watermark (any subscription).
        self.shed = 0
        #: Consecutive sheds/drops with no write progress in between --
        #: the eviction trigger.  Reset whenever the writer thread gets
        #: a unit onto the socket, so a bursty-but-draining client is
        #: forgiven while a wedged one (writer blocked in sendall)
        #: accumulates strikes until eviction.
        self._strikes = 0
        self._delivery_depth = 0
        self._queue: deque = deque()
        self._condition = threading.Condition()
        self._frag_ids = itertools.count(1)
        self._reassembler = protocol.Reassembler(
            sequential=self.reassembler_sequential
        )
        self._reader = self._writer = None
        self._rlink = None
        self._serial = None
        self._pump_scheduled = False
        #: A written-but-unflushed unit batch is in the kernel's hands;
        #: further units wait in ``_queue`` so the shed/evict policy
        #: still sees the backlog of a stalled client.
        self._inflight = False
        self._reactor = reactor_mod.reactor_enabled()
        if self._reactor:
            self._loop = reactor_mod.global_reactor()
            self._loop.spawn_blocking(
                self._start_reactor, name=f"bridge-hs:{peer}"
            )
        else:
            self._reader = threading.Thread(
                target=self._read_loop, daemon=True,
                name=f"bridge-read:{peer}",
            )
            self._writer = threading.Thread(
                target=self._write_loop, daemon=True,
                name=f"bridge-write:{peer}",
            )
            self._reader.start()
            self._writer.start()

    # ------------------------------------------------------------------
    # Reactor path: handshake on a transient spawn, then the socket
    # joins the shared loop (no per-session threads).
    # ------------------------------------------------------------------
    def _start_reactor(self) -> None:
        try:
            self._handshake()
        except (ConnectionError, OSError, BridgeProtocolError):
            self.server._drop_session(self)
            return
        self._serial = self._loop.serial_queue(on_error=self._session_error)
        self._rlink = reactor_mod.StreamLink(
            self.sock,
            self._make_decoder(),
            on_events=lambda events: self._serial.push(
                lambda: self._handle_units(events)
            ),
            on_error=self._session_error,
            reactor=self._loop,
            label=f"bridge:{self.peer}",
        )
        # Bytes overread past the handshake (pipelined ws frames behind
        # the HTTP upgrade) must reach the decoder before the socket
        # joins the loop, or a complete buffered message would wait for
        # the *next* readable event that may never come.
        pending = self._initial_bytes()
        if pending:
            try:
                events = self._rlink.decoder.feed(pending)
            except Exception as exc:
                self._session_error(exc)
                return
            if events:
                self._serial.push(lambda: self._handle_units(events))
        self._rlink.start()
        if self.closed:
            self._rlink.close()
            return
        # Units enqueued during the handshake (hello_ok at least) were
        # parked; kick the pump now that the link exists.
        with self._condition:
            kick = bool(self._queue) and not self._pump_scheduled
            if kick:
                self._pump_scheduled = True
        if kick:
            self._loop.call_soon(self._pump)

    def _make_decoder(self):
        """Incremental decoder for post-handshake inbound bytes
        (transport hook; ws sessions substitute an RFC 6455 decoder)."""
        return reactor_mod.FrameDecoder(max_frame=protocol.MAX_FRAME)

    def _initial_bytes(self) -> bytes:
        """Handshake-overread bytes to prepend to the inbound stream
        (transport hook; the HTTP upgrade may read past the head)."""
        return b""

    def _handle_units(self, events: list) -> None:
        """Decoder events -> op dispatch, on the worker pool (serialized
        per session, so op order is preserved)."""
        for _kind, payload, _trace, _stamp in events:
            if self.closed:
                return
            if not payload:
                raise BridgeProtocolError("empty bridge frame")
            self._dispatch_unit(payload[0], payload[1:])

    def _session_error(self, exc: Exception) -> None:
        self.server._drop_session(self)

    # ------------------------------------------------------------------
    # Outgoing queue
    # ------------------------------------------------------------------
    def enqueue_op(self, op: dict) -> None:
        """Control traffic: never dropped by subscription queue bounds."""
        self._enqueue(None, TAG_JSON, protocol.encode_json_op(op))

    def enqueue_delivery(self, sub: _Subscription, tag: int, body: bytes) -> None:
        self._enqueue(sub, tag, body)

    def _enqueue(self, sub: Optional[_Subscription], tag: int, body: bytes) -> None:
        evict_reason = None
        with self._condition:
            if self.closed:
                return
            if sub is not None:
                shed = False
                limit = sub.queue_length or self.default_queue_length
                if limit and sub.queued >= limit:
                    # Drop the oldest queued delivery of this subscription
                    # (slow external client; same policy as _OutboundLink).
                    self._drop_oldest_of(sub)
                    shed = True
                if self.high_watermark and \
                        self._delivery_depth >= self.high_watermark:
                    # The whole session is saturated across subscriptions:
                    # shed the oldest delivery of *any* subscription.
                    self._shed_oldest()
                    shed = True
                if shed and self.evict_strikes:
                    # A shed with no write progress since the last one is
                    # a strike; enough consecutive strikes and the client
                    # is evicted -- one stalled browser must not pin
                    # queue memory and fan-out time forever.
                    self._strikes += 1
                    if self._strikes >= self.evict_strikes:
                        evict_reason = (
                            f"{self._strikes} consecutive deliveries shed "
                            f"with no write progress (stalled consumer)"
                        )
                sub.queued += 1
                self._delivery_depth += 1
            self._queue.append((sub, tag, body))
            schedule = (
                self._reactor
                and self._rlink is not None
                and not self._pump_scheduled
            )
            if schedule:
                self._pump_scheduled = True
            self._condition.notify()
        if schedule:
            self._loop.call_soon(self._pump)
        if evict_reason is not None:
            self.server.evict_session(self, evict_reason)

    def _drop_oldest_of(self, sub: _Subscription) -> None:
        """Shed the oldest queued delivery of one subscription (caller
        holds the condition)."""
        for index, (queued, _t, _b) in enumerate(self._queue):
            if queued is sub:
                del self._queue[index]
                sub.dropped += 1
                sub.queued -= 1
                self._delivery_depth -= 1
                break

    def _shed_oldest(self) -> None:
        """Shed the oldest queued delivery of any subscription (caller
        holds the condition)."""
        for index, (queued, _t, _b) in enumerate(self._queue):
            if queued is not None:
                del self._queue[index]
                queued.dropped += 1
                queued.queued -= 1
                self._delivery_depth -= 1
                self.shed += 1
                break

    #: Units moved to the link buffer per pump: enough to amortize the
    #: wakeup, small enough that a stalled client's backlog stays in
    #: ``_queue`` where the shed/evict policy can reach it.
    _PUMP_MAX_UNITS = 32

    def _pump(self) -> None:
        """Reactor-mode writer: drain a bounded batch of units into the
        stream link (runs on the loop thread)."""
        rlink = self._rlink
        units: list = []
        with self._condition:
            self._pump_scheduled = False
            if self._inflight or self.closed or rlink is None:
                return
            while self._queue and len(units) < self._PUMP_MAX_UNITS:
                sub, tag, body = self._queue.popleft()
                if sub is not None:
                    sub.queued -= 1
                    self._delivery_depth -= 1
                units.append((sub, tag, body))
            if units:
                self._inflight = True
        if not units:
            return
        parts: list = []
        metered: list = []
        for sub, tag, body in units:
            try:
                unit_parts, wire = self._unit_parts(tag, body)
            except Exception:
                continue
            parts.extend(unit_parts)
            metered.append((sub, wire))
        rlink.write(
            parts,
            on_flushed=lambda metered=metered: self._units_flushed(metered),
        )

    def _units_flushed(self, metered: list) -> None:
        for sub, wire in metered:
            if sub is not None:
                sub.sent += 1
                sub.wire_bytes += wire
        with self._condition:
            self._inflight = False
            # Bytes reached the kernel: the client is draining, so its
            # accumulated shed strikes are forgiven.
            self._strikes = 0
            more = (
                bool(self._queue)
                and not self._pump_scheduled
                and not self.closed
            )
            if more:
                self._pump_scheduled = True
        if more:
            self._loop.call_soon(self._pump)

    def _unit_parts(self, tag: int, body) -> tuple[list, int]:
        """One unit as writev parts (fragmenting oversized units), plus
        its wire size (transport hook; ws sessions emit ws frames)."""
        if 5 + len(body) <= self.max_frame:
            payload = bytes([tag]) + bytes(body)
            return tcpros.frame_parts([payload]), 4 + len(payload)
        parts: list = []
        wire = 0
        frag_id = f"f{next(self._frag_ids)}"
        for fragment in protocol.fragment_unit(
            tag, body, self.max_frame, frag_id
        ):
            payload = bytes([TAG_JSON]) + protocol.encode_json_op(fragment)
            parts.extend(tcpros.frame_parts([payload]))
            wire += 4 + len(payload)
        return parts, wire

    def _write_loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self.closed:
                    self._condition.wait()
                if self.closed and not self._queue:
                    return
                sub, tag, body = self._queue.popleft()
                if sub is not None:
                    sub.queued -= 1
                    self._delivery_depth -= 1
            try:
                wire = self._write_unit(tag, body)
            except OSError:
                self.server._drop_session(self)
                return
            if self._strikes:
                # The socket accepted bytes: the client is draining, so
                # its accumulated shed strikes are forgiven.
                with self._condition:
                    self._strikes = 0
            if sub is not None:
                sub.sent += 1
                sub.wire_bytes += wire

    def _write_unit(self, tag: int, body: bytes) -> int:
        """Write one unit, fragmenting when it exceeds max_frame."""
        if 5 + len(body) <= self.max_frame:
            return protocol.write_bridge_frame(self.sock, tag, body)
        wire = 0
        frag_id = f"f{next(self._frag_ids)}"
        for fragment in protocol.fragment_unit(tag, body, self.max_frame, frag_id):
            wire += protocol.write_bridge_frame(
                self.sock, TAG_JSON, protocol.encode_json_op(fragment)
            )
        return wire

    def describe(self) -> dict:
        """Per-client counters for stats_snapshot()/``tools top``."""
        with self._condition:
            depth = self._delivery_depth
            shed = self.shed
        subs = list(self.subscriptions.values())
        return {
            "peer": self.peer,
            "transport": self.transport,
            "codec": self.codec,
            "subscriptions": len(subs),
            "queue_depth": depth,
            "dropped": sum(sub.dropped for sub in subs) + shed,
            "shed": shed,
            "evicted": self.evicted,
        }

    # ------------------------------------------------------------------
    # Incoming frames
    # ------------------------------------------------------------------
    def _recv_unit(self) -> tuple:
        """Read one ``(tag, body)`` unit off the wire (transport hook)."""
        return protocol.read_bridge_frame(self.sock)

    def _admit(self, kind: str) -> bool:
        """Rate-limit hook: may an op of this kind be processed?  The
        base session admits everything; ws sessions meter by op class."""
        return True

    def _notify_eviction(self, reason: str) -> None:
        """Best-effort goodbye before an eviction close (transport hook;
        must never block -- the send queue is saturated by definition)."""

    def _read_loop(self) -> None:
        try:
            self._handshake()
            while not self.closed:
                tag, body = self._recv_unit()
                self._dispatch_unit(tag, body)
        except (ConnectionError, OSError, BridgeProtocolError):
            pass
        finally:
            self.server._drop_session(self)

    def _handshake(self) -> None:
        self.sock.settimeout(10.0)
        tag, body = protocol.read_bridge_frame(self.sock)
        self.sock.settimeout(None)
        if tag != TAG_JSON:
            raise BridgeProtocolError("handshake must be a JSON hello op")
        op = protocol.decode_json_op(body)
        error = protocol.validate_op(op)
        if error is None and op.get("op") != "hello":
            error = f"expected hello, got {op.get('op')!r}"
        if error:
            # Written synchronously: the session is about to die and the
            # writer thread's queue would be discarded with it.
            try:
                protocol.write_bridge_frame(
                    self.sock, TAG_JSON,
                    protocol.encode_json_op(status_op("error", error,
                                                      op.get("id"))),
                )
            except OSError:
                pass
            raise BridgeProtocolError(error)
        self.apply_hello(op)

    def apply_hello(self, op: dict) -> None:
        """Adopt a (validated) hello op's negotiation and ack it.  Also
        reachable as a regular op, so transports whose handshake lives in
        HTTP (WebSocket, SSE) can negotiate after the upgrade."""
        self.codec = op.get("codec", "json")
        if op.get("max_frame"):
            # Clamp both ways: below MIN_MAX_FRAME fragments cannot carry
            # their envelope, above MAX_FRAME the peer's read_frame guard
            # would reject our unfragmented writes.  hello_ok echoes the
            # clamped value so the client adopts it.
            self.max_frame = min(
                protocol.MAX_FRAME,
                max(protocol.MIN_MAX_FRAME, int(op["max_frame"])),
            )
        self.enqueue_op({
            "op": "hello_ok",
            "version": protocol.PROTOCOL_VERSION,
            "codec": self.codec,
            "max_frame": self.max_frame,
            "id": op.get("id"),
        })

    def _dispatch_unit(self, tag: int, body) -> None:
        if tag == TAG_RAW:
            if not self._admit("publish"):
                return
            chan, payload = protocol.decode_sid_body(body)
            self.server.publish_raw(self, chan, payload)
            return
        if tag == TAG_CBIN:
            self.enqueue_op(status_op(
                "error", "cbin frames are server-to-client only"
            ))
            return
        if tag != TAG_JSON:
            self.enqueue_op(status_op("error", f"unknown frame tag {tag}"))
            return
        try:
            op = protocol.decode_json_op(body)
        except BridgeProtocolError as exc:
            self.enqueue_op(status_op("error", str(exc)))
            return
        error = protocol.validate_op(op)
        if error:
            self.enqueue_op(status_op("error", error, op.get("id")))
            return
        if not self._admit(op["op"]):
            self.enqueue_op(status_op(
                "warning",
                f"op {op['op']!r} rate limited; retry later", op.get("id"),
            ))
            return
        if op["op"] == "fragment":
            try:
                unit = self._reassembler.add(op)
            except BridgeProtocolError as exc:
                self.enqueue_op(status_op("error", str(exc), op.get("id")))
                return
            if unit is not None:
                self._dispatch_unit(*unit)
            return
        self.server.handle_op(self, op)

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._condition:
            if self.closed:
                return
            self.closed = True
            self._queue.clear()
            self._condition.notify_all()
        if self._rlink is not None:
            self._rlink.close()
        # shutdown() (not just close()) so a reader blocked in recv on
        # this socket -- ours or the peer's -- wakes up with EOF instead
        # of holding the connection open forever.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class BridgeServer:
    """A rosbridge-style gateway in front of one miniros graph."""

    def __init__(
        self,
        master_uri: str,
        host: str = "127.0.0.1",
        port: int = 0,
        node_name: str = "rossf_bridge",
        registry: Optional[TypeRegistry] = None,
        service_timeout: float = 10.0,
    ) -> None:
        from repro.ros.node import NodeHandle

        self.registry = registry or default_registry
        self.service_timeout = service_timeout
        self.node = NodeHandle(node_name, master_uri)
        self._lock = threading.RLock()
        self._sessions: list[_ClientSession] = []
        self._taps: dict[tuple[str, str], _TopicTap] = {}
        self._advertisements: dict[str, _Advertisement] = {}
        self._chan_by_id: dict[int, _Advertisement] = {}
        self._sid_source = itertools.count(1)
        self._chan_source = itertools.count(1)
        self._closed = False
        self._ws_frontend = None
        #: Sessions removed by the slow-client policy (all transports).
        self.evictions = 0

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(256)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread = None
        self._acceptor = None
        if reactor_mod.reactor_enabled():
            self._acceptor = reactor_mod.AcceptorLink(
                self._listener, self._on_accept,
                reactor=reactor_mod.global_reactor(),
                label=f"bridge-accept:{self.port}",
            )
            self._acceptor.start()
        else:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True,
                name=f"bridge-accept:{self.port}",
            )
            self._accept_thread.start()
        obs_instrument.track_bridge(self)

    @property
    def uri(self) -> str:
        return f"bridge://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Accepting clients
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                break
            self._admit(sock, addr)

    def _on_accept(self, sock, addr) -> None:
        """AcceptorLink callback (loop thread, must not block): session
        construction only spawns the handshake."""
        sock.setblocking(True)
        self._admit(sock, addr)

    def _admit(self, sock, addr) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock = tcpros.wrap_socket(sock, "bridge", role="server")
        session = _ClientSession(self, sock, f"{addr[0]}:{addr[1]}")
        self.register_session(session)

    def register_session(self, session: _ClientSession) -> bool:
        """Track a live session (any transport); False once shut down."""
        with self._lock:
            if self._closed:
                session.close()
                return False
            self._sessions.append(session)
            return True

    def evict_session(self, session: _ClientSession, reason: str) -> None:
        """Remove a session under the slow-client policy: best-effort
        transport goodbye, then the normal teardown path."""
        with self._lock:
            if session.evicted or session.closed:
                return
            session.evicted = True
            session.evict_reason = reason
            self.evictions += 1
        session._notify_eviction(reason)
        self._drop_session(session)

    def _drop_session(self, session: _ClientSession) -> None:
        with self._lock:
            if session in self._sessions:
                self._sessions.remove(session)
            subs = list(session.subscriptions.values())
            session.subscriptions.clear()
        session.close()
        for sub in subs:
            self._release_subscription(sub)

    def _release_subscription(self, sub: _Subscription) -> None:
        with self._lock:
            tap = self._taps.get((sub.topic, sub.spelling))
            if tap is not None and tap.remove(sub):
                del self._taps[(sub.topic, sub.spelling)]
            else:
                tap = None
        if tap is not None:
            tap.subscriber.unsubscribe()

    def drop_subscription(self, sub: _Subscription) -> None:
        """Forcibly remove one subscription (a delivery failure: the
        session stays, only the offending subscription goes)."""
        with self._lock:
            sub.session.subscriptions.pop(sub.sid, None)
        self._release_subscription(sub)

    # ------------------------------------------------------------------
    # Op dispatch
    # ------------------------------------------------------------------
    def handle_op(self, session: _ClientSession, op: dict) -> None:
        handler = getattr(self, f"_op_{op['op']}", None)
        if handler is None:
            session.enqueue_op(status_op(
                "error", f"unsupported op {op['op']!r}", op.get("id")
            ))
            return
        try:
            handler(session, op)
        except (ValueError, UnknownTypeError, ConversionError,
                FieldPathError, KeyError, OverflowError,
                struct.error) as exc:
            # struct.error/OverflowError: a JSON value passed type checks
            # but not the wire range (2**40 into an int32); the op fails
            # with a status, the session lives on.
            # KeyError's str() wraps the message in repr quotes.
            text = exc.args[0] if isinstance(exc, KeyError) and exc.args \
                else str(exc)
            session.enqueue_op(status_op("error", str(text), op.get("id")))

    def _op_status(self, session, op) -> None:
        pass  # client-side diagnostics are informational

    def _op_hello(self, session, op) -> None:
        # TCP sessions negotiate inline during _handshake; ws/SSE clients
        # send hello as their first in-band op after the HTTP upgrade.
        session.apply_hello(op)

    def _op_advertise(self, session, op) -> None:
        topic, spelling = op["topic"], op["type"]
        with self._lock:
            adv = self._advertisements.get(topic)
            if adv is None:
                adv = _Advertisement(self, next(self._chan_source), topic,
                                     spelling)
                self._advertisements[topic] = adv
                self._chan_by_id[adv.chan] = adv
            elif adv.spelling != spelling:
                raise ValueError(
                    f"{topic} is already advertised as {adv.spelling}"
                )
            adv.sessions.add(session)
        session.enqueue_op({
            "op": "advertise_ok", "id": op.get("id"),
            "topic": topic, "chan": adv.chan,
        })

    def _op_unadvertise(self, session, op) -> None:
        topic = op["topic"]
        with self._lock:
            adv = self._advertisements.get(topic)
            if adv is None:
                raise ValueError(f"{topic} is not advertised")
            adv.sessions.discard(session)
            last = not adv.sessions
            if last:
                del self._advertisements[topic]
                del self._chan_by_id[adv.chan]
        if last:
            adv.publisher.unadvertise()

    def _op_publish(self, session, op) -> None:
        with self._lock:
            adv = self._advertisements.get(op["topic"])
        if adv is None:
            raise ValueError(f"{op['topic']} is not advertised (advertise first)")
        msg = dict_to_msg(op["msg"], adv.msg_class)
        adv.publisher.publish(msg)
        adv.published += 1

    def publish_raw(self, session, chan: int, payload: bytes) -> None:
        """A TAG_RAW frame from a client: adopt and publish without any
        per-field work (zero-copy for SFM topics)."""
        with self._lock:
            adv = self._chan_by_id.get(chan)
        if adv is None:
            session.enqueue_op(status_op("error", f"unknown channel {chan}"))
            return
        try:
            msg = adv.codec.decode(bytearray(payload))
            adv.publisher.publish(msg)
            adv.published += 1
        except Exception as exc:
            session.enqueue_op(status_op(
                "error", f"raw publish on {adv.topic} failed: {exc}"
            ))

    def _op_subscribe(self, session, op) -> None:
        topic, spelling = op["topic"], op["type"]
        codec = op.get("codec") or session.codec
        fields = op.get("fields")
        msg_class = resolve_msg_class(spelling, self.registry)
        is_sfm = issubclass(msg_class, SFMMessage)
        selector = None
        schema = None
        if codec == "cbin" and not fields:
            raise ValueError("cbin subscriptions require a 'fields' list")
        if codec == "raw" and fields:
            raise ValueError(
                "raw subscriptions forward whole messages; drop 'fields' "
                "or use the json/cbin codec"
            )
        if fields:
            if is_sfm:
                from repro.sfm.layout import layout_for

                selector = FieldSelector(
                    layout_for(spelling.partition("@")[0], self.registry),
                    fields,
                )
                if codec == "cbin":
                    schema = selector.schema()
            elif codec == "cbin":
                raise ValueError(
                    "cbin requires an @sfm type (fixed-offset layout)"
                )
            else:
                # plain topics keep fields as a decoded-subset filter;
                # resolve the paths now so a typo is this client's
                # subscribe error, not a per-message fan-out failure
                _validate_plain_paths(msg_class, fields, self.registry)
        sid = next(self._sid_source)
        sub = _Subscription(
            sid, session, topic, spelling, codec, fields, selector, schema,
            int(op.get("throttle_rate") or 0), int(op.get("queue_length") or 0),
        )
        with self._lock:
            tap = self._taps.get((topic, spelling))
            if tap is None:
                tap = _TopicTap(self, topic, spelling)
                self._taps[(topic, spelling)] = tap
            tap.add(sub)
            session.subscriptions[sid] = sub
        ack = {
            "op": "subscribe_ok", "id": op.get("id"), "sid": sid,
            "topic": topic, "codec": codec,
            "mode": (
                "sfm-offset" if selector is not None
                else ("decoded-subset" if fields else "full")
            ),
        }
        if schema is not None:
            ack["schema"] = schema
        session.enqueue_op(ack)

    def _op_unsubscribe(self, session, op) -> None:
        sid = op.get("sid")
        topic = op.get("topic")
        with self._lock:
            if sid is not None:
                subs = [session.subscriptions.pop(sid, None)]
                if subs[0] is None:
                    raise ValueError(f"unknown subscription {sid}")
            else:
                subs = [
                    sub for sub in session.subscriptions.values()
                    if sub.topic == topic
                ]
                if not subs:
                    raise ValueError(f"no subscription on {topic}")
                for sub in subs:
                    session.subscriptions.pop(sub.sid, None)
        for sub in subs:
            self._release_subscription(sub)
        session.enqueue_op({
            "op": "unsubscribe_ok", "id": op.get("id"),
            "sids": [sub.sid for sub in subs],
        })

    def _op_call_service(self, session, op) -> None:
        # Service calls block on the remote handler; run them off the
        # reader thread so one slow service cannot stall the session.
        threading.Thread(
            target=self._call_service, args=(session, op), daemon=True,
            name=f"bridge-srv:{op['service']}",
        ).start()

    def _call_service(self, session, op) -> None:
        response_op = {
            "op": "service_response", "id": op.get("id"),
            "service": op["service"], "result": False, "values": {},
        }
        try:
            srv = service_type(op["type"], default_service_registry)
            request = dict_to_msg(op.get("args") or {}, srv.request_class)
            timeout = float(op.get("timeout") or self.service_timeout)
            proxy = self.node.service_proxy(op["service"], srv, timeout)
            try:
                response = proxy(request)
            finally:
                proxy.close_connection()
            response_op["result"] = True
            response_op["values"] = msg_to_dict(response)
        except Exception as exc:
            response_op["values"] = {"error": str(exc)}
        session.enqueue_op(response_op)

    def stats_snapshot(self) -> dict:
        """One consistent public view of the gateway: client count,
        every subscription's counters, advertisements and inbound link
        errors.  Serves both the ``stats`` wire op and the metrics
        collectors."""
        with self._lock:
            sessions = [sess.describe() for sess in self._sessions]
            by_transport: dict[str, int] = {}
            for entry in sessions:
                by_transport[entry["transport"]] = (
                    by_transport.get(entry["transport"], 0) + 1
                )
            snap = {
                "clients": len(self._sessions),
                "clients_by_transport": by_transport,
                "evictions": self.evictions,
                "sessions": sessions,
                "subscriptions": [
                    sub.describe()
                    for sess in self._sessions
                    for sub in sess.subscriptions.values()
                ],
                "advertisements": [
                    {"topic": adv.topic, "type": adv.spelling,
                     "chan": adv.chan, "published": adv.published}
                    for adv in self._advertisements.values()
                ],
                "link_errors": {
                    tap.topic: {
                        uri: str(error)
                        for uri, error in tap.subscriber.link_errors.items()
                    }
                    for tap in self._taps.values()
                    if tap.subscriber.link_errors
                },
            }
            frontend = self._ws_frontend
        if frontend is not None:
            snap["ws"] = frontend.stats()
        return snap

    def _op_stats(self, session, op) -> None:
        stats = self.stats_snapshot()
        stats["op"] = "stats"
        stats["id"] = op.get("id")
        session.enqueue_op(stats)

    # ------------------------------------------------------------------
    # WebSocket front door
    # ------------------------------------------------------------------
    def enable_ws(self, host: str = "127.0.0.1", port: int = 0, **kwargs):
        """Open the WebSocket/SSE front door on a second listener.

        Keyword arguments are forwarded to
        :class:`repro.bridge.ws.WsFrontend` (auth tokens, rate limits,
        queue policy).  Idempotent: a second call returns the running
        frontend."""
        from repro.bridge.ws import WsFrontend

        with self._lock:
            if self._closed:
                raise RuntimeError("bridge is shut down")
            if self._ws_frontend is not None:
                return self._ws_frontend
        frontend = WsFrontend(self, host=host, port=port, **kwargs)
        with self._lock:
            self._ws_frontend = frontend
        return frontend

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions)
            self._sessions.clear()
            frontend = self._ws_frontend
        if frontend is not None:
            frontend.close()
        if self._acceptor is not None:
            self._acceptor.close()
        try:
            self._listener.close()
        except OSError:
            pass
        for session in sessions:
            session.close()
        self.node.shutdown()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "BridgeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
