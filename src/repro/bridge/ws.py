"""The WebSocket front door: RFC 6455 + SSE in front of the bridge.

Browsers and fleet dashboards do not speak the bridge's length-prefixed
TCP framing -- they speak WebSocket.  This module adds a second listener
to :class:`~repro.bridge.server.BridgeServer` that carries the *same*
op protocol (:mod:`repro.bridge.protocol`) over RFC 6455 frames:

- **text frames** carry one JSON op each (``subscribe``, ``publish``,
  ``status``, ...);
- **binary frames** carry one ``u8 tag | body`` unit, i.e. the inner
  part of a bridge frame without the length prefix (ws frames are
  already length-delimited), so RAW and CBIN deliveries keep their
  serialization-free payloads on the last hop too;
- ``GET /sse`` is a fallback for subscribe-only clients behind
  middleboxes that cannot upgrade: deliveries stream out as
  ``text/event-stream`` ``data:`` lines (JSON codec only).

The handshake, frame codec and HTTP parsing are stdlib-only (hashlib,
base64, struct) -- no external websocket dependency.

Production-traffic policy, all enforced per connection:

- **auth**: optional shared tokens, accepted as ``Authorization:
  Bearer <token>`` or a ``?token=`` query parameter; failures are
  rejected at the HTTP layer (401) and counted;
- **rate limits**: token buckets per op class (``publish`` /
  ``subscribe`` / ``service``); over-limit ops are refused with a
  warning status, never by dropping the connection;
- **backpressure**: ws/SSE sessions run with a default per-subscription
  queue bound, a session-wide delivery watermark that sheds oldest
  deliveries, and strike-based *eviction* (close 1013) of clients that
  stay pinned at the watermark -- one stalled browser cannot pin queue
  memory while healthy clients starve.
"""

from __future__ import annotations

import base64
import hashlib
import os
import socket
import struct
import threading
import time
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.bridge import protocol
from repro.bridge.client import BridgeClient
from repro.bridge.protocol import BridgeProtocolError, TAG_JSON
from repro.bridge.server import _ClientSession
from repro.ros import reactor as reactor_mod
from repro.ros.transport import tcpros

#: RFC 6455 handshake GUID.
_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: Opcodes.
OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = (OP_CLOSE, OP_PING, OP_PONG)

#: Close codes used by the front door.
CLOSE_NORMAL = 1000
CLOSE_PROTOCOL_ERROR = 1002
CLOSE_POLICY = 1008
CLOSE_TOO_BIG = 1009
CLOSE_OVERLOADED = 1013

#: Upper bound on one HTTP request head (request line + headers).
MAX_REQUEST_HEAD = 16 * 1024

#: Op name -> rate-limit class.  Ops not listed (hello, status, stats,
#: fragment envelopes) are control traffic and never limited.
OP_CLASSES = {
    "publish": "publish",
    "subscribe": "subscribe",
    "unsubscribe": "subscribe",
    "advertise": "subscribe",
    "unadvertise": "subscribe",
    "call_service": "service",
}

RATE_CLASSES = ("publish", "subscribe", "service")


class WsProtocolError(BridgeProtocolError):
    """A broken ws frame or handshake; carries the close code to send."""

    def __init__(self, message: str, code: int = CLOSE_PROTOCOL_ERROR) -> None:
        super().__init__(message)
        self.code = code


def accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client key (RFC 6455)."""
    digest = hashlib.sha1((key + _GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(opcode: int, payload: bytes, fin: bool = True,
                 mask: bool = False) -> bytes:
    """Encode one ws frame.  Client-to-server frames set ``mask``."""
    head = bytearray([(0x80 if fin else 0) | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if not mask:
        return bytes(head) + payload
    key = os.urandom(4)
    head += key
    return bytes(head) + mask_payload(payload, key)


def mask_payload(payload: bytes, key: bytes) -> bytes:
    """XOR-mask (or unmask -- the operation is its own inverse).

    Runs as one big-integer XOR instead of a per-byte Python loop: at
    camera-frame sizes (~1 MB) the difference is ~100 ms vs ~1 ms per
    frame, which is the whole latency budget of the front door.
    """
    if not payload:
        return b""
    length = len(payload)
    stream = (key * (-(-length // 4)))[:length]
    return (
        int.from_bytes(payload, "little")
        ^ int.from_bytes(stream, "little")
    ).to_bytes(length, "little")


class WsConnection:
    """One ws endpoint: buffered frame reads + serialized writes.

    ``require_mask`` is True on the server side (RFC 6455 section 5.1:
    unmasked client frames MUST fail the connection) and clients send
    with ``mask_writes=True``.  Control frames are handled inline --
    PING answered, CLOSE echoed -- so callers only ever see data
    messages.
    """

    def __init__(self, sock: socket.socket, leftover: bytes = b"",
                 require_mask: bool = True, mask_writes: bool = False,
                 max_payload: int = protocol.MAX_FRAME) -> None:
        self.sock = sock
        self._buffer = bytearray(leftover)
        self._require_mask = require_mask
        self._mask_writes = mask_writes
        self._max_payload = max_payload
        self._send_lock = threading.Lock()
        self.closed_by_peer: Optional[int] = None

    # -- reading -------------------------------------------------------
    def _read_exact(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("websocket peer closed mid-frame")
            self._buffer += chunk
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        return data

    def _read_frame(self) -> tuple[int, bool, bytes]:
        first, second = self._read_exact(2)
        if first & 0x70:
            raise WsProtocolError("reserved ws bits set (no extensions)")
        opcode = first & 0x0F
        fin = bool(first & 0x80)
        masked = bool(second & 0x80)
        length = second & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", self._read_exact(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", self._read_exact(8))
        if opcode in _CONTROL_OPS and (length > 125 or not fin):
            raise WsProtocolError("oversized or fragmented control frame")
        if length > self._max_payload:
            raise WsProtocolError(
                f"{length}-byte ws frame exceeds the "
                f"{self._max_payload}-byte bound", CLOSE_TOO_BIG,
            )
        if self._require_mask and not masked and opcode not in _CONTROL_OPS:
            raise WsProtocolError("client data frames must be masked")
        key = self._read_exact(4) if masked else None
        payload = self._read_exact(length)
        if key is not None:
            payload = mask_payload(payload, key)
        return opcode, fin, payload

    def recv_message(self) -> tuple[int, bytearray, int]:
        """Read one complete data message: ``(opcode, payload, wire)``.

        Reassembles continuation frames, answers PINGs, echoes CLOSE
        (then raises ConnectionError).  ``wire`` approximates bytes on
        the wire (headers + payloads of the contributing frames).
        """
        message: Optional[bytearray] = None
        opcode = OP_CONT
        wire = 0
        while True:
            frame_op, fin, payload = self._read_frame()
            wire += 2 + len(payload) + (4 if self._require_mask else 0)
            if frame_op == OP_PING:
                self.send_frame(OP_PONG, payload)
                continue
            if frame_op == OP_PONG:
                continue
            if frame_op == OP_CLOSE:
                self.closed_by_peer = (
                    struct.unpack(">H", payload[:2])[0]
                    if len(payload) >= 2 else CLOSE_NORMAL
                )
                try:
                    self.send_frame(OP_CLOSE, payload[:2])
                except OSError:
                    pass
                raise ConnectionError(
                    f"websocket closed by peer ({self.closed_by_peer})"
                )
            if frame_op == OP_CONT:
                if message is None:
                    raise WsProtocolError("continuation without a start frame")
                message += payload
            else:
                if message is not None:
                    raise WsProtocolError(
                        "new data frame interleaved into a fragmented message"
                    )
                opcode = frame_op
                message = bytearray(payload)
            if len(message) > self._max_payload:
                raise WsProtocolError(
                    "fragmented ws message exceeds the payload bound",
                    CLOSE_TOO_BIG,
                )
            if fin:
                return opcode, message, wire

    # -- writing -------------------------------------------------------
    def send_frame(self, opcode: int, payload: bytes) -> int:
        frame = encode_frame(opcode, bytes(payload), mask=self._mask_writes)
        with self._send_lock:
            self.sock.sendall(frame)
        return len(frame)

    def send_close(self, code: int, reason: str = "") -> None:
        payload = struct.pack(">H", code) + reason.encode("utf-8")[:123]
        self.send_frame(OP_CLOSE, payload)

    def try_send_close(self, code: int, reason: str = "") -> None:
        """Non-blocking close attempt for eviction: the writer thread may
        hold the send lock while wedged in sendall on a saturated socket,
        and the whole point of eviction is that this peer stopped
        reading -- never wait on it."""
        if not self._send_lock.acquire(blocking=False):
            return
        try:
            self.sock.settimeout(0.0)
            payload = struct.pack(">H", code) + reason.encode("utf-8")[:123]
            self.sock.send(encode_frame(OP_CLOSE, payload,
                                        mask=self._mask_writes))
        except (BlockingIOError, OSError, ValueError):
            pass
        finally:
            self._send_lock.release()


class WsDecoder:
    """Incremental RFC 6455 parser for the reactor path.

    The :class:`~repro.ros.reactor.StreamLink` feeds received chunks;
    ``feed`` returns the completed events:

    - ``("message", opcode, payload_bytearray)`` -- one reassembled data
      message (continuation frames merged, masks removed);
    - ``("ping", payload_bytes)`` -- the caller must answer with a PONG;
    - ``("close", code, echo_payload)`` -- the caller echoes a CLOSE and
      tears the session down; no further events are produced.

    PONGs are swallowed.  Protocol violations raise
    :class:`WsProtocolError` (carrying the close code to send), which
    the stream link routes to its error handler.  Mirrors the blocking
    :meth:`WsConnection.recv_message` state machine exactly so both
    modes enforce the same frame discipline.
    """

    __slots__ = ("_buffer", "_require_mask", "_max_payload", "_message",
                 "_opcode", "_dead")

    def __init__(self, require_mask: bool = True,
                 max_payload: int = protocol.MAX_FRAME) -> None:
        self._buffer = bytearray()
        self._require_mask = require_mask
        self._max_payload = max_payload
        self._message: Optional[bytearray] = None
        self._opcode = OP_CONT
        self._dead = False

    def _parse_frame(self) -> Optional[tuple[int, bool, bytes]]:
        """One frame off the buffer, or None until enough bytes arrive."""
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        if first & 0x70:
            raise WsProtocolError("reserved ws bits set (no extensions)")
        opcode = first & 0x0F
        fin = bool(first & 0x80)
        masked = bool(second & 0x80)
        length = second & 0x7F
        pos = 2
        if length == 126:
            if len(buf) < 4:
                return None
            (length,) = struct.unpack_from(">H", buf, 2)
            pos = 4
        elif length == 127:
            if len(buf) < 10:
                return None
            (length,) = struct.unpack_from(">Q", buf, 2)
            pos = 10
        if opcode in _CONTROL_OPS and (length > 125 or not fin):
            raise WsProtocolError("oversized or fragmented control frame")
        if length > self._max_payload:
            raise WsProtocolError(
                f"{length}-byte ws frame exceeds the "
                f"{self._max_payload}-byte bound", CLOSE_TOO_BIG,
            )
        if self._require_mask and not masked and opcode not in _CONTROL_OPS:
            raise WsProtocolError("client data frames must be masked")
        key = None
        if masked:
            if len(buf) < pos + 4:
                return None
            key = bytes(buf[pos:pos + 4])
            pos += 4
        if len(buf) < pos + length:
            return None
        payload = bytes(buf[pos:pos + length])
        del buf[:pos + length]
        if key is not None:
            payload = mask_payload(payload, key)
        return opcode, fin, payload

    def feed(self, data) -> list:
        if self._dead:
            return []
        self._buffer += data
        events: list = []
        while True:
            frame = self._parse_frame()
            if frame is None:
                return events
            opcode, fin, payload = frame
            if opcode == OP_PING:
                events.append(("ping", payload))
                continue
            if opcode == OP_PONG:
                continue
            if opcode == OP_CLOSE:
                code = (
                    struct.unpack(">H", payload[:2])[0]
                    if len(payload) >= 2 else CLOSE_NORMAL
                )
                self._dead = True
                events.append(("close", code, payload[:2]))
                return events
            if opcode == OP_CONT:
                if self._message is None:
                    raise WsProtocolError("continuation without a start frame")
                self._message += payload
            else:
                if self._message is not None:
                    raise WsProtocolError(
                        "new data frame interleaved into a fragmented message"
                    )
                self._opcode = opcode
                self._message = bytearray(payload)
            if len(self._message) > self._max_payload:
                raise WsProtocolError(
                    "fragmented ws message exceeds the payload bound",
                    CLOSE_TOO_BIG,
                )
            if fin:
                events.append(("message", self._opcode, self._message))
                self._message = None


class TokenBucket:
    """A token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def allow(self, cost: float = 1.0) -> bool:
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def _read_request_head(sock: socket.socket) -> bytes:
    """Read up to the blank line; the cap rejects header-bomb clients."""
    head = bytearray()
    while b"\r\n\r\n" not in head:
        if len(head) > MAX_REQUEST_HEAD:
            raise WsProtocolError(
                f"request head exceeds {MAX_REQUEST_HEAD} bytes",
                CLOSE_TOO_BIG,
            )
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError("client closed during HTTP request")
        head += chunk
    return bytes(head)


def _parse_request(head: bytes) -> tuple[str, str, dict, bytes]:
    """-> (method, target, lowercase-header dict, leftover body bytes)."""
    try:
        text, _, leftover = head.partition(b"\r\n\r\n")
        lines = text.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise WsProtocolError(f"malformed HTTP request: {exc}") from exc
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return method, target, headers, leftover


def _http_response(sock: socket.socket, status: str,
                   body: str = "", extra: str = "") -> None:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: text/plain\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n{extra}\r\n"
    )
    try:
        sock.sendall(head.encode("latin-1") + payload)
    except OSError:
        pass


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class _WsSession(_ClientSession):
    """A bridge session whose wire is RFC 6455 frames."""

    transport = "ws"
    # ws framing is message-ordered per connection: interleaved bridge
    # fragment streams can only come from a hostile or broken peer.
    reassembler_sequential = True

    def __init__(self, server, sock, peer, frontend,
                 conn: WsConnection, leftover: bytes = b"") -> None:
        self.frontend = frontend
        self._conn = conn
        self._leftover = leftover
        self._buckets = frontend.make_buckets()
        # Policy knobs become *instance* attributes before the base
        # constructor starts the reader/writer threads.
        self.default_queue_length = frontend.queue_length
        self.high_watermark = frontend.high_watermark
        self.evict_strikes = frontend.evict_strikes
        super().__init__(server, sock, peer)

    def _handshake(self) -> None:
        # The HTTP upgrade already happened on the frontend's accept
        # path; codec/max_frame arrive in-band via the hello op.
        pass

    # -- reactor hooks --------------------------------------------------
    def _make_decoder(self):
        return WsDecoder(require_mask=True, max_payload=protocol.MAX_FRAME)

    def _initial_bytes(self) -> bytes:
        data, self._leftover = self._leftover, b""
        return data

    def _handle_units(self, events: list) -> None:
        for event in events:
            if self.closed:
                return
            kind = event[0]
            if kind == "message":
                _kind, opcode, payload = event
                if opcode == OP_TEXT:
                    self._dispatch_unit(TAG_JSON, payload)
                elif opcode == OP_BINARY:
                    if not payload:
                        raise BridgeProtocolError("empty binary ws message")
                    self._dispatch_unit(payload[0], payload[1:])
                else:
                    raise WsProtocolError(
                        f"unsupported ws opcode {opcode:#x}"
                    )
            elif kind == "ping":
                self._rlink.write([encode_frame(OP_PONG, event[1])])
            elif kind == "close":
                self._rlink.write([encode_frame(OP_CLOSE, bytes(event[2]))])
                raise ConnectionError(
                    f"websocket closed by peer ({event[1]})"
                )

    def _session_error(self, exc: Exception) -> None:
        if isinstance(exc, WsProtocolError):
            # Tell the peer *why* before tearing down (best-effort: the
            # socket is non-blocking under the reactor, so this cannot
            # wedge the worker).
            self._conn.try_send_close(exc.code, str(exc)[:100])
        self.server._drop_session(self)

    def _unit_parts(self, tag: int, body) -> tuple[list, int]:
        if 5 + len(body) > self.max_frame:
            parts: list = []
            wire = 0
            frag_id = f"f{next(self._frag_ids)}"
            for fragment in protocol.fragment_unit(
                tag, body, self.max_frame, frag_id
            ):
                frame = encode_frame(
                    OP_TEXT, protocol.encode_json_op(fragment)
                )
                parts.append(frame)
                wire += len(frame)
            return parts, wire
        if tag == TAG_JSON:
            frame = encode_frame(OP_TEXT, bytes(body))
        else:
            frame = encode_frame(OP_BINARY, bytes([tag]) + bytes(body))
        return [frame], len(frame)

    # -- threaded hooks -------------------------------------------------
    def _recv_unit(self):
        try:
            opcode, payload, _wire = self._conn.recv_message()
        except WsProtocolError as exc:
            self._conn.try_send_close(exc.code, str(exc)[:100])
            raise
        if opcode == OP_TEXT:
            return TAG_JSON, payload
        if opcode == OP_BINARY:
            if not payload:
                raise BridgeProtocolError("empty binary ws message")
            return payload[0], payload[1:]
        raise WsProtocolError(f"unsupported ws opcode {opcode:#x}")

    def _write_unit(self, tag: int, body: bytes) -> int:
        if 5 + len(body) > self.max_frame:
            wire = 0
            frag_id = f"f{next(self._frag_ids)}"
            for fragment in protocol.fragment_unit(
                tag, body, self.max_frame, frag_id
            ):
                wire += self._conn.send_frame(
                    OP_TEXT, protocol.encode_json_op(fragment)
                )
            return wire
        if tag == TAG_JSON:
            return self._conn.send_frame(OP_TEXT, bytes(body))
        return self._conn.send_frame(OP_BINARY, bytes([tag]) + bytes(body))

    def _admit(self, kind: str) -> bool:
        op_class = OP_CLASSES.get(kind)
        if op_class is None:
            return True
        bucket = self._buckets.get(op_class)
        if bucket is None or bucket.allow():
            return True
        self.frontend.count_rate_limited(op_class)
        return False

    def _notify_eviction(self, reason: str) -> None:
        self.frontend.evictions += 1
        if self._rlink is not None:
            # Queue the goodbye *behind* any partially-written frame so
            # the stream stays well-formed; the write buffer is memory,
            # never a blocking send, which is all eviction requires.
            payload = struct.pack(">H", CLOSE_OVERLOADED) + \
                b"evicted: slow consumer"
            self._rlink.write([encode_frame(OP_CLOSE, payload)])
            return
        self._conn.try_send_close(CLOSE_OVERLOADED, "evicted: slow consumer")


class _SseSession(_ClientSession):
    """Subscribe-only fallback: deliveries stream as server-sent events.

    The client never sends after the GET; the reader loop just watches
    for EOF so a vanished browser tears the session down."""

    transport = "sse"
    reassembler_sequential = True

    def __init__(self, server, sock, peer, frontend) -> None:
        self.frontend = frontend
        self.default_queue_length = frontend.queue_length
        self.high_watermark = frontend.high_watermark
        self.evict_strikes = frontend.evict_strikes
        super().__init__(server, sock, peer)

    def _handshake(self) -> None:
        pass

    # -- reactor hooks --------------------------------------------------
    def _make_decoder(self):
        # Inbound bytes are ignored wholesale; only EOF matters (the
        # stream link reports it as a ConnectionError -> session drop).
        return reactor_mod.RawDecoder()

    def _handle_units(self, events: list) -> None:
        pass  # anything a "subscribe-only" client sends is ignored

    def _unit_parts(self, tag: int, body) -> tuple[list, int]:
        if tag != TAG_JSON:
            return [], 0  # SSE subscriptions are forced to the json codec
        chunk = b"data: " + bytes(body) + b"\r\n\r\n"
        return [chunk], len(chunk)

    # -- threaded hooks -------------------------------------------------
    def _recv_unit(self):
        while True:
            data = self.sock.recv(4096)
            if not data:
                raise ConnectionError("sse client went away")
            # Anything a "subscribe-only" client does send is ignored.

    def _write_unit(self, tag: int, body: bytes) -> int:
        if tag != TAG_JSON:
            return 0  # SSE subscriptions are forced to the json codec
        chunk = b"data: " + bytes(body) + b"\r\n\r\n"
        self.sock.sendall(chunk)
        return len(chunk)

    def _notify_eviction(self, reason: str) -> None:
        self.frontend.evictions += 1


# ----------------------------------------------------------------------
# Frontend
# ----------------------------------------------------------------------
class WsFrontend:
    """The ws/SSE listener bolted onto one :class:`BridgeServer`.

    Constructed via :meth:`BridgeServer.enable_ws`.  Policy:

    - ``auth_tokens``: iterable of accepted tokens; empty/None = open;
    - ``rate_limits``: ``{op_class: (rate_per_s, burst)}`` token-bucket
      configuration (classes: publish, subscribe, service); missing
      classes are unlimited;
    - ``queue_length`` / ``high_watermark`` / ``evict_strikes``: the
      slow-client policy applied to every ws/SSE session.
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0,
                 auth_tokens=None, rate_limits: Optional[dict] = None,
                 queue_length: int = 64, high_watermark: int = 1024,
                 evict_strikes: int = 256) -> None:
        self.server = server
        self.auth_tokens = frozenset(auth_tokens or ())
        self.rate_limits = dict(rate_limits or {})
        for op_class in self.rate_limits:
            if op_class not in RATE_CLASSES:
                raise ValueError(
                    f"unknown rate-limit class {op_class!r} "
                    f"(one of {RATE_CLASSES})"
                )
        self.queue_length = queue_length
        self.high_watermark = high_watermark
        self.evict_strikes = evict_strikes

        self.handshakes = 0
        self.auth_failures = 0
        self.bad_requests = 0
        self.evictions = 0
        self.rate_limited = {op_class: 0 for op_class in RATE_CLASSES}
        self._lock = threading.Lock()
        self._closed = False

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(512)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread = None
        self._acceptor = None
        if reactor_mod.reactor_enabled():
            self._acceptor = reactor_mod.AcceptorLink(
                self._listener, self._on_accept,
                reactor=reactor_mod.global_reactor(),
                label=f"bridge-ws-accept:{self.port}",
            )
            self._acceptor.start()
        else:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True,
                name=f"bridge-ws-accept:{self.port}",
            )
            self._accept_thread.start()

    @property
    def url(self) -> str:
        return f"ws://{self.host}:{self.port}/ws"

    def make_buckets(self) -> dict:
        return {
            op_class: TokenBucket(rate, burst)
            for op_class, (rate, burst) in self.rate_limits.items()
        }

    def count_rate_limited(self, op_class: str) -> None:
        with self._lock:
            self.rate_limited[op_class] = \
                self.rate_limited.get(op_class, 0) + 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "host": self.host,
                "port": self.port,
                "handshakes": self.handshakes,
                "auth_failures": self.auth_failures,
                "bad_requests": self.bad_requests,
                "evictions": self.evictions,
                "rate_limited": dict(self.rate_limited),
                "policy": {
                    "queue_length": self.queue_length,
                    "high_watermark": self.high_watermark,
                    "evict_strikes": self.evict_strikes,
                    "auth": bool(self.auth_tokens),
                },
            }

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                break
            # Same chaos seam as the TCP listener: FaultPlan rules on
            # seam="bridge" (sever, corrupt, delay) reach ws clients too.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock = tcpros.wrap_socket(sock, "bridge", role="server")
            threading.Thread(
                target=self._handle_conn, args=(sock, addr), daemon=True,
                name=f"bridge-ws-hs:{addr[0]}:{addr[1]}",
            ).start()

    def _on_accept(self, sock, addr) -> None:
        """AcceptorLink callback (loop thread, must not block): the HTTP
        request read + upgrade runs on a transient spawn, exactly like
        the TCP bridge handshake."""
        sock.setblocking(True)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        wrapped = tcpros.wrap_socket(sock, "bridge", role="server")
        reactor_mod.global_reactor().spawn_blocking(
            lambda: self._handle_conn(wrapped, addr),
            name=f"bridge-ws-hs:{addr[0]}:{addr[1]}",
        )

    def _handle_conn(self, sock, addr) -> None:
        peer = f"{addr[0]}:{addr[1]}"
        try:
            sock.settimeout(10.0)
            head = _read_request_head(sock)
            method, target, headers, leftover = _parse_request(head)
        except WsProtocolError as exc:
            with self._lock:
                self.bad_requests += 1
            status = "431 Request Header Fields Too Large" \
                if exc.code == CLOSE_TOO_BIG else "400 Bad Request"
            _http_response(sock, status, f"{exc}\n")
            sock.close()
            return
        except (ConnectionError, OSError):
            try:
                sock.close()
            except OSError:
                pass
            return

        parts = urlsplit(target)
        query = parse_qs(parts.query)
        if not self._authorized(headers, query):
            with self._lock:
                self.auth_failures += 1
            _http_response(sock, "401 Unauthorized",
                           "missing or invalid auth token\n")
            sock.close()
            return

        try:
            if headers.get("upgrade", "").lower() == "websocket":
                self._accept_ws(sock, peer, headers, leftover)
            elif parts.path == "/sse":
                self._accept_sse(sock, peer, method, query)
            else:
                with self._lock:
                    self.bad_requests += 1
                _http_response(
                    sock, "404 Not Found",
                    "endpoints: websocket upgrade on /ws, GET /sse\n",
                )
                sock.close()
        except (WsProtocolError, BridgeProtocolError) as exc:
            with self._lock:
                self.bad_requests += 1
            _http_response(sock, "400 Bad Request", f"{exc}\n")
            sock.close()
        except (ConnectionError, OSError):
            try:
                sock.close()
            except OSError:
                pass

    def _authorized(self, headers: dict, query: dict) -> bool:
        if not self.auth_tokens:
            return True
        auth = headers.get("authorization", "")
        if auth.lower().startswith("bearer ") and \
                auth[7:].strip() in self.auth_tokens:
            return True
        for token in query.get("token", ()):
            if token in self.auth_tokens:
                return True
        return False

    def _accept_ws(self, sock, peer: str, headers: dict,
                   leftover: bytes) -> None:
        key = headers.get("sec-websocket-key", "")
        try:
            raw = base64.b64decode(key.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError):
            raw = b""
        if len(raw) != 16:
            raise WsProtocolError(
                "Sec-WebSocket-Key must be 16 base64 bytes"
            )
        if headers.get("sec-websocket-version") != "13":
            raise WsProtocolError("only websocket version 13 is supported")
        response = (
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
            "\r\n"
        )
        sock.sendall(response.encode("latin-1"))
        sock.settimeout(None)
        conn = WsConnection(sock, leftover, require_mask=True)
        with self._lock:
            self.handshakes += 1
        session = _WsSession(self.server, sock, f"ws:{peer}", self, conn,
                             leftover=leftover)
        self.server.register_session(session)

    def _accept_sse(self, sock, peer: str, method: str, query: dict) -> None:
        if method != "GET":
            raise WsProtocolError("/sse only answers GET")
        topics = query.get("topic", ())
        types = query.get("type", ())
        if not topics or len(topics) != len(types):
            raise WsProtocolError(
                "/sse needs paired topic= and type= query parameters"
            )
        if query.get("codec", ["json"])[0] != "json":
            raise WsProtocolError("/sse streams the json codec only")
        response = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        sock.sendall(response.encode("latin-1"))
        sock.settimeout(None)
        with self._lock:
            self.handshakes += 1
        session = _SseSession(self.server, sock, f"sse:{peer}", self)
        if not self.server.register_session(session):
            return
        fields = [f for f in query.get("fields", [""])[0].split(",") if f]
        for topic, spelling in zip(topics, types):
            op = {"op": "subscribe", "topic": topic, "type": spelling,
                  "codec": "json"}
            if fields:
                op["fields"] = fields
            for bound in ("throttle_rate", "queue_length"):
                if bound in query:
                    op[bound] = int(query[bound][0])
            self.server.handle_op(session, op)

    def close(self) -> None:
        self._closed = True
        if self._acceptor is not None:
            self._acceptor.close()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class WsBridgeClient(BridgeClient):
    """A :class:`BridgeClient` that dials the WebSocket front door.

    Same API, same op protocol -- only the wire differs: JSON ops ride
    text frames, RAW/CBIN units ride binary frames (``u8 tag | body``).
    """

    def __init__(self, host: str, port: int, token: Optional[str] = None,
                 path: str = "/ws", **kwargs) -> None:
        self._token = token
        self._path = path
        self._conn: Optional[WsConnection] = None
        super().__init__(host, port, **kwargs)

    def _connect(self, host: str, port: int, timeout: float) -> socket.socket:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        auth = f"Authorization: Bearer {self._token}\r\n" if self._token \
            else ""
        request = (
            f"GET {self._path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            f"{auth}\r\n"
        )
        sock.sendall(request.encode("latin-1"))
        head = _read_request_head(sock)
        try:
            status_line, _, rest = head.partition(b"\r\n")
            status = status_line.decode("latin-1").split(" ", 2)[1]
        except (IndexError, UnicodeDecodeError) as exc:
            raise BridgeProtocolError(
                f"malformed ws handshake response: {exc}"
            ) from exc
        if status != "101":
            detail = head.partition(b"\r\n\r\n")[2].decode(
                "utf-8", "replace").strip()
            raise BridgeProtocolError(
                f"websocket upgrade refused: HTTP {status}"
                + (f" ({detail})" if detail else "")
            )
        _method, _target, headers, leftover = _parse_request(
            b"RESPONSE " + head  # reuse the header parser on the response
        )
        if headers.get("sec-websocket-accept") != accept_key(key):
            raise BridgeProtocolError("bad Sec-WebSocket-Accept in handshake")
        self._conn = WsConnection(
            sock, leftover, require_mask=False, mask_writes=True
        )
        return sock

    def _send_unit(self, tag: int, body: bytes) -> None:
        if 5 + len(body) > self.max_frame:
            frag_id = self._next_id()
            for fragment in protocol.fragment_unit(
                tag, body, self.max_frame, frag_id
            ):
                self._conn.send_frame(
                    OP_TEXT, protocol.encode_json_op(fragment)
                )
            return
        if tag == TAG_JSON:
            self._conn.send_frame(OP_TEXT, bytes(body))
        else:
            self._conn.send_frame(OP_BINARY, bytes([tag]) + bytes(body))

    def _read_unit(self):
        opcode, payload, wire = self._conn.recv_message()
        if opcode == OP_TEXT:
            return TAG_JSON, payload, wire
        if opcode == OP_BINARY:
            if not payload:
                raise BridgeProtocolError("empty binary ws message")
            return payload[0], payload[1:], wire
        raise BridgeProtocolError(f"unsupported ws opcode {opcode:#x}")


def sse_url(host: str, port: int, topic: str, spelling: str,
            fields=None, token: Optional[str] = None, **bounds) -> str:
    """Compose a ``GET /sse`` URL for one subscription (convenience for
    dashboards and the docs)."""
    from urllib.parse import urlencode

    params = [("topic", topic), ("type", spelling)]
    if fields:
        params.append(("fields", ",".join(fields)))
    if token:
        params.append(("token", token))
    params += [(key, str(value)) for key, value in bounds.items()]
    return f"http://{host}:{port}/sse?{urlencode(params)}"
