"""repro.chaos: deterministic fault injection for the middleware.

Quickstart::

    from repro import chaos

    plan = chaos.FaultPlan(seed=42)
    plan.corrupt(seam="bridge", op="recv", min_size=8, count=1)
    with plan:
        ...  # run the workload; exactly one bridge body is corrupted

    master = chaos.ChaosMaster()
    master.pause();  ...;  master.resume(fresh_registry=True)

    plane = chaos.ChaosGraphPlane(shards=2)   # sharded graph plane
    plane.pause(plane.shard_for("/chatter"))  # down just one shard

Seams: every TCPROS data socket and bridge client socket flows through
``tcpros.wrap_socket`` (rules on seam ``tcpros``/``bridge``), every
SHMROS doorbell frame through the ``shm`` hook, and the master is a
:class:`ChaosMaster` you bounce directly.  All randomness is seeded; all
triggering is counter-based -- scenarios replay bit-for-bit.
"""

from repro.chaos.master import ChaosGraphPlane, ChaosMaster
from repro.chaos.plan import FaultPlan, Rule
from repro.chaos.scenario import (
    crash_node,
    flip_bytes,
    fuzz_bytes,
    fuzz_corpus,
    mutations,
)

__all__ = [
    "ChaosGraphPlane",
    "ChaosMaster",
    "FaultPlan",
    "Rule",
    "crash_node",
    "flip_bytes",
    "fuzz_bytes",
    "fuzz_corpus",
    "mutations",
]
