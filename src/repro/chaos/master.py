"""ChaosMaster: a ROS master that can be paused, resumed and restarted.

The point of keeping the *port* stable across a bounce is that nodes
hold a master URI, not a handle: after ``pause()`` their watchdogs see
connection-refused, back off, and redial the same URI until ``resume()``
brings the listener back.  ``resume(fresh_registry=True)`` swaps in an
empty :class:`~repro.ros.master.MasterRegistry` -- a new epoch -- which
is the amnesiac-restart scenario: every node must notice the epoch
change and replay its registrations or the graph stays silently dark.
"""

from __future__ import annotations

import threading
import xmlrpc.server

from repro.ros.master import MasterRegistry, _MasterRPCHandlers


class ChaosMaster:
    """A bounceable master with a stable URI."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self.registry = MasterRegistry()
        self._server = None
        self._thread = None
        self._lock = threading.Lock()
        self._start()
        self.uri = f"http://{self._host}:{self._port}/"

    def _start(self) -> None:
        # SimpleXMLRPCServer sets allow_reuse_address, so rebinding the
        # port we just closed works without a TIME_WAIT dance.
        server = xmlrpc.server.SimpleXMLRPCServer(
            (self._host, self._port), logRequests=False, allow_none=True
        )
        server.register_instance(_MasterRPCHandlers(self.registry))
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name="chaos-master",
        )
        thread.start()
        self._host, self._port = server.server_address
        self._server, self._thread = server, thread

    # ------------------------------------------------------------------
    # Scenario actions
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def epoch(self) -> str:
        return self.registry.epoch

    def pause(self) -> None:
        """Stop answering (connection refused) but keep the registry --
        the master is *down*, not *reset*."""
        with self._lock:
            server, thread = self._server, self._thread
            self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
            thread.join(timeout=2.0)

    def resume(self, fresh_registry: bool = False) -> None:
        """Come back on the same port.  ``fresh_registry=True`` models a
        crash-restart that lost all state (new epoch, empty registry);
        the default models a network partition healing."""
        with self._lock:
            if self._server is not None:
                return
            if fresh_registry:
                self.registry = MasterRegistry()
            self._start()

    def restart(self) -> None:
        """Convenience: a full state-losing bounce."""
        self.pause()
        self.resume(fresh_registry=True)

    def shutdown(self) -> None:
        self.pause()

    def __enter__(self) -> "ChaosMaster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ChaosGraphPlane:
    """A bounceable *sharded* graph plane: ChaosMaster semantics, but
    each fault targets one shard.

    Wraps :class:`repro.graphplane.launch.GraphPlane` and exposes the
    same verbs as :class:`ChaosMaster` with a ``shard`` argument --
    ``pause(0)`` downs only shard 0's leader, ``resume(0,
    fresh_registry=True)`` brings it back amnesiac.  Replicas keep their
    probe/promote behaviour, so pausing a leader long enough is the
    "kill the leader mid-traffic" scenario.  All timing knobs are plain
    numbers and every decision is deterministic given the scenario's
    seed, so a failure replays exactly.
    """

    def __init__(
        self,
        shards: int = 2,
        replicas: bool = True,
        host: str = "127.0.0.1",
        probe_interval: float = 0.05,
        probe_failures: int = 3,
    ) -> None:
        from repro.graphplane.launch import GraphPlane

        self.plane = GraphPlane(
            shards=shards,
            replicas=replicas,
            host=host,
            probe_interval=probe_interval,
            probe_failures=probe_failures,
        )
        self.spec = self.plane.spec

    # -- lookup ----------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self.plane.shard_count

    def shard_for(self, name: str) -> int:
        """Which shard a fault must target to affect ``name``."""
        return self.plane.shard_for(name)

    def leader(self, shard: int):
        return self.plane.leaders[shard]

    def replica(self, shard: int):
        return self.plane.replicas[shard]

    def epoch(self, shard: int) -> str:
        return self.plane.leaders[shard].epoch

    # -- per-shard scenario actions --------------------------------------
    def pause(self, shard: int) -> None:
        """Down one shard's leader (connection refused), state kept."""
        self.plane.leaders[shard].pause()

    def resume(self, shard: int, fresh_registry: bool = False) -> None:
        self.plane.leaders[shard].resume(fresh_registry=fresh_registry)

    def restart(self, shard: int) -> None:
        """Amnesiac bounce of one shard's leader (new epoch)."""
        self.plane.leaders[shard].restart()

    def kill_leader(self, shard: int) -> None:
        """Permanently down a leader: the shard's replica must promote.
        (Alias of :meth:`pause` -- the difference is the scenario's
        intent never to resume.)"""
        self.pause(shard)

    def shutdown(self) -> None:
        self.plane.shutdown()

    def __enter__(self) -> "ChaosGraphPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
