"""FaultPlan: a deterministic, seedable fault-injection scenario.

A plan is a list of *rules*, each scoped to a seam (``tcpros``,
``bridge``, ``shm``), an optional role/topic, a direction (``send`` /
``recv``) and a size floor, with counter-based triggering: skip the
first ``after`` matching events, then apply to at most ``count`` of
them.  Counters (not wall clocks) make scenarios replayable; where a
rule needs randomness (byte flips, probabilistic drops) it draws from a
private RNG seeded ``f"{plan_seed}:{rule_index}"`` so two runs with the
same seed corrupt the same bytes.

Installation is global but reversible: ``install()`` plants the socket
hook in :mod:`repro.ros.transport.tcpros` (which the bridge shares) and
the doorbell hook in :mod:`repro.ros.transport.shm`; ``uninstall()`` --
or leaving the ``with`` block -- removes both.  The transports never
import this package.

Beyond passive rules, a plan is also the scenario driver's hand on the
graph: ``sever()`` imperatively kills currently-open tracked
connections, which is how tests cut every data link at a precise point
instead of waiting for a counter to come due.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.sockets import ChaosSocket
from repro.ros.transport import shm, tcpros


@dataclass
class Rule:
    """One fault with its scope, trigger window and private RNG."""

    kind: str                     # drop | delay | corrupt | truncate | kill
    seam: Optional[str] = None    # tcpros | bridge | shm | None = any
    role: Optional[str] = None    # subscriber | publisher | server
    topic: Optional[str] = None
    op: str = "send"              # send | recv
    after: int = 0                # skip the first N matching events
    count: Optional[int] = None   # then fire at most N times (None = all)
    min_size: int = 0             # only events moving >= this many bytes
    probability: float = 1.0      # drawn from the rule RNG (deterministic)
    seconds: float = 0.0          # for delay
    flips: int = 3                # for corrupt
    rng: random.Random = field(default_factory=random.Random)
    seen: int = 0
    fired: int = 0

    def consider(self, seam: str, context: dict, op: str, size: int):
        """The action this rule injects for one I/O event, or None."""
        if self.seam is not None and seam != self.seam:
            return None
        if self.role is not None and context.get("role") != self.role:
            return None
        if self.topic is not None and context.get("topic") != self.topic:
            return None
        if op != self.op:
            return None
        if size < self.min_size:
            return None
        self.seen += 1
        if self.seen <= self.after:
            return None
        if self.count is not None and self.fired >= self.count:
            return None
        if self.probability < 1.0 and self.rng.random() >= self.probability:
            return None
        self.fired += 1
        if self.kind == "delay":
            return ("delay", self.seconds)
        if self.kind == "corrupt":
            return ("corrupt", self.rng, self.flips)
        return (self.kind,)


class FaultPlan:
    """A seeded scenario: build rules with the DSL methods, ``install()``
    (or use as a context manager), run the workload, inspect
    ``events``."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: list[Rule] = []
        self._lock = threading.Lock()
        self._sockets: list[ChaosSocket] = []
        self._installed = False
        #: ``(kind, seam, op, size)`` per injected fault, for assertions.
        self.events: list[tuple] = []

    # ------------------------------------------------------------------
    # Scenario DSL
    # ------------------------------------------------------------------
    def _add(self, kind: str, **kwargs) -> "FaultPlan":
        rule = Rule(
            kind=kind,
            rng=random.Random(f"{self.seed}:{len(self._rules)}"),
            **kwargs,
        )
        with self._lock:
            self._rules.append(rule)
        return self

    def drop(self, **kwargs) -> "FaultPlan":
        """Swallow matching sends (one send = one frame = one message)."""
        return self._add("drop", **kwargs)

    def delay(self, seconds: float, **kwargs) -> "FaultPlan":
        """Sleep before matching operations."""
        return self._add("delay", seconds=seconds, **kwargs)

    def corrupt(self, flips: int = 3, **kwargs) -> "FaultPlan":
        """Flip ``flips`` seeded-random bytes of matching payloads."""
        return self._add("corrupt", flips=flips, **kwargs)

    def truncate(self, **kwargs) -> "FaultPlan":
        """Send half of a matching payload, then kill the connection."""
        return self._add("truncate", **kwargs)

    def kill(self, **kwargs) -> "FaultPlan":
        """Close the connection when a matching operation comes due."""
        return self._add("kill", **kwargs)

    def stall_doorbell(self, **kwargs) -> "FaultPlan":
        """Wedge SHMROS: suppress doorbell frames (slot notifications,
        inline payloads *and* keepalives), so the ring looks alive on the
        publisher side while the subscriber hears nothing."""
        kwargs.setdefault("op", "send")
        return self._add("drop", seam="shm", **kwargs)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> "FaultPlan":
        tcpros.install_socket_hook(self._wrap)
        shm.install_doorbell_hook(self._doorbell)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self._installed = False
            tcpros.install_socket_hook(None)
            shm.install_doorbell_hook(None)

    def __enter__(self) -> "FaultPlan":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Hook plumbing (called by the transports)
    # ------------------------------------------------------------------
    def _wrap(self, sock, seam: str, context: dict):
        return ChaosSocket(sock, self, seam, context)

    def _decide(self, seam: str, context: dict, op: str, size: int):
        with self._lock:
            for rule in self._rules:
                action = rule.consider(seam, context, op, size)
                if action is not None:
                    self.events.append((action[0], seam, op, size))
                    return action
        return None

    def _doorbell(self, kind: int, sock, size: int) -> bool:
        action = self._decide("shm", {}, "send", size)
        if action is None:
            return True
        name = action[0]
        if name == "delay":
            time.sleep(action[1])
            return True
        if name in ("kill", "truncate"):
            try:
                sock.close()
            except OSError:
                pass
            return False
        # drop / corrupt: doorbell frames are fixed-format control words;
        # anything but forwarding them intact is modelled as suppression.
        return False

    def _track(self, sock: ChaosSocket) -> None:
        with self._lock:
            self._sockets.append(sock)

    def _untrack(self, sock: ChaosSocket) -> None:
        with self._lock:
            if sock in self._sockets:
                self._sockets.remove(sock)

    # ------------------------------------------------------------------
    # Imperative scenario actions
    # ------------------------------------------------------------------
    def sever(
        self,
        seam: Optional[str] = None,
        role: Optional[str] = None,
        topic: Optional[str] = None,
    ) -> int:
        """Abruptly close every tracked connection matching the filters
        (both ends see a reset, neither got a goodbye).  Returns how many
        connections were cut."""
        with self._lock:
            victims = [
                sock for sock in self._sockets
                if (seam is None or sock.seam == seam)
                and (role is None or sock.context.get("role") == role)
                and (topic is None or sock.context.get("topic") == topic)
            ]
        import socket as _socket

        for sock in victims:
            # shutdown() before close(): a thread blocked in recv on this
            # fd only wakes immediately on shutdown -- plain close leaves
            # it hanging until its idle timeout, which would make sever
            # timing depend on unrelated knobs.
            try:
                sock._sock.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock._sock.close()
            except OSError:
                pass
        with self._lock:
            self.events.append(("sever", seam or "*", "both", len(victims)))
        return len(victims)

    def open_connections(self) -> int:
        with self._lock:
            return len(self._sockets)
