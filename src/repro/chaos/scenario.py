"""Scenario helpers: abrupt process-style failures and seeded fuzzing.

``FaultPlan`` rules act on live connections; the helpers here model the
failures that happen *around* them -- a node dying mid-publish without a
goodbye, and deterministic garbage generation for deserializer fuzzing
(the no-dependency replacement for hypothesis in the chaos suites).
"""

from __future__ import annotations

import random
from typing import Iterator


def crash_node(node) -> None:
    """Kill a node the way SIGKILL would: no unregistration, no clean
    link shutdowns -- sockets and servers just stop existing.  Peers must
    discover the death through their own error paths (send failures, the
    publisher-side monitor, the subscriber idle timeout) and the master
    keeps stale registrations until someone re-registers over them."""
    import socket as _socket

    node._shutdown = True
    node._watch_stop.set()
    with node._lock:
        publishers = list(node._publishers.values())
        subscribers = [
            sub for subs in node._subscribers.values() for sub in subs
        ]
        services = list(node._services.values())
        node._publishers.clear()
        node._subscribers.clear()
        node._services.clear()
    # Servers first: no new connections while we cut the existing ones.
    node._data_server.close()
    node._slave_server.shutdown()
    node._slave_server.server_close()
    for publisher in publishers:
        with publisher._links_lock:
            links = list(publisher._links)
            publisher._links.clear()
        for link in links:
            try:
                link.sock.close()
            except OSError:
                pass
    for service in services:
        service._shutdown = True
        with service._active_lock:
            active = list(service._active_socks)
            service._active_socks.clear()
        for sock in active:
            # shutdown() wakes serve loops blocked mid-read; close alone
            # would leave in-flight calls hanging instead of erroring.
            try:
                sock.shutdown(_socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
    for subscriber in subscribers:
        with subscriber._lock:
            links = list(subscriber._links.values())
            subscriber._links.clear()
            timers = list(subscriber._timers.values())
            subscriber._timers.clear()
        for timer in timers:
            timer.cancel()
        for link in links:
            try:
                if link.sock is not None:
                    link.sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Seeded fuzzing (deterministic; no hypothesis)
# ----------------------------------------------------------------------
def fuzz_bytes(rng: random.Random, max_size: int = 128) -> bytes:
    """One random buffer, sized 0..max_size."""
    return rng.randbytes(rng.randint(0, max_size))


def fuzz_corpus(seed: int, cases: int = 60,
                max_size: int = 128) -> Iterator[bytes]:
    """A reproducible stream of garbage buffers, biased toward the
    troublemakers: empty input, single bytes, and all-0xFF length words."""
    rng = random.Random(seed)
    yield b""
    yield b"\x00"
    yield b"\xff" * 4
    yield b"\xff" * 16
    for _ in range(cases):
        yield fuzz_bytes(rng, max_size)


def flip_bytes(data: bytes, rng: random.Random, flips: int = 3) -> bytes:
    """A copy of ``data`` with ``flips`` random single-byte corruptions
    (never a no-op flip)."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(max(1, flips)):
        index = rng.randrange(len(out))
        out[index] ^= 1 + rng.randrange(255)
    return bytes(out)


def mutations(data: bytes, seed: int, rounds: int = 20) -> Iterator[bytes]:
    """Reproducible corrupted variants of a valid buffer: byte flips,
    truncations, and length-word inflation -- the classic ways a frame
    arrives damaged."""
    rng = random.Random(seed)
    for _ in range(rounds):
        choice = rng.randrange(3)
        if choice == 0 or not data:
            yield flip_bytes(data, rng)
        elif choice == 1:
            yield data[: rng.randrange(len(data))]
        else:
            index = rng.randrange(max(1, len(data) - 3))
            yield data[:index] + b"\xff\xff\xff\xff" + data[index + 4:]
