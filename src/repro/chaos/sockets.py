"""ChaosSocket: a socket proxy that consults a FaultPlan on every I/O.

The transports never see this class by name -- they call
``tcpros.wrap_socket`` at connection setup and receive either the real
socket (no plan installed) or this wrapper.  Every overridden method asks
the plan for an action first; everything else delegates, so the wrapper
is drop-in for the blocking-socket subset the transports use
(``sendall``/``sendmsg``/``recv``/``recv_into``/``settimeout``/...).

Action semantics on a *stream* socket:

- ``drop`` applies to sends only: the bytes are swallowed and reported
  sent.  The transports write one frame per send call, so a swallowed
  send is a cleanly dropped frame, not a desynced stream.
- ``delay`` sleeps before the operation (both directions).
- ``corrupt`` flips bytes -- in a copy on the send path, in place in the
  caller's buffer on the receive path -- using the rule's seeded RNG.
- ``truncate`` sends a prefix of the buffer then kills the connection:
  the peer sees a frame cut mid-payload (fragmentation corruption).
- ``kill`` closes the underlying socket and raises ``ConnectionError``.
"""

from __future__ import annotations

import time


class ChaosSocket:
    """Wraps a real socket; fault decisions come from the owning plan."""

    def __init__(self, sock, plan, seam: str, context: dict) -> None:
        self._sock = sock
        self._plan = plan
        self.seam = seam
        self.context = dict(context)
        plan._track(self)

    # -- plumbing ------------------------------------------------------
    def __getattr__(self, name):
        return getattr(self._sock, name)

    def _decide(self, op: str, size: int):
        return self._plan._decide(self.seam, self.context, op, size)

    def _kill(self) -> None:
        import socket as _socket

        # shutdown() wakes any thread blocked reading this socket;
        # close() alone would leave it stuck until its own timeout.
        try:
            self._sock.shutdown(_socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        raise ConnectionResetError("chaos: connection killed by plan")

    @staticmethod
    def _corrupted_copy(data, rng, flips: int) -> bytes:
        out = bytearray(data)
        for _ in range(max(1, flips)):
            index = rng.randrange(len(out))
            out[index] ^= 1 + rng.randrange(255)
        return bytes(out)

    # -- send path -----------------------------------------------------
    def _apply_send(self, data, action):
        """Returns (data_to_send, pretend_sent) -- ``None`` data means the
        caller should report success without touching the wire."""
        kind = action[0]
        if kind == "drop":
            return None, len(data)
        if kind == "delay":
            time.sleep(action[1])
            return data, None
        if kind == "corrupt":
            if len(data):
                return self._corrupted_copy(data, action[1], action[2]), None
            return data, None
        if kind == "truncate":
            prefix = bytes(data)[: max(1, len(data) // 2)]
            try:
                self._sock.sendall(prefix)
            except OSError:
                pass
            self._kill()
        if kind == "kill":
            self._kill()
        return data, None

    def send(self, data, *args):
        action = self._decide("send", len(data))
        if action is not None:
            data, pretend = self._apply_send(data, action)
            if data is None:
                return pretend
        return self._sock.send(data, *args)

    def sendall(self, data, *args):
        action = self._decide("send", len(data))
        if action is not None:
            data, _pretend = self._apply_send(data, action)
            if data is None:
                return None
        return self._sock.sendall(data, *args)

    def sendmsg(self, buffers, *args):
        flat = b"".join(bytes(b) for b in buffers)
        action = self._decide("send", len(flat))
        if action is not None:
            flat, pretend = self._apply_send(flat, action)
            if flat is None:
                return pretend
            return self._sock.sendall(flat) or len(flat)
        return self._sock.sendmsg(buffers, *args)

    # -- receive path --------------------------------------------------
    def recv(self, bufsize, *args):
        action = self._decide("recv", bufsize)
        if action is not None:
            kind = action[0]
            if kind == "delay":
                time.sleep(action[1])
            elif kind == "kill":
                self._kill()
            elif kind == "corrupt":
                data = self._sock.recv(bufsize, *args)
                if data:
                    return self._corrupted_copy(data, action[1], action[2])
                return data
        return self._sock.recv(bufsize, *args)

    def recv_into(self, buffer, nbytes=0, *args):
        size = nbytes or len(buffer)
        action = self._decide("recv", size)
        corrupt = None
        if action is not None:
            kind = action[0]
            if kind == "delay":
                time.sleep(action[1])
            elif kind == "kill":
                self._kill()
            elif kind == "corrupt":
                corrupt = action
        got = self._sock.recv_into(buffer, nbytes, *args)
        if corrupt is not None and got:
            _kind, rng, flips = corrupt
            view = memoryview(buffer)
            for _ in range(max(1, flips)):
                index = rng.randrange(got)
                view[index] ^= 1 + rng.randrange(255)
        return got

    def close(self):
        self._plan._untrack(self)
        return self._sock.close()
