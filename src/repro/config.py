"""One window onto every ``REPRO_*`` environment kill switch.

The middleware grew one ad-hoc ``os.environ`` read per subsystem --
``REPRO_SHMROS`` in the transport, ``REPRO_TZC`` in the codec,
``REPRO_OBS`` in the metrics registry, and so on -- each with its own
default spelling and no way to see the whole configuration at once.
This module replaces them with typed, *read-once* accessors:

- every switch is declared once in :data:`SWITCHES` with its default,
  type and a one-line description;
- the first access snapshots the environment value and every later
  access returns the same answer (so a switch cannot silently flip
  mid-run and leave half the process on each side of it);
- ``python -m repro.ros.tools config`` dumps the whole table, resolved
  against the current environment, for operators and CI logs.

Tests that need to flip a switch after import call :func:`reset`
(between processes the environment alone is enough -- the common
pattern is a subprocess with a patched env, which needs nothing here).
"""

from __future__ import annotations

import os
import threading
from typing import Optional

__all__ = [
    "SWITCHES", "flag", "reset", "describe",
    "sfm_slab", "sfm_codegen", "tzc", "shmros", "doorbell_batch",
    "transport_planner", "obs", "obs_wire", "soak", "reactor",
]


class Switch:
    """One declared environment switch (boolean flavoured)."""

    __slots__ = ("name", "default", "description", "truthy")

    def __init__(self, name: str, default: bool, description: str,
                 truthy: bool = False) -> None:
        self.name = name
        self.default = default
        self.description = description
        #: ``truthy=False`` (the common kill-switch spelling): enabled
        #: unless the variable is exactly ``"0"``.  ``truthy=True`` (the
        #: opt-in spelling): enabled only when exactly ``"1"``.
        self.truthy = truthy

    def read(self, environ=os.environ) -> bool:
        raw = environ.get(self.name)
        if raw is None or raw == "":
            return self.default
        if self.truthy:
            return raw == "1"
        return raw != "0"


#: Every recognised switch, in display order.  Defaults mirror the
#: historical per-module reads exactly.
SWITCHES: dict[str, Switch] = {
    switch.name: switch
    for switch in (
        Switch("REPRO_SFM_SLAB", True,
               "slab-backed zero-copy growth for unsized SFM fields"),
        Switch("REPRO_SFM_CODEGEN", True,
               "compiled per-type accessors (struct/memoryview fast path)"),
        Switch("REPRO_TZC", True,
               "TZC partial serialization on remote SFM links"),
        Switch("REPRO_SHMROS", True,
               "shared-memory transport (slot rings + doorbell)"),
        Switch("REPRO_DOORBELL_BATCH", True,
               "send-side frame coalescing (TCPROS data and SHM doorbell)"),
        Switch("REPRO_TRANSPORT_PLANNER", False,
               "adaptive per-link transport planner", truthy=True),
        Switch("REPRO_OBS", True,
               "metrics registry (counters, gauges, histograms)"),
        Switch("REPRO_OBS_WIRE", True,
               "16-byte trace prefix on negotiated connections"),
        Switch("REPRO_SOAK", False,
               "long-running soak variants of tests and benches",
               truthy=True),
        Switch("REPRO_REACTOR", True,
               "shared selector event loop under every transport "
               "(0 = thread-per-connection)"),
    )
}

_cache: dict[str, bool] = {}
_lock = threading.Lock()


def flag(name: str) -> bool:
    """The resolved value of one switch, snapshotted on first read."""
    value = _cache.get(name)
    if value is None:
        with _lock:
            value = _cache.get(name)
            if value is None:
                value = _cache[name] = SWITCHES[name].read()
    return value


def reset(name: Optional[str] = None) -> None:
    """Drop the read-once snapshot (tests only): the next access re-reads
    the environment.  With ``name=None`` every switch is dropped."""
    with _lock:
        if name is None:
            _cache.clear()
        else:
            _cache.pop(name, None)


def describe() -> list[dict]:
    """The full switch table resolved against the current process state
    (backing ``tools config``).  ``value`` is the read-once snapshot
    when one exists, else the environment as it would be read now."""
    rows = []
    for switch in SWITCHES.values():
        raw = os.environ.get(switch.name)
        cached = _cache.get(switch.name)
        rows.append({
            "name": switch.name,
            "value": cached if cached is not None else switch.read(),
            "default": switch.default,
            "env": raw if raw is not None else "",
            "pinned": cached is not None,
            "description": switch.description,
        })
    return rows


# ----------------------------------------------------------------------
# Typed accessors (what the subsystems call)
# ----------------------------------------------------------------------
def sfm_slab() -> bool:
    return flag("REPRO_SFM_SLAB")


def sfm_codegen() -> bool:
    return flag("REPRO_SFM_CODEGEN")


def tzc() -> bool:
    return flag("REPRO_TZC")


def shmros() -> bool:
    return flag("REPRO_SHMROS")


def doorbell_batch() -> bool:
    return flag("REPRO_DOORBELL_BATCH")


def transport_planner() -> bool:
    return flag("REPRO_TRANSPORT_PLANNER")


def obs() -> bool:
    return flag("REPRO_OBS")


def obs_wire() -> bool:
    return flag("REPRO_OBS_WIRE")


def soak() -> bool:
    return flag("REPRO_SOAK")


def reactor() -> bool:
    return flag("REPRO_REACTOR")
