"""The ROS-SF Converter: static checking and source conversion.

The paper's converter is an LLVM pass with two jobs: (a) rewrite
stack-allocated messages to heap allocation, and (b) -- together with the
generated classes -- surface violations of the three assumptions at
compile time or with run-time prompts.  In Python every object is heap
allocated, so job (a) is the import/class swap to the SFM-generated
classes (:mod:`repro.converter.rewriter`); job (b) is
:mod:`repro.converter.analyzer`, an AST pass that resolves message field
kinds through the type registry and reports, per file:

1. **String Reassignment** -- a string field assigned twice, or assigned
   on a message produced by a call (already fully constructed, the
   paper's Fig. 19 ``toImageMsg`` case);
2. **Vector Multi-Resize** -- a vector field resized twice, or resized on
   a message received as a function parameter (an output reference whose
   callers cannot be checked, the paper's Fig. 20 case);
3. **Other Methods** -- a size-modifying method (``push_back``/``append``/
   ...) called on a vector field (the paper's Fig. 21 case).

:mod:`repro.converter.report` aggregates analyzer results into the
paper's Table 1; :mod:`repro.converter.corpus` generates the ROS-style
source corpus the table is computed over.
"""

from repro.converter.analyzer import FileReport, Violation, analyze_source
from repro.converter.report import ApplicabilityReport, run_applicability_study
from repro.converter.rewriter import conversion_guidance, rewrite_imports_to_sfm

__all__ = [
    "ApplicabilityReport",
    "FileReport",
    "Violation",
    "analyze_source",
    "conversion_guidance",
    "rewrite_imports_to_sfm",
    "run_applicability_study",
]
