"""AST analyzer checking the paper's three assumptions.

The analyzer resolves field *kinds* (string / vector / other) through the
message type registry, so ``img.header.frame_id`` is recognized as a
string field of ``sensor_msgs/Image`` via ``std_msgs/Header``, exactly as
the C++ converter resolves demangled class names through the generated
headers (Section 4.3.2).

Message objects are tracked per function scope with three origins:

- ``constructor`` -- ``img = Image()``: a fresh message; each field may be
  assigned once.
- ``call`` -- ``img = something().toImageMsg()``: a message constructed
  elsewhere, arriving fully assigned; any further string assignment /
  vector resize is a (potential) second one.
- ``param`` -- a function parameter annotated with a message class: an
  output reference; resizes cannot be proven one-shot across all callers,
  so they are flagged (the paper counts these "for the sake of rigor").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.msg.fields import ArrayType, ComplexType, MapType, StringType
from repro.msg.registry import TypeRegistry, UnknownTypeError, default_registry

#: Methods forbidden by the No Modifier Assumption (C++ and Python
#: spellings).
MODIFIER_METHODS = frozenset(
    {"push_back", "emplace_back", "pop_back", "append", "pop", "insert",
     "extend", "remove", "clear", "erase"}
)

#: Violation kind tags (the Table 1 columns).
STRING_REASSIGNMENT = "string-reassignment"
VECTOR_MULTI_RESIZE = "vector-multi-resize"
OTHER_METHODS = "other-methods"


@dataclass(frozen=True)
class Violation:
    """One assumption violation found in a file."""

    kind: str
    message_class: str
    field_path: str
    line: int
    detail: str


@dataclass
class FileReport:
    """Analyzer output for one source file."""

    path: str
    classes_used: set[str] = dataclass_field(default_factory=set)
    violations: list[Violation] = dataclass_field(default_factory=list)

    def violations_for(self, message_class: str) -> list[Violation]:
        return [v for v in self.violations if v.message_class == message_class]

    def is_applicable(self, message_class: str) -> bool:
        """True when this file's use of ``message_class`` satisfies all
        three assumptions."""
        return not self.violations_for(message_class)


@dataclass
class _TrackedVar:
    class_name: str          # full message type name
    origin: str              # constructor | call | param
    string_assigns: dict = dataclass_field(default_factory=dict)  # path -> count
    resizes: dict = dataclass_field(default_factory=dict)         # path -> count


class _ShortNameIndex:
    """Maps class short names (``Image``) to full names, as the import
    graph of a ROS package would."""

    def __init__(self, registry: TypeRegistry) -> None:
        self._by_short: dict[str, str] = {}
        for full_name in registry.names():
            short = full_name.rsplit("/", 1)[-1]
            # First registration wins; the standard library has no
            # colliding short names among the studied classes.
            self._by_short.setdefault(short, full_name)

    def resolve(self, name: str) -> Optional[str]:
        if "/" in name:
            return name
        return self._by_short.get(name)


class _FunctionAnalyzer(ast.NodeVisitor):
    """Per-function tracking of message variables and field operations."""

    def __init__(self, owner: "SourceAnalyzer") -> None:
        self.owner = owner
        self.vars: dict[str, _TrackedVar] = {}

    # -- variable origins ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested function: analyzed separately by the owner; don't recurse.
        self.owner.analyze_function(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def handle_arguments(self, args: ast.arguments) -> None:
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.annotation is None:
                continue
            class_name = self.owner.class_of_annotation(arg.annotation)
            if class_name:
                self.vars[arg.arg] = _TrackedVar(class_name, "param")
                self.owner.report.classes_used.add(class_name)

    def visit_Assign(self, node: ast.Assign) -> None:
        value_class, origin = self.owner.class_of_expression(node.value, self.vars)
        for target in node.targets:
            if isinstance(target, ast.Name) and value_class:
                self.vars[target.id] = _TrackedVar(value_class, origin)
                self.owner.report.classes_used.add(value_class)
            elif isinstance(target, ast.Attribute):
                self._record_attribute_assignment(target, node.lineno)
        self.generic_visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.annotation is not None:
            class_name = self.owner.class_of_annotation(node.annotation)
            if class_name:
                origin = "constructor"
                if node.value is not None:
                    inferred, origin_v = self.owner.class_of_expression(
                        node.value, self.vars
                    )
                    origin = origin_v if inferred else "call"
                self.vars[node.target.id] = _TrackedVar(class_name, origin)
                self.owner.report.classes_used.add(class_name)
        elif isinstance(node.target, ast.Attribute):
            self._record_attribute_assignment(node.target, node.lineno)
        if node.value is not None:
            self.generic_visit(node.value)

    # -- field operations -------------------------------------------------
    def _record_attribute_assignment(self, target: ast.Attribute, line: int):
        resolved = self._resolve_field(target)
        if resolved is None:
            return
        var, tracked, path, kind = resolved
        if kind != "string":
            return
        count = tracked.string_assigns.get(path, 0) + 1
        tracked.string_assigns[path] = count
        already_constructed = tracked.origin == "call"
        if count > 1 or already_constructed:
            detail = (
                "assigned on a message returned by a call (already "
                "constructed elsewhere)"
                if already_constructed and count == 1
                else f"assigned {count} times"
            )
            self.owner.report.violations.append(
                Violation(STRING_REASSIGNMENT, tracked.class_name, path,
                          line, detail)
            )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            resolved = self._resolve_field(node.func.value)
            if resolved is not None:
                var, tracked, path, kind = resolved
                if kind == "vector" and method == "resize":
                    self._record_resize(tracked, path, node)
                elif kind == "vector" and method in MODIFIER_METHODS:
                    self.owner.report.violations.append(
                        Violation(OTHER_METHODS, tracked.class_name, path,
                                  node.lineno, f"calls {method}()")
                    )
        self.generic_visit(node)

    def _record_resize(self, tracked: _TrackedVar, path: str, node: ast.Call):
        resize_to_zero = bool(
            node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0
        )
        if resize_to_zero:
            # resize(0) is always permitted at run time (it only clears the
            # count), so it neither counts as the one shot nor violates.
            return
        count = tracked.resizes.get(path, 0) + 1
        tracked.resizes[path] = count
        if tracked.origin == "param":
            self.owner.report.violations.append(
                Violation(
                    VECTOR_MULTI_RESIZE, tracked.class_name, path,
                    node.lineno,
                    "resize of an output-reference parameter; callers "
                    "cannot be proven to pass an unsized field",
                )
            )
        elif count > 1:
            self.owner.report.violations.append(
                Violation(VECTOR_MULTI_RESIZE, tracked.class_name, path,
                          node.lineno, f"resized {count} times")
            )

    # -- field kind resolution ---------------------------------------------
    def _resolve_field(self, node: ast.expr):
        """Resolve ``var.a.b.field`` to (var, tracked, dotted path, kind)
        where kind is 'string' | 'vector' | 'other'."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        tracked = self.vars.get(current.id)
        if tracked is None:
            return None
        parts.reverse()
        kind = self.owner.field_kind(tracked.class_name, parts)
        if kind is None:
            return None
        path = current.id + "." + ".".join(parts)
        return current.id, tracked, path, kind


class SourceAnalyzer:
    """Analyzes one source file."""

    def __init__(self, path: str, tree: ast.Module,
                 registry: TypeRegistry) -> None:
        self.registry = registry
        self.index = _ShortNameIndex(registry)
        self.report = FileReport(path=path)
        self._tree = tree

    def run(self) -> FileReport:
        # Module level acts as one implicit function scope.
        module_scope = _FunctionAnalyzer(self)
        for statement in self._tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.analyze_function(statement)
            elif isinstance(statement, ast.ClassDef):
                for item in statement.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.analyze_function(item)
            else:
                module_scope.visit(statement)
        return self.report

    def analyze_function(self, node) -> None:
        scope = _FunctionAnalyzer(self)
        scope.handle_arguments(node.args)
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.analyze_function(statement)
            else:
                scope.visit(statement)

    # -- type resolution helpers -----------------------------------------
    def class_of_annotation(self, annotation: ast.expr) -> Optional[str]:
        name = _annotation_name(annotation)
        if name is None:
            return None
        full = self.index.resolve(name)
        if full is None:
            return None
        return full if full in self.registry else None

    def class_of_expression(self, value: ast.expr, vars_in_scope):
        """Infer (message class, origin) of an assignment's RHS."""
        if isinstance(value, ast.Call):
            callee = value.func
            if isinstance(callee, ast.Name):
                full = self.index.resolve(callee.id)
                if full and full in self.registry:
                    return full, "constructor"
            if isinstance(callee, ast.Attribute):
                # Conversion helpers: cv_bridge-style ``...toImageMsg()``
                # and friends produce fully constructed messages.
                produced = _CONVERSION_RETURNS.get(callee.attr)
                if produced:
                    return produced, "call"
        if isinstance(value, ast.Name):
            tracked = vars_in_scope.get(value.id)
            if tracked:
                return tracked.class_name, tracked.origin
        return None, "call"

    def field_kind(self, class_name: str, parts: list[str]) -> Optional[str]:
        """Kind of the dotted field path ``parts`` on ``class_name``."""
        if not parts:
            return None
        try:
            spec = self.registry.get(class_name)
        except UnknownTypeError:
            return None
        current_type = None
        for index, part in enumerate(parts):
            try:
                field = spec.field(part)
            except KeyError:
                return None
            current_type = field.type
            if index < len(parts) - 1:
                if isinstance(current_type, ComplexType):
                    spec = self.registry.get(current_type.name)
                else:
                    return None
        if isinstance(current_type, StringType):
            return "string"
        if isinstance(current_type, (ArrayType, MapType)):
            if isinstance(current_type, ArrayType) and current_type.length is not None:
                return "other"  # fixed arrays never resize
            return "vector"
        if isinstance(current_type, ComplexType):
            return "other"
        return "other"


#: Conversion helpers whose return value is a fully constructed message
#: (the cv_bridge pattern of the paper's first failure case).
_CONVERSION_RETURNS = {
    "toImageMsg": "sensor_msgs/Image",
    "toCompressedImageMsg": "sensor_msgs/CompressedImage",
    "to_image_msg": "sensor_msgs/Image",
}


def _annotation_name(annotation: ast.expr) -> Optional[str]:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1]
    return None


def analyze_source(
    source: str, path: str = "<string>",
    registry: Optional[TypeRegistry] = None,
) -> FileReport:
    """Analyze one Python source file for assumption violations.

    >>> report = analyze_source(
    ...     "def f():\\n"
    ...     "    img = Image()\\n"
    ...     "    img.encoding = 'rgb8'\\n"
    ...     "    img.encoding = 'bgr8'\\n"
    ... )  # doctest: +SKIP
    """
    if registry is None:
        import repro.msg.library  # noqa: F401  (registers the library)

        registry = default_registry
    tree = ast.parse(source, filename=path)
    return SourceAnalyzer(path, tree, registry).run()
