"""Corpus generation for the applicability study (Table 1).

The paper manually audited the ROS team's packages (125 packages, 486
source files) for how five sensor_msgs classes are used.  Offline we
generate an equivalent corpus: ROS-style Python sources embedding the
exact usage-pattern mix of Table 1 -- clean one-shot construction, the
Fig. 19 string-reassignment pattern (cv_bridge conversion then a header
fix-up), the Fig. 20 output-reference resize pattern, and the Fig. 21
``push_back`` packing loop -- plus filler files that use none of the
studied classes.  The analyzer then *discovers* the table from the
sources; nothing in the analyzer is keyed to the generator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.converter.analyzer import (
    OTHER_METHODS,
    STRING_REASSIGNMENT,
    VECTOR_MULTI_RESIZE,
)


@dataclass(frozen=True)
class ClassUsage:
    """Source-pattern ingredients for one studied message class."""

    short_name: str
    full_name: str
    string_field: str
    vector_field: str
    element_expr: str
    resize_expr: str


USAGES: dict[str, ClassUsage] = {
    "sensor_msgs/Image": ClassUsage(
        "Image", "sensor_msgs/Image", "encoding", "data", "255",
        "width * height * 3",
    ),
    "sensor_msgs/CompressedImage": ClassUsage(
        "CompressedImage", "sensor_msgs/CompressedImage", "format", "data",
        "0", "payload_len",
    ),
    "sensor_msgs/PointCloud": ClassUsage(
        "PointCloud", "sensor_msgs/PointCloud", "header.frame_id", "points",
        "Point32()", "total_valid",
    ),
    "sensor_msgs/PointCloud2": ClassUsage(
        "PointCloud2", "sensor_msgs/PointCloud2", "header.frame_id", "data",
        "0", "row_step * height",
    ),
    "sensor_msgs/LaserScan": ClassUsage(
        "LaserScan", "sensor_msgs/LaserScan", "header.frame_id", "ranges",
        "0.0", "num_readings",
    ),
}

#: The Table 1 file mix: per class, a list of violation-sets, one per
#: corpus file (empty set = applicable).  Column sums reproduce the paper:
#: Image 49/40/8/6/0, CompressedImage 7/2/5/5/0, PointCloud 14/0/13/12/2,
#: PointCloud2 15/1/7/7/8, LaserScan 18/5/13/12/1.
TABLE1_MIX: dict[str, list[frozenset]] = {
    "sensor_msgs/Image": (
        [frozenset()] * 40
        + [frozenset({STRING_REASSIGNMENT, VECTOR_MULTI_RESIZE})] * 5
        + [frozenset({STRING_REASSIGNMENT})] * 3
        + [frozenset({VECTOR_MULTI_RESIZE})] * 1
    ),
    "sensor_msgs/CompressedImage": (
        [frozenset()] * 2
        + [frozenset({STRING_REASSIGNMENT, VECTOR_MULTI_RESIZE})] * 5
    ),
    "sensor_msgs/PointCloud": (
        [frozenset({STRING_REASSIGNMENT, VECTOR_MULTI_RESIZE})] * 11
        + [frozenset({VECTOR_MULTI_RESIZE})] * 1
        + [frozenset({STRING_REASSIGNMENT, OTHER_METHODS})] * 2
    ),
    "sensor_msgs/PointCloud2": (
        [frozenset()] * 1
        + [frozenset({STRING_REASSIGNMENT, VECTOR_MULTI_RESIZE})] * 6
        + [frozenset({STRING_REASSIGNMENT, VECTOR_MULTI_RESIZE,
                      OTHER_METHODS})] * 1
        + [frozenset({OTHER_METHODS})] * 7
    ),
    "sensor_msgs/LaserScan": (
        [frozenset()] * 5
        + [frozenset({STRING_REASSIGNMENT, VECTOR_MULTI_RESIZE})] * 12
        + [frozenset({STRING_REASSIGNMENT, OTHER_METHODS})] * 1
    ),
}


_HEADER = '''"""Generated ROS-style package source (applicability corpus)."""
from repro.msg.library import {imports}


'''


def _clean_function(usage: ClassUsage, index: int) -> str:
    return f'''def publish_{usage.short_name.lower()}_{index}(pub, width, height):
    """One-shot construction: satisfies all three assumptions."""
    msg = {usage.short_name}()
    msg.{usage.string_field} = "sensor_frame_{index}"
    msg.{usage.vector_field}.resize({usage.resize_expr})
    for i in range(len(msg.{usage.vector_field})):
        msg.{usage.vector_field}[i] = {usage.element_expr}
    pub.publish(msg)
'''


def _string_reassign_function(usage: ClassUsage, index: int) -> str:
    if usage.full_name == "sensor_msgs/Image":
        # The paper's Fig. 19 pattern: cv_bridge conversion followed by a
        # frame_id fix-up on the already-constructed message.
        return f'''def rotate_image_{index}(cv_image, msg, transform, pub):
    """image_rotate-style republisher (Fig. 19 pattern)."""
    out_img = cv_bridge(msg.header, msg.encoding, cv_image).toImageMsg()
    out_img.header.frame_id = transform.child_frame_id
    pub.publish(out_img)
'''
    return f'''def relabel_{usage.short_name.lower()}_{index}(source, pub, width, height):
    """Assigns the {usage.string_field} field twice."""
    msg = {usage.short_name}()
    msg.{usage.string_field} = "raw"
    msg.{usage.vector_field}.resize({usage.resize_expr})
    msg.{usage.string_field} = source.frame_id
    pub.publish(msg)
'''


def _vector_multi_resize_function(usage: ClassUsage, index: int) -> str:
    # The paper's Fig. 20 pattern: the message arrives as an output
    # reference whose callers cannot be audited.
    return f'''def process_{usage.short_name.lower()}_{index}(left_rect, right_rect, out: {usage.short_name}):
    """stereo_image_proc-style output-reference fill (Fig. 20 pattern)."""
    height = left_rect.rows
    width = left_rect.cols
    out.{usage.vector_field}.resize({usage.resize_expr})
'''


def _other_methods_function(usage: ClassUsage, index: int) -> str:
    # The paper's Fig. 21 pattern: push_back over a validity filter.
    return f'''def pack_{usage.short_name.lower()}_{index}(dense_points, pub):
    """point_cloud-style packing loop (Fig. 21 pattern)."""
    msg = {usage.short_name}()
    msg.{usage.vector_field}.resize(0)
    for point in dense_points:
        if point.is_valid:
            msg.{usage.vector_field}.append({usage.element_expr})
    pub.publish(msg)
'''


_PATTERN_BUILDERS = {
    STRING_REASSIGNMENT: _string_reassign_function,
    VECTOR_MULTI_RESIZE: _vector_multi_resize_function,
    OTHER_METHODS: _other_methods_function,
}

_FILLER = '''"""Generated utility module (no studied message classes)."""


def clamp(value, low, high):
    return max(low, min(high, value))


def moving_average(samples, window):
    if window <= 0:
        raise ValueError("window must be positive")
    return [
        sum(samples[max(0, i - window + 1) : i + 1])
        / len(samples[max(0, i - window + 1) : i + 1])
        for i in range(len(samples))
    ]
'''


def generate_corpus(filler_files: int = 12) -> dict[str, str]:
    """Generate the corpus: ``{relative_path: source}``.

    Deterministic: the same mix of files every run, so Table 1 is exactly
    reproducible.
    """
    files: dict[str, str] = {}
    for full_name, mix in TABLE1_MIX.items():
        usage = USAGES[full_name]
        imports = usage.short_name
        if usage.element_expr == "Point32()":
            imports += ", Point32"
        for index, violation_set in enumerate(mix):
            parts = [_HEADER.format(imports=imports)]
            if not violation_set:
                parts.append(_clean_function(usage, index))
            else:
                # Every violating file also contains ordinary clean usage,
                # as real package files do.
                parts.append(_clean_function(usage, index))
                for kind in sorted(violation_set):
                    parts.append("\n" + _PATTERN_BUILDERS[kind](usage, index))
            package = usage.short_name.lower()
            files[f"{package}_pkg/src/node_{index:03d}.py"] = "".join(parts)
    for index in range(filler_files):
        files[f"common_utils/util_{index:02d}.py"] = _FILLER
    return files


def write_corpus(directory, filler_files: int = 12) -> list[str]:
    """Materialize the corpus under ``directory``; returns written paths."""
    import os

    written = []
    for relative, source in generate_corpus(filler_files).items():
        path = os.path.join(directory, relative)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        written.append(path)
    return written
