"""Aggregation of analyzer results into the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Optional

from repro.converter.analyzer import (
    OTHER_METHODS,
    STRING_REASSIGNMENT,
    VECTOR_MULTI_RESIZE,
    FileReport,
    analyze_source,
)

#: The classes the paper studies, in Table 1 row order.
STUDIED_CLASSES = (
    "sensor_msgs/Image",
    "sensor_msgs/CompressedImage",
    "sensor_msgs/PointCloud",
    "sensor_msgs/PointCloud2",
    "sensor_msgs/LaserScan",
)


@dataclass
class ClassRow:
    """One Table 1 row."""

    message_class: str
    total: int = 0
    applicable: int = 0
    string_reassignment: int = 0
    vector_multi_resize: int = 0
    other_methods: int = 0

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        return (
            self.total,
            self.applicable,
            self.string_reassignment,
            self.vector_multi_resize,
            self.other_methods,
        )


@dataclass
class ApplicabilityReport:
    """The full study result."""

    rows: dict[str, ClassRow] = dataclass_field(default_factory=dict)
    files_scanned: int = 0
    file_reports: list[FileReport] = dataclass_field(default_factory=list)

    def row(self, message_class: str) -> ClassRow:
        return self.rows[message_class]

    def render(self) -> str:
        """Table 1, as text."""
        header = (
            f"{'Message Class':<30} {'Total':>6} {'Applicable':>11} "
            f"{'String Reassign':>16} {'Vector Multi-Resize':>20} "
            f"{'Other Methods':>14}"
        )
        lines = [header, "-" * len(header)]
        for name in STUDIED_CLASSES:
            row = self.rows.get(name, ClassRow(name))
            lines.append(
                f"{name:<30} {row.total:>6} {row.applicable:>11} "
                f"{row.string_reassignment:>16} {row.vector_multi_resize:>20} "
                f"{row.other_methods:>14}"
            )
        lines.append(f"(files scanned: {self.files_scanned})")
        return "\n".join(lines)


def aggregate(file_reports: Iterable[FileReport]) -> ApplicabilityReport:
    """Fold per-file analyzer reports into Table 1 rows.

    As in the paper, counts are per *file*: a file using a class counts in
    "Total"; it counts in a violation column once if it violates that
    assumption anywhere; it is "Applicable" if it violates none.
    """
    report = ApplicabilityReport(
        rows={name: ClassRow(name) for name in STUDIED_CLASSES}
    )
    for file_report in file_reports:
        report.files_scanned += 1
        report.file_reports.append(file_report)
        for class_name in STUDIED_CLASSES:
            if class_name not in file_report.classes_used:
                continue
            row = report.rows[class_name]
            row.total += 1
            kinds = {v.kind for v in file_report.violations_for(class_name)}
            if not kinds:
                row.applicable += 1
            if STRING_REASSIGNMENT in kinds:
                row.string_reassignment += 1
            if VECTOR_MULTI_RESIZE in kinds:
                row.vector_multi_resize += 1
            if OTHER_METHODS in kinds:
                row.other_methods += 1
    return report


def run_applicability_study(
    sources: Optional[dict[str, str]] = None,
) -> ApplicabilityReport:
    """Run the full Table 1 study.

    With no arguments, analyzes the generated corpus of
    :mod:`repro.converter.corpus`; pass ``{path: source}`` to analyze
    other code.
    """
    if sources is None:
        from repro.converter.corpus import generate_corpus

        sources = generate_corpus()
    reports = [
        analyze_source(source, path=path) for path, source in sorted(sources.items())
    ]
    return aggregate(reports)
