"""Source conversion: the rewriting half of the ROS-SF Converter.

Two services, mirroring Section 4.3.2:

- :func:`rewrite_imports_to_sfm` performs the Python analogue of the
  heap-allocation rewrite: it swaps imports of plain library message
  classes for their SFM-generated equivalents, so every construction site
  in the file allocates a serialization-free message -- no other line of
  the program changes, which is the transparency claim.
- :func:`conversion_guidance` renders the paper's "modification guidance"
  for each violation the analyzer found, including the Fig. 19/21-style
  rewritten snippets.
"""

from __future__ import annotations

import ast

from repro.converter.analyzer import (
    OTHER_METHODS,
    STRING_REASSIGNMENT,
    VECTOR_MULTI_RESIZE,
    FileReport,
    Violation,
)

_LIBRARY_MODULES = ("repro.msg.library", "repro.msg")


def rewrite_imports_to_sfm(source: str) -> str:
    """Rewrite ``from repro.msg.library import X, Y`` to obtain the SFM
    classes instead.

    >>> print(rewrite_imports_to_sfm(
    ...     "from repro.msg.library import Image\\n"
    ... ).strip())
    from repro.rossf import sfm_classes_for
    Image, = sfm_classes_for("sensor_msgs/Image")
    """
    from repro.msg.library import DEFINITIONS

    short_to_full = {
        name.rsplit("/", 1)[-1]: name for name in DEFINITIONS
    }
    tree = ast.parse(source)
    lines = source.splitlines(keepends=True)
    replacements: list[tuple[int, int, str]] = []  # (start, end, text)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.module not in _LIBRARY_MODULES:
            continue
        imported = [alias.name for alias in node.names]
        if node.module == "repro.msg" and imported != ["library"]:
            continue
        if node.module == "repro.msg":
            # ``from repro.msg import library`` -> expose an SFM mirror.
            text = (
                "from repro.rossf import framework as _rossf\n"
                "library = _rossf.messages()\n"
            )
        else:
            unknown = [name for name in imported if name not in short_to_full]
            if unknown:
                continue  # not message classes; leave untouched
            targets = ", ".join(imported)
            full_names = ", ".join(
                f'"{short_to_full[name]}"' for name in imported
            )
            trailing_comma = "," if len(imported) == 1 else ""
            text = (
                "from repro.rossf import sfm_classes_for\n"
                f"{targets}{trailing_comma} = sfm_classes_for({full_names})\n"
            )
        replacements.append((node.lineno - 1, node.end_lineno, text))
    for start, end, text in sorted(replacements, reverse=True):
        lines[start:end] = [text]
    return "".join(lines)


_GUIDANCE = {
    STRING_REASSIGNMENT: (
        "One-Shot String Assignment violated: compute the final string "
        "before constructing the message and assign it exactly once.  "
        "Example rewrite (paper Fig. 19): build a temporary header with "
        "the final frame_id and pass it to the conversion, instead of "
        "patching header.frame_id afterwards."
    ),
    VECTOR_MULTI_RESIZE: (
        "One-Shot Vector Resizing violated: count the final number of "
        "elements first, resize exactly once, then fill by index.  If the "
        "message is an output parameter, document (or assert) that "
        "callers pass an unsized field."
    ),
    OTHER_METHODS: (
        "No Modifier violated: sfm vectors do not implement size-"
        "modifying methods.  Example rewrite (paper Fig. 21): first count "
        "the valid elements, resize once to that count, then assign "
        "elements by index -- which also avoids repeated reallocation in "
        "the original ROS."
    ),
}


def conversion_guidance(report: FileReport) -> str:
    """Human-readable modification guidance for a file's violations."""
    if not report.violations:
        return (
            f"{report.path}: satisfies all three ROS-SF assumptions; "
            "the import swap is sufficient."
        )
    lines = [f"{report.path}: {len(report.violations)} violation(s)"]
    for violation in report.violations:
        lines.append(
            f"  line {violation.line}: [{violation.kind}] "
            f"{violation.field_path} ({violation.message_class}) -- "
            f"{violation.detail}"
        )
        lines.append(f"    guidance: {_GUIDANCE[violation.kind]}")
    return "\n".join(lines)


def guidance_for_violation(violation: Violation) -> str:
    """Guidance text for a single violation."""
    return _GUIDANCE[violation.kind]
