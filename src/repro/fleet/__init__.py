"""``repro.fleet``: the fleet-scale traffic harness.

Simulates N robots publishing mixed SLAM + telemetry workloads through
the WebSocket front door while M dashboard clients watch them, and
measures what the gateway sustains: delivered msg/s, delivery latency
percentiles, drop and eviction counts.  See
:mod:`repro.fleet.harness`.
"""

from repro.fleet.harness import (
    FleetConfig,
    FleetResult,
    SlowDashboard,
    run_fleet,
)

__all__ = ["FleetConfig", "FleetResult", "SlowDashboard", "run_fleet"]
