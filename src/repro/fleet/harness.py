"""Robots x dashboards over the WebSocket front door.

The first "production traffic" story for the repo: a single
:class:`~repro.bridge.server.BridgeServer` with its ws frontend serving

- **N robots**, each a :class:`~repro.bridge.ws.WsBridgeClient`
  publishing a mixed SLAM + telemetry workload with ``publish_raw``
  (serialization-free ingest): ``geometry_msgs/PoseStamped@sfm``
  telemetry at ``pose_hz`` and ``sensor_msgs/Image@sfm`` camera frames
  (synthesized by :mod:`repro.slam.dataset`) at ``image_hz``;
- **M dashboards**, each a ``WsBridgeClient`` holding cbin
  selective-field subscriptions on every robot's pose topic (the
  bandwidth-constrained last hop of Selective Field Transmission) plus
  one robot's image topic (height/width only -- metadata watching, not
  frame streaming);
- optional **slow dashboards**: raw ws sockets that subscribe to the
  bulk image topic and then never read, exercising the drop/evict
  backpressure policy while the healthy dashboards keep flowing;
- an optional :class:`~repro.chaos.plan.FaultPlan`, installed for the
  run so severed connections and corrupted frames hit the same seams
  production failures would.

Latency is measured end to end -- robot stamps ``time.monotonic()``
into ``pose.position.z`` before ``publish_raw``; the dashboard callback
reads it straight out of the cbin-selected field -- so the number spans
ws ingest, graph fan-out, selective extraction and ws delivery.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.bridge.server import BridgeServer
from repro.bridge.ws import WsBridgeClient


def pose_topic(robot: int) -> str:
    return f"/fleet/robot{robot}/pose"


def image_topic(robot: int) -> str:
    return f"/fleet/robot{robot}/image"


POSE_TYPE = "geometry_msgs/PoseStamped@sfm"
IMAGE_TYPE = "sensor_msgs/Image@sfm"
POSE_FIELDS = ["pose.position.x", "pose.position.y", "pose.position.z"]


@dataclass
class FleetConfig:
    """One fleet scenario."""

    robots: int = 4
    dashboards: int = 8
    duration: float = 5.0
    #: Telemetry rate per robot (PoseStamped@sfm, stamped for latency).
    pose_hz: float = 20.0
    #: Camera frame rate per robot (0 disables the SLAM workload).
    image_hz: float = 2.0
    image_width: int = 160
    image_height: int = 120
    #: Settle time after wiring before measurement starts (subscriptions
    #: connect, first deliveries flow).
    warmup: float = 1.0
    #: Raw ws clients that subscribe to bulk imagery and never read.
    slow_dashboards: int = 0
    #: Front-door policy, passed straight to ``enable_ws``.
    auth_token: Optional[str] = None
    rate_limits: Optional[dict] = None
    queue_length: int = 64
    high_watermark: int = 1024
    evict_strikes: int = 64
    #: A ``repro.chaos.FaultPlan``, installed for the measurement window.
    chaos_plan: Optional[object] = None


@dataclass
class FleetResult:
    """What the run sustained (the saturation-curve sample)."""

    config: dict
    duration: float
    poses_published: int
    images_published: int
    pose_deliveries: int
    image_deliveries: int
    expected_pose_deliveries: int
    delivery_ratio: float
    delivered_per_s: float
    latency_ms: dict
    evictions: int
    dropped: int
    ws: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "config": self.config,
            "duration_s": self.duration,
            "poses_published": self.poses_published,
            "images_published": self.images_published,
            "pose_deliveries": self.pose_deliveries,
            "image_deliveries": self.image_deliveries,
            "expected_pose_deliveries": self.expected_pose_deliveries,
            "delivery_ratio": self.delivery_ratio,
            "delivered_per_s": self.delivered_per_s,
            "latency_ms": self.latency_ms,
            "evictions": self.evictions,
            "dropped": self.dropped,
            "ws": self.ws,
        }


class _Robot:
    """One publisher client: telemetry poses + synthesized camera frames."""

    def __init__(self, index: int, host: str, port: int,
                 config: FleetConfig, frames: list,
                 token: Optional[str]) -> None:
        from repro.sfm.generator import generate_sfm_class

        self.index = index
        self.config = config
        self.frames = frames
        self.client = WsBridgeClient(host, port, token=token)
        self.client.advertise(pose_topic(index), POSE_TYPE)
        if config.image_hz > 0 and frames:
            self.client.advertise(image_topic(index), IMAGE_TYPE)
        self.poses_published = 0
        self.images_published = 0
        self._pose = generate_sfm_class("geometry_msgs/PoseStamped")()
        self._pose.pose.position.x = float(index)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"fleet-robot{index}"
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        pose_period = 1.0 / self.config.pose_hz if self.config.pose_hz else 0
        image_period = (
            1.0 / self.config.image_hz if self.config.image_hz else 0
        )
        next_pose = time.monotonic()
        next_image = next_pose + (image_period or 0) * 0.5
        frame_index = self.index
        while not self._stop.is_set():
            now = time.monotonic()
            try:
                if pose_period and now >= next_pose:
                    self._publish_pose(now)
                    next_pose += pose_period
                    if next_pose < now:  # fell behind; re-anchor
                        next_pose = now + pose_period
                if image_period and self.frames and now >= next_image:
                    self.client.publish_raw(
                        image_topic(self.index),
                        self.frames[frame_index % len(self.frames)],
                    )
                    self.images_published += 1
                    frame_index += 1
                    next_image += image_period
                    if next_image < now:
                        next_image = now + image_period
            except Exception:
                return  # severed by chaos or shutdown: the robot dies
            wake = min(
                next_pose if pose_period else now + 0.05,
                next_image if image_period and self.frames else now + 0.05,
            )
            delay = wake - time.monotonic()
            if delay > 0:
                self._stop.wait(delay)

    def _publish_pose(self, now: float) -> None:
        self._pose.pose.position.y = float(self.poses_published)
        self._pose.pose.position.z = now
        self.client.publish_raw(
            pose_topic(self.index), bytes(self._pose.to_wire())
        )
        self.poses_published += 1

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        self.client.close()


class _Dashboard:
    """One consumer client: pose telemetry from every robot (cbin
    selective fields, latency-stamped) + one robot's image metadata."""

    def __init__(self, index: int, host: str, port: int,
                 config: FleetConfig, token: Optional[str]) -> None:
        self.index = index
        self.client = WsBridgeClient(host, port, token=token)
        self.pose_deliveries = 0
        self.image_deliveries = 0
        self.latencies: list[float] = []
        self._lock = threading.Lock()
        for robot in range(config.robots):
            self.client.subscribe(
                pose_topic(robot), POSE_TYPE, self._on_pose,
                codec="cbin", fields=POSE_FIELDS,
            )
        if config.image_hz > 0:
            self.client.subscribe(
                image_topic(index % config.robots), IMAGE_TYPE,
                self._on_image, codec="cbin", fields=["height", "width"],
            )

    def _on_pose(self, msg, meta) -> None:
        latency = time.monotonic() - msg["pose.position.z"]
        with self._lock:
            self.pose_deliveries += 1
            self.latencies.append(latency)

    def _on_image(self, msg, meta) -> None:
        with self._lock:
            self.image_deliveries += 1

    def snapshot(self) -> tuple[int, int, list[float]]:
        with self._lock:
            return (
                self.pose_deliveries,
                self.image_deliveries,
                list(self.latencies),
            )

    def reset(self) -> None:
        with self._lock:
            self.pose_deliveries = 0
            self.image_deliveries = 0
            self.latencies.clear()

    def close(self) -> None:
        self.client.close()


class SlowDashboard:
    """A ws client that subscribes to bulk imagery and never reads --
    the stalled browser the eviction policy exists for."""

    def __init__(self, host: str, port: int, robot: int,
                 token: Optional[str]) -> None:
        import base64
        import os
        import socket

        from repro.bridge.ws import OP_TEXT, encode_frame

        self.sock = socket.create_connection((host, port), timeout=10.0)
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        auth = f"Authorization: Bearer {token}\r\n" if token else ""
        self.sock.sendall(
            (
                f"GET /ws HTTP/1.1\r\nHost: {host}:{port}\r\n"
                "Upgrade: websocket\r\nConnection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                f"Sec-WebSocket-Version: 13\r\n{auth}\r\n"
            ).encode("latin-1")
        )
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("slow dashboard handshake failed")
            response += chunk
        if b" 101 " not in response.split(b"\r\n", 1)[0]:
            raise ConnectionError(f"upgrade refused: {response[:80]!r}")
        subscribe = (
            '{"op":"subscribe","topic":"%s","type":"%s","codec":"raw"}'
            % (image_topic(robot), IMAGE_TYPE)
        ).encode("utf-8")
        self.sock.sendall(encode_frame(OP_TEXT, subscribe, mask=True))
        # ... and from here on: silence.  No reads, ever.

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _image_frames(config: FleetConfig, count: int = 4) -> list[bytes]:
    """Pre-encode a few Image@sfm wire buffers from the synthetic SLAM
    dataset (shared by every robot; encoding happens once, publish_raw
    forwards the bytes untouched)."""
    if config.image_hz <= 0:
        return []
    from repro.sfm.generator import generate_sfm_class
    from repro.slam.dataset import SyntheticRgbdDataset

    dataset = SyntheticRgbdDataset(
        width=config.image_width, height=config.image_height,
        length=count,
    )
    image_class = generate_sfm_class("sensor_msgs/Image")
    frames = []
    for frame in dataset:
        msg = image_class()
        msg.height = config.image_height
        msg.width = config.image_width
        msg.encoding = "rgb8"
        msg.step = config.image_width * 3
        msg.data = frame.rgb.tobytes()
        frames.append(bytes(msg.to_wire()))
    return frames


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_fleet(config: FleetConfig, master_uri: Optional[str] = None,
              log=None) -> FleetResult:
    """Run one fleet scenario and return its measurements.

    Owns the whole stack when ``master_uri`` is None (graph master,
    bridge, frontend); otherwise attaches a bridge to the given graph.
    """
    from repro.ros.graph import RosGraph

    say = log or (lambda *_: None)
    graph_cm = RosGraph() if master_uri is None else None
    graph = graph_cm.__enter__() if graph_cm is not None else None
    uri = master_uri or graph.master_uri
    server = BridgeServer(uri, node_name="fleet_bridge")
    robots: list[_Robot] = []
    dashboards: list[_Dashboard] = []
    slow: list[SlowDashboard] = []
    plan = config.chaos_plan
    try:
        frontend = server.enable_ws(
            auth_tokens=[config.auth_token] if config.auth_token else None,
            rate_limits=config.rate_limits,
            queue_length=config.queue_length,
            high_watermark=config.high_watermark,
            evict_strikes=config.evict_strikes,
        )
        frames = _image_frames(config)
        say(f"front door up at {frontend.url}; wiring {config.robots} "
            f"robot(s) x {config.dashboards} dashboard(s)")
        for index in range(config.robots):
            robots.append(_Robot(
                index, server.host, frontend.port, config, frames,
                config.auth_token,
            ))
        for index in range(config.dashboards):
            dashboards.append(_Dashboard(
                index, server.host, frontend.port, config,
                config.auth_token,
            ))
        for index in range(config.slow_dashboards):
            slow.append(SlowDashboard(
                server.host, frontend.port, index % config.robots,
                config.auth_token,
            ))
        for robot in robots:
            robot.start()
        time.sleep(config.warmup)
        # Measurement window: counters restart so warmup connects and
        # first-delivery stragglers don't skew the ratios.
        for dashboard in dashboards:
            dashboard.reset()
        pose_mark = sum(robot.poses_published for robot in robots)
        image_mark = sum(robot.images_published for robot in robots)
        if plan is not None:
            plan.install()
        started = time.monotonic()
        time.sleep(config.duration)
        elapsed = time.monotonic() - started
        if plan is not None:
            plan.uninstall()

        poses = sum(robot.poses_published for robot in robots) - pose_mark
        images = sum(robot.images_published for robot in robots) - image_mark
        pose_deliveries = 0
        image_deliveries = 0
        latencies: list[float] = []
        for dashboard in dashboards:
            delivered, image_count, sample = dashboard.snapshot()
            pose_deliveries += delivered
            image_deliveries += image_count
            latencies.extend(sample)
        snap = server.stats_snapshot()
        dropped = sum(
            sub["dropped"] for sub in snap["subscriptions"]
        ) + sum(sess["shed"] for sess in snap["sessions"])
        expected = poses * config.dashboards
        result = FleetResult(
            config={
                "robots": config.robots,
                "dashboards": config.dashboards,
                "slow_dashboards": config.slow_dashboards,
                "pose_hz": config.pose_hz,
                "image_hz": config.image_hz,
                "image_size": [config.image_width, config.image_height],
                "queue_length": config.queue_length,
                "high_watermark": config.high_watermark,
                "evict_strikes": config.evict_strikes,
                "chaos": plan is not None,
            },
            duration=elapsed,
            poses_published=poses,
            images_published=images,
            pose_deliveries=pose_deliveries,
            image_deliveries=image_deliveries,
            expected_pose_deliveries=expected,
            delivery_ratio=(pose_deliveries / expected) if expected else 0.0,
            delivered_per_s=(
                (pose_deliveries + image_deliveries) / elapsed
                if elapsed > 0 else 0.0
            ),
            latency_ms={
                "count": len(latencies),
                "p50": _percentile(latencies, 0.50) * 1000.0,
                "p99": _percentile(latencies, 0.99) * 1000.0,
            },
            evictions=server.evictions,
            dropped=dropped,
            ws=frontend.stats(),
        )
        say(f"sustained {result.delivered_per_s:,.0f} deliveries/s, "
            f"p50 {result.latency_ms['p50']:.1f}ms "
            f"p99 {result.latency_ms['p99']:.1f}ms, "
            f"ratio {result.delivery_ratio:.3f}, "
            f"{result.evictions} eviction(s)")
        return result
    finally:
        if plan is not None:
            plan.uninstall()
        for robot in robots:
            robot.stop()
        for dashboard in dashboards:
            dashboard.close()
        for client in slow:
            client.close()
        server.shutdown()
        if graph_cm is not None:
            graph_cm.__exit__(None, None, None)
