"""repro.graphplane: a sharded, replicated graph plane for the mini-ROS.

The seed's single master is a single point of failure and a fleet-wide
serialization point.  This package splits it three ways:

* **Sharding** (:mod:`~repro.graphplane.shardmap`,
  :class:`~repro.graphplane.proxy.ShardedMasterProxy`): the registry is
  partitioned across N master shards by a stable namespace hash; a
  routing proxy with the plain MasterProxy surface keeps node code
  unchanged.
* **Replication** (:mod:`~repro.graphplane.log`,
  :mod:`~repro.graphplane.shard`): each shard leader journals mutations
  to an append-only log streamed synchronously to a follower; on leader
  death the follower promotes and serves the existing graph state under
  the leader's epoch -- no amnesiac-restart replay storm.
* **Routing** (:mod:`~repro.graphplane.routed`): a per-host RouteD
  daemon multiplexes all inter-host TCPROS links between a host pair
  over one framed connection, one channel id per topic link.

A node opts in by using a *graph-plane spec* as its master URI --
``"http://h:1/|http://h:2/,http://h:3/"`` -- which
:func:`~repro.graphplane.proxy.make_master_proxy` turns into the right
proxy; a plain URI still yields the plain, zero-overhead MasterProxy.
"""

from repro.graphplane.launch import GraphPlane
from repro.graphplane.log import LogRecord, RegistrationLog, apply_record
from repro.graphplane.proxy import (
    FailoverMasterProxy,
    ShardedMasterProxy,
    make_master_proxy,
)
from repro.graphplane.routed import RouteD
from repro.graphplane.shard import ShardLeader, ShardReplica
from repro.graphplane.shardmap import (
    format_spec,
    is_plain_uri,
    parse_spec,
    partition_key,
    shard_for,
    stable_hash,
)

__all__ = [
    "FailoverMasterProxy",
    "GraphPlane",
    "LogRecord",
    "RegistrationLog",
    "RouteD",
    "ShardLeader",
    "ShardReplica",
    "ShardedMasterProxy",
    "apply_record",
    "format_spec",
    "is_plain_uri",
    "make_master_proxy",
    "parse_spec",
    "partition_key",
    "shard_for",
    "stable_hash",
]
