"""Convenience launcher: a whole graph plane in one object.

``GraphPlane(shards=2, replicas=True)`` starts N shard leaders, one
replica per leader (wired for synchronous replication and auto-promote),
and exposes ``.spec`` -- the string a node passes as its master URI.
Used by tests, benchmarks and ``tools graph launch``.
"""

from __future__ import annotations

from repro.graphplane import shardmap
from repro.graphplane.shard import ShardLeader, ShardReplica


class GraphPlane:
    """N replicated master shards, started together."""

    def __init__(
        self,
        shards: int = 2,
        replicas: bool = True,
        host: str = "127.0.0.1",
        probe_interval: float = 0.25,
        probe_failures: int = 3,
        auto_promote: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("a graph plane needs at least one shard")
        self.leaders: list[ShardLeader] = []
        self.replicas: list[ShardReplica | None] = []
        for index in range(shards):
            leader = ShardLeader(shard_index=index, host=host)
            self.leaders.append(leader)
            if replicas:
                replica = ShardReplica(
                    leader_uri=leader.uri,
                    shard_index=index,
                    host=host,
                    probe_interval=probe_interval,
                    probe_failures=probe_failures,
                    auto_promote=auto_promote,
                )
                leader.attach_replica(replica.uri)
                self.replicas.append(replica)
            else:
                self.replicas.append(None)
        self.spec = shardmap.format_spec([
            [leader.uri] + ([replica.uri] if replica else [])
            for leader, replica in zip(self.leaders, self.replicas)
        ])

    @property
    def shard_count(self) -> int:
        return len(self.leaders)

    def shard_for(self, name: str) -> int:
        return shardmap.shard_for(name, self.shard_count)

    def shutdown(self) -> None:
        for replica in self.replicas:
            if replica is not None:
                replica.shutdown()
        for leader in self.leaders:
            leader.shutdown()

    def __enter__(self) -> "GraphPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
