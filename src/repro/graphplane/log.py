"""The append-only registration log behind shard replication.

Every mutating master operation a shard leader applies is recorded as a
:class:`LogRecord` -- ``(epoch, seq, method, args)`` -- and streamed to
the shard's follower, which replays the records against its own
registry.  The pair ``(epoch, seq)`` totally orders a shard's history:
``epoch`` is the registry instance identity (it changes only when a
leader restarts amnesiac), ``seq`` is a dense counter within the epoch.
A follower that has applied ``(e, n)`` holds exactly the state of the
leader after its first ``n`` mutations of epoch ``e`` -- which is what
makes promotion safe: the promoted follower *is* the graph, not a blank
registry waiting for the PR-4 replay path to repopulate it.

Records serialize to plain lists so they travel over XML-RPC unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class LogRecord:
    """One replicated registry mutation."""

    epoch: str
    seq: int
    method: str
    args: tuple

    def to_wire(self) -> list:
        return [self.epoch, self.seq, self.method, list(self.args)]

    @classmethod
    def from_wire(cls, doc: list) -> "LogRecord":
        epoch, seq, method, args = doc
        return cls(epoch=epoch, seq=int(seq), method=method,
                   args=tuple(args))


class RegistrationLog:
    """A shard leader's mutation history for one registry epoch.

    Append-only and fully retained: a master registry is small (names
    and URIs, not data), so the log of a shard's lifetime is at worst a
    few thousand records and a follower that fell arbitrarily far behind
    can always catch up from ``since()`` without a snapshot transfer.
    """

    def __init__(self, epoch: str) -> None:
        self.epoch = epoch
        self._lock = threading.Lock()
        self._records: list[LogRecord] = []

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._records[-1].seq if self._records else 0

    def append(self, method: str, args: tuple) -> LogRecord:
        with self._lock:
            seq = (self._records[-1].seq + 1) if self._records else 1
            record = LogRecord(self.epoch, seq, method, args)
            self._records.append(record)
            return record

    def since(self, seq: int) -> list[LogRecord]:
        """Records with ``record.seq > seq`` (the follower's catch-up
        read; ``seq`` is dense so a slice by offset is exact)."""
        with self._lock:
            if seq >= len(self._records):
                return []
            return self._records[seq:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: Registry methods that mutate state and therefore replicate.  The
#: value is the positional arity the replica applies with (XML-RPC hands
#: back lists; the replay call site unpacks exactly these).
REPLICATED_METHODS = {
    "register_publisher",
    "unregister_publisher",
    "register_subscriber",
    "unregister_subscriber",
    "register_service",
    "unregister_service",
    "set_param",
    "delete_param",
}


def apply_record(registry, record: LogRecord) -> None:
    """Replay one log record against a plain MasterRegistry."""
    if record.method not in REPLICATED_METHODS:
        raise ValueError(f"unreplicated method {record.method!r} in log")
    getattr(registry, record.method)(*record.args)
