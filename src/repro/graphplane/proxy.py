"""Client-side routing for the graph plane.

Three proxies, one contract: each exposes exactly the
:class:`repro.ros.master.MasterProxy` method surface, so node code (and
the PR-4 watchdog) cannot tell whether it is talking to one master, a
replicated pair, or a sharded fleet.

* :class:`FailoverMasterProxy` -- one shard, several candidate URIs.
  On a connection error or a ``standby`` refusal it advances to the next
  candidate and keeps cycling (with a short sleep) until the retry
  window closes, which covers the gap between a leader dying and its
  replica promoting: a registration issued mid-failover lands on the
  promoted replica instead of surfacing an error to the node.
* :class:`ShardedMasterProxy` -- routes each call to the shard owning
  the name (:func:`repro.graphplane.shardmap.shard_for`) and merges the
  fleet-wide reads (``getSystemState`` et al) across shards.
* :func:`make_master_proxy` -- picks the cheapest proxy a spec needs;
  a plain URI still gets the plain :class:`MasterProxy`.
"""

from __future__ import annotations

import socket
import threading
import time
import xmlrpc.client

from repro.graphplane import shardmap
from repro.obs import instrument as obs_instrument
from repro.ros.master import FAILURE, SUCCESS, MasterError, MasterProxy
from repro.ros.retry import DEFAULT_FAILOVER_RETRY, RetryPolicy

#: Errors that mean "this candidate, right now" rather than "this call"
#: -- worth trying the next candidate.  A Fault is a server-side bug and
#: deliberately not here; retrying would only mask it.
_RETRYABLE = (OSError, socket.timeout, xmlrpc.client.ProtocolError)


class _Standby(Exception):
    """The candidate answered, but as an unpromoted replica."""


class FailoverMasterProxy:
    """A MasterProxy over an ordered list of candidate URIs.

    Candidates are tried in order; the first that answers (and is not in
    standby) wins and stays preferred until it fails.  All candidates of
    one shard hold the same epoch after a failover (the replica adopts
    the leader's), so flipping between them is invisible to epoch
    watchdogs.
    """

    def __init__(
        self,
        candidate_uris: list[str],
        timeout: float = 1.0,
        retry: RetryPolicy = DEFAULT_FAILOVER_RETRY,
    ) -> None:
        if not candidate_uris:
            raise ValueError("FailoverMasterProxy needs at least one URI")
        self.candidate_uris = list(candidate_uris)
        self.uri = shardmap.format_spec([self.candidate_uris])
        self._timeout = timeout
        self._retry = retry
        self._lock = threading.Lock()
        self._active = 0

    def _proxy_for(self, index: int) -> xmlrpc.client.ServerProxy:
        from repro.graphplane.shard import timeout_proxy

        return timeout_proxy(self.candidate_uris[index], self._timeout)

    def _call_candidate(self, index: int, method: str, args):
        code, status, value = getattr(self._proxy_for(index), method)(*args)
        if code == FAILURE and status == "standby":
            raise _Standby(self.candidate_uris[index])
        if code != SUCCESS:
            raise MasterError(f"{method}: {status}")
        return value

    def _call(self, method: str, *args):
        started = time.monotonic()
        with self._lock:
            start = self._active
        last_exc: Exception | None = None
        sweep = 0
        while True:
            for offset in range(len(self.candidate_uris)):
                index = (start + offset) % len(self.candidate_uris)
                try:
                    value = self._call_candidate(index, method, args)
                except MasterError:
                    raise
                except _RETRYABLE + (_Standby,) as exc:
                    last_exc = exc
                    if sweep > 0 or offset > 0:
                        obs_instrument.graphplane_proxy_failovers.inc()
                    continue
                with self._lock:
                    self._active = index
                return value
            sweep += 1
            if self._retry.gives_up(sweep, started):
                raise MasterError(
                    f"{method}: no candidate master reachable "
                    f"({self.uri}): {last_exc!r}"
                )
            # All candidates down or in standby: a promotion is likely
            # in flight -- back off a beat and sweep again.
            time.sleep(self._retry.delay(sweep))

    # The full MasterProxy surface, routed through _call -----------------
    def register_publisher(self, caller_id, topic, type_name, caller_api):
        return self._call(
            "registerPublisher", caller_id, topic, type_name, caller_api
        )

    def unregister_publisher(self, caller_id, topic, caller_api):
        return self._call("unregisterPublisher", caller_id, topic, caller_api)

    def register_subscriber(self, caller_id, topic, type_name, caller_api):
        return self._call(
            "registerSubscriber", caller_id, topic, type_name, caller_api
        )

    def unregister_subscriber(self, caller_id, topic, caller_api):
        return self._call("unregisterSubscriber", caller_id, topic, caller_api)

    def lookup_node(self, caller_id, node_name):
        return self._call("lookupNode", caller_id, node_name)

    def get_epoch(self, caller_id):
        return self._call("getEpoch", caller_id)

    def get_topic_types(self, caller_id):
        return self._call("getTopicTypes", caller_id)

    def get_system_state(self, caller_id):
        return self._call("getSystemState", caller_id)

    def register_service(self, caller_id, service, service_uri, caller_api):
        return self._call(
            "registerService", caller_id, service, service_uri, caller_api
        )

    def unregister_service(self, caller_id, service, service_uri):
        return self._call("unregisterService", caller_id, service, service_uri)

    def lookup_service(self, caller_id, service):
        return self._call("lookupService", caller_id, service)

    def set_param(self, caller_id, key, value):
        return self._call("setParam", caller_id, key, value)

    def get_param(self, caller_id, key):
        return self._call("getParam", caller_id, key)

    def has_param(self, caller_id, key):
        return self._call("hasParam", caller_id, key)

    def delete_param(self, caller_id, key):
        return self._call("deleteParam", caller_id, key)

    def get_param_names(self, caller_id):
        return self._call("getParamNames", caller_id)

    def get_shard_info(self, caller_id):
        return self._call("getShardInfo", caller_id)


class ShardedMasterProxy:
    """Routes master calls to the shard that owns the name.

    Name-scoped calls (register/unregister/lookup, params keyed by
    name) go to ``shard_for(name)``'s proxy.  Fleet-wide reads merge
    every shard's answer.  ``get_epoch`` joins the per-shard epochs into
    one string: any single shard losing its registry changes the
    combined epoch, so the PR-4 watchdog replays -- and the satellite-1
    idempotency work makes that replay harmless on the shards that kept
    their state.
    """

    def __init__(
        self,
        shards: list[list[str]],
        timeout: float = 1.0,
        retry: RetryPolicy = DEFAULT_FAILOVER_RETRY,
    ) -> None:
        if not shards:
            raise ValueError("ShardedMasterProxy needs at least one shard")
        self.shards = [
            FailoverMasterProxy(candidates, timeout=timeout, retry=retry)
            for candidates in shards
        ]
        self.uri = shardmap.format_spec(shards)

    def shard_of(self, name: str) -> FailoverMasterProxy:
        return self.shards[shardmap.shard_for(name, len(self.shards))]

    # -- name-routed calls -----------------------------------------------
    def register_publisher(self, caller_id, topic, type_name, caller_api):
        return self.shard_of(topic).register_publisher(
            caller_id, topic, type_name, caller_api
        )

    def unregister_publisher(self, caller_id, topic, caller_api):
        return self.shard_of(topic).unregister_publisher(
            caller_id, topic, caller_api
        )

    def register_subscriber(self, caller_id, topic, type_name, caller_api):
        return self.shard_of(topic).register_subscriber(
            caller_id, topic, type_name, caller_api
        )

    def unregister_subscriber(self, caller_id, topic, caller_api):
        return self.shard_of(topic).unregister_subscriber(
            caller_id, topic, caller_api
        )

    def register_service(self, caller_id, service, service_uri, caller_api):
        return self.shard_of(service).register_service(
            caller_id, service, service_uri, caller_api
        )

    def unregister_service(self, caller_id, service, service_uri):
        return self.shard_of(service).unregister_service(
            caller_id, service, service_uri
        )

    def lookup_service(self, caller_id, service):
        return self.shard_of(service).lookup_service(caller_id, service)

    def set_param(self, caller_id, key, value):
        return self.shard_of(key).set_param(caller_id, key, value)

    def get_param(self, caller_id, key):
        return self.shard_of(key).get_param(caller_id, key)

    def has_param(self, caller_id, key):
        return self.shard_of(key).has_param(caller_id, key)

    def delete_param(self, caller_id, key):
        return self.shard_of(key).delete_param(caller_id, key)

    # -- fleet-wide reads ------------------------------------------------
    def lookup_node(self, caller_id, node_name):
        # A node registers on every shard its names hash to; any shard
        # that has seen it can answer.  Nodes are not the partition key,
        # so ask the owning-shard guess first, then the rest.
        ordered = [self.shard_of(node_name)] + [
            shard for shard in self.shards
            if shard is not self.shard_of(node_name)
        ]
        last_exc: Exception | None = None
        for shard in ordered:
            try:
                return shard.lookup_node(caller_id, node_name)
            except MasterError as exc:
                last_exc = exc
        raise last_exc if last_exc else MasterError(
            f"lookupNode: unknown node {node_name}"
        )

    def get_epoch(self, caller_id):
        return ":".join(
            shard.get_epoch(caller_id) for shard in self.shards
        )

    def get_topic_types(self, caller_id):
        merged: dict[str, str] = {}
        for shard in self.shards:
            for topic, type_name in shard.get_topic_types(caller_id):
                merged[topic] = type_name
        return [[topic, merged[topic]] for topic in sorted(merged)]

    def get_system_state(self, caller_id):
        publishers: dict[str, list[str]] = {}
        subscribers: dict[str, list[str]] = {}
        services: dict[str, list[str]] = {}
        for shard in self.shards:
            pubs, subs, srvs = shard.get_system_state(caller_id)
            for topic, nodes in pubs:
                publishers.setdefault(topic, []).extend(nodes)
            for topic, nodes in subs:
                subscribers.setdefault(topic, []).extend(nodes)
            for service, nodes in srvs:
                services.setdefault(service, []).extend(nodes)
        return [
            [[name, sorted(set(nodes))]
             for name, nodes in sorted(publishers.items())],
            [[name, sorted(set(nodes))]
             for name, nodes in sorted(subscribers.items())],
            [[name, sorted(set(nodes))]
             for name, nodes in sorted(services.items())],
        ]

    def get_param_names(self, caller_id):
        names: set[str] = set()
        for shard in self.shards:
            names.update(shard.get_param_names(caller_id))
        return sorted(names)


def make_master_proxy(spec: str):
    """The proxy a node should use for a master spec string.

    Plain URI -> MasterProxy (zero new overhead on the common path);
    ``|`` only -> FailoverMasterProxy; any ``,`` -> ShardedMasterProxy.
    """
    if shardmap.is_plain_uri(spec):
        return MasterProxy(spec)
    shards = shardmap.parse_spec(spec)
    if len(shards) == 1:
        return FailoverMasterProxy(shards[0])
    return ShardedMasterProxy(shards)
