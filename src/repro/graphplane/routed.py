"""RouteD: one multiplexed connection per host pair.

A fleet of M publishers and N subscribers split across two hosts opens
M*N TCPROS connections between them; every link pays its own handshake,
keepalive and kernel buffers.  RouteD collapses that: each host runs one
daemon, all inter-host TCPROS dials are spliced through a single framed
connection between the two daemons, with a channel id per topic link.

Wire protocol (between two RouteD peers), after the TCP connect::

    frame   := u32le length | u8 type | u32le channel | payload
    HELLO   (chan 0)  payload = sender's daemon name  (once, first frame)
    OPEN    payload = "host:port" the remote daemon should dial locally
    ACCEPT  payload = ""          (the OPEN's dial succeeded)
    REFUSE  payload = error text  (the OPEN's dial failed)
    DATA    payload = raw bytes of the inner TCPROS stream
    CLOSE   payload = ""          (one side of the channel ended)

The inner TCPROS byte stream -- handshake, length-framed messages,
keepalive words, trace prefixes -- passes through *opaque*: retry,
link-state and tracing machinery compose with RouteD unchanged, they
simply run over a socketpair whose far end is pumped through the mux.

Channel ids are split odd/even by dial direction so the two peers can
allocate without coordination.

``install()`` hooks :func:`repro.ros.transport.tcpros.open_connection`;
only dials whose target is in this daemon's route table are spliced
(everything else -- same-host links, the master -- dials direct).
"""

from __future__ import annotations

import socket
import struct
import threading

from repro.graphplane.shard import _ThreadedXMLRPCServer
from repro.obs import instrument as obs_instrument
from repro.ros import reactor as reactor_mod
from repro.ros.transport import tcpros

_HEADER = struct.Struct("<IBI")  # length | type | channel

T_HELLO = 0
T_OPEN = 1
T_ACCEPT = 2
T_REFUSE = 3
T_DATA = 4
T_CLOSE = 5

#: DATA chunk size when pumping a channel into the mux.
CHUNK = 64 * 1024
MAX_FRAME = tcpros.MAX_FRAME


class RouteError(ConnectionError):
    """The remote daemon could not complete an OPEN."""


def _read_frame(sock) -> tuple[int, int, bytes]:
    header = tcpros.read_exact(sock, _HEADER.size)
    length, frame_type, channel = _HEADER.unpack(bytes(header))
    if length > MAX_FRAME:
        raise ConnectionError(f"mux frame too large ({length} bytes)")
    payload = bytes(tcpros.read_exact(sock, length)) if length else b""
    return frame_type, channel, payload


class MuxDecoder:
    """Incremental mux framing for the reactor path: ``feed(chunk)``
    returns ``("frame", frame_type, channel, payload_bytes)`` events."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data) -> list:
        self._buffer += data
        events: list = []
        while len(self._buffer) >= _HEADER.size:
            length, frame_type, channel = _HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME:
                raise ConnectionError(f"mux frame too large ({length} bytes)")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            events.append(("frame", frame_type, channel, payload))
        return events


class _MuxLink:
    """One framed connection to a peer daemon, carrying many channels."""

    def __init__(self, routed: "RouteD", sock: socket.socket,
                 dialed: bool) -> None:
        self._routed = routed
        self._sock = sock
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._channels: dict[int, socket.socket] = {}
        self._opens: dict[int, dict] = {}
        # The dialing side allocates odd channel ids, the accepting side
        # even ones: no id collisions without a negotiation round-trip.
        self._next_channel = 1 if dialed else 2
        self.peer_name = ""
        self.closed = threading.Event()
        self._reader = None
        self._rlink = None
        self._serial = None
        #: Channel id -> the endpoint's StreamLink (reactor mode only).
        self._chlinks: dict = {}
        self._reactor = reactor_mod.reactor_enabled()
        if not self._reactor:
            self._reader = threading.Thread(
                target=self._read_loop, daemon=True,
                name=f"routed-mux:{routed.name}",
            )

    def start(self) -> None:
        if self._reactor:
            loop = reactor_mod.global_reactor()
            self._serial = loop.serial_queue(
                on_error=lambda exc: self.close()
            )
            self._rlink = reactor_mod.StreamLink(
                self._sock,
                MuxDecoder(),
                on_events=lambda events: self._serial.push(
                    lambda: self._handle_frames(events)
                ),
                on_error=lambda exc: self.close(),
                reactor=loop,
                label=f"routed-mux:{self._routed.name}",
            )
            self._rlink.start()
        else:
            self._reader.start()

    # -- sending ---------------------------------------------------------
    def send(self, frame_type: int, channel: int, payload: bytes = b"") -> None:
        header = _HEADER.pack(len(payload), frame_type, channel)
        if self._rlink is not None:
            # The stream link's write buffer is thread-safe and ordered;
            # send errors surface asynchronously through on_error.
            self._rlink.write([header, payload])
        else:
            with self._send_lock:
                # Vectored write: a TZC bulk frame pumped through a
                # channel never gets re-staged into one contiguous mux
                # frame.
                tcpros.send_parts(self._sock, [header, payload])
        self._routed._frames.inc()
        self._routed._bytes.inc(len(header) + len(payload))

    # -- opening a channel (local dial spliced to the peer) --------------
    def open_channel(self, target: tuple[str, int],
                     timeout: float) -> socket.socket:
        with self._lock:
            channel = self._next_channel
            self._next_channel += 2
            waiter = {"event": threading.Event(), "error": None}
            self._opens[channel] = waiter
        self.send(T_OPEN, channel, f"{target[0]}:{target[1]}".encode())
        if not waiter["event"].wait(timeout):
            with self._lock:
                self._opens.pop(channel, None)
            raise RouteError(f"routed open of {target} timed out")
        if waiter["error"] is not None:
            raise RouteError(waiter["error"])
        near, far = socket.socketpair()
        self._attach(channel, far)
        return near

    def _attach(self, channel: int, endpoint: socket.socket) -> None:
        with self._lock:
            self._channels[channel] = endpoint
        self._routed._channels_gauge.set(self._routed.channel_count())
        if self._reactor:
            # The endpoint joins the loop: its bytes become DATA frames
            # straight from the reactor thread (per-link read order is
            # the pump order), EOF/reset closes the channel both ways.
            chlink = reactor_mod.StreamLink(
                endpoint,
                reactor_mod.RawDecoder(),
                on_events=lambda events, chan=channel: self._pump_events(
                    chan, events
                ),
                on_error=lambda exc, chan=channel: self._close_channel(
                    chan, notify_peer=True
                ),
                label=f"routed-chan:{channel}",
            )
            with self._lock:
                self._chlinks[channel] = chlink
            chlink.start()
        else:
            threading.Thread(
                target=self._pump_out, args=(channel, endpoint), daemon=True,
                name=f"routed-pump:{channel}",
            ).start()

    def _pump_events(self, channel: int, events: list) -> None:
        for _kind, chunk in events:
            self.send(T_DATA, channel, chunk)

    def _pump_out(self, channel: int, endpoint: socket.socket) -> None:
        """Local endpoint -> DATA frames, until either side closes."""
        try:
            while True:
                chunk = endpoint.recv(CHUNK)
                if not chunk:
                    break
                self.send(T_DATA, channel, chunk)
        except OSError:
            pass
        self._close_channel(channel, notify_peer=True)

    def _close_channel(self, channel: int, notify_peer: bool) -> None:
        with self._lock:
            endpoint = self._channels.pop(channel, None)
            chlink = self._chlinks.pop(channel, None)
        if chlink is not None:
            chlink.close()
        if endpoint is not None:
            try:
                endpoint.close()
            except OSError:
                pass
            if notify_peer:
                try:
                    self.send(T_CLOSE, channel)
                except OSError:
                    pass
        self._routed._channels_gauge.set(self._routed.channel_count())

    # -- receiving -------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            while True:
                frame_type, channel, payload = _read_frame(self._sock)
                self._handle_frame(frame_type, channel, payload)
        except (ConnectionError, OSError):
            pass
        self.close()

    def _handle_frames(self, events: list) -> None:
        """Decoder events -> frame dispatch (reactor worker, serialized
        per mux so frame order is preserved)."""
        for _kind, frame_type, channel, payload in events:
            if self.closed.is_set():
                return
            self._handle_frame(frame_type, channel, payload)

    def _handle_frame(self, frame_type: int, channel: int,
                      payload: bytes) -> None:
        if frame_type == T_HELLO:
            self.peer_name = payload.decode("utf-8", "replace")
        elif frame_type == T_OPEN:
            if self._reactor:
                # The dial blocks up to 5 s: off the worker pool, like
                # every other connect phase.
                reactor_mod.global_reactor().spawn_blocking(
                    lambda: self._handle_open(channel, payload),
                    name=f"routed-open:{channel}",
                )
            else:
                self._handle_open(channel, payload)
        elif frame_type in (T_ACCEPT, T_REFUSE):
            with self._lock:
                waiter = self._opens.pop(channel, None)
            if waiter is not None:
                if frame_type == T_REFUSE:
                    waiter["error"] = payload.decode("utf-8", "replace")
                waiter["event"].set()
        elif frame_type == T_DATA:
            with self._lock:
                endpoint = self._channels.get(channel)
                chlink = self._chlinks.get(channel)
            if chlink is not None:
                # Buffered, never blocking: one stalled inner consumer
                # must not wedge every other channel on this mux.
                chlink.write([payload])
            elif endpoint is not None:
                try:
                    endpoint.sendall(payload)
                except OSError:
                    self._close_channel(channel, notify_peer=True)
        elif frame_type == T_CLOSE:
            self._close_channel(channel, notify_peer=False)

    def _handle_open(self, channel: int, payload: bytes) -> None:
        host, _, port = payload.decode("utf-8", "replace").rpartition(":")
        try:
            local = socket.create_connection((host, int(port)), timeout=5.0)
            local.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            self.send(T_REFUSE, channel, str(exc).encode())
            return
        self._attach(channel, local)
        self.send(T_ACCEPT, channel)

    def close(self) -> None:
        if self.closed.is_set():
            return
        self.closed.set()
        with self._lock:
            channels = list(self._channels)
            opens = list(self._opens.values())
            self._opens.clear()
        for waiter in opens:
            waiter["error"] = "mux link closed"
            waiter["event"].set()
        for channel in channels:
            self._close_channel(channel, notify_peer=False)
        if self._rlink is not None:
            self._rlink.close()
        try:
            self._sock.close()
        except OSError:
            pass
        self._routed._drop_link(self)

    def channel_ids(self) -> list[int]:
        with self._lock:
            return sorted(self._channels)


class RouteD:
    """The per-host routing daemon.

    * ``listen_addr`` accepts mux connections from peer daemons.
    * ``add_route(target, peer)`` declares that TCPROS dials to
      ``target`` (a ``(host, port)``) must be spliced via the daemon at
      ``peer`` instead of dialed directly.
    * ``install()`` plugs :meth:`dial` into the transport's connect
      seam; ``uninstall()`` removes it.

    A small XML-RPC admin endpoint (``getStatus``) backs
    ``tools graph routes``.
    """

    def __init__(self, name: str = "routed", host: str = "127.0.0.1",
                 port: int = 0, admin: bool = True) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._routes: dict[tuple[str, int], tuple[str, int]] = {}
        self._links: dict[tuple[str, int], _MuxLink] = {}
        self._mux_gauge = obs_instrument.routed_mux_links.labels(routed=name)
        self._channels_gauge = obs_instrument.routed_channels.labels(
            routed=name)
        self._frames = obs_instrument.routed_frames.labels(routed=name)
        self._bytes = obs_instrument.routed_bytes.labels(routed=name)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.listen_addr = self._listener.getsockname()
        self._closed = threading.Event()
        self._accept_thread = None
        self._acceptor = None
        if reactor_mod.reactor_enabled():
            self._acceptor = reactor_mod.AcceptorLink(
                self._listener, self._on_accept,
                reactor=reactor_mod.global_reactor(),
                label=f"routed-accept:{name}",
            )
            self._acceptor.start()
        else:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True, name=f"routed:{name}",
            )
            self._accept_thread.start()
        self._installed = False
        self._admin = None
        if admin:
            self._admin = _ThreadedXMLRPCServer(
                (host, 0), logRequests=False, allow_none=True
            )
            self._admin.register_function(self.status, "getStatus")
            threading.Thread(
                target=self._admin.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True, name=f"routed-admin:{name}",
            ).start()
            admin_host, admin_port = self._admin.server_address
            self.admin_uri = f"http://{admin_host}:{admin_port}/"
        else:
            self.admin_uri = ""

    # -- peer mux management ---------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return
            self._admit_mux(sock)

    def _on_accept(self, sock, _addr) -> None:
        """AcceptorLink callback (loop thread): mux setup is all
        non-blocking -- StreamLink registration plus a buffered HELLO."""
        self._admit_mux(sock)

    def _admit_mux(self, sock) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        link = _MuxLink(self, sock, dialed=False)
        # Accepted links are keyed once HELLO names the peer; until
        # then they live unkeyed (the reader keeps them alive) -- an
        # accepted mux never originates OPENs here.
        link.start()
        try:
            link.send(T_HELLO, 0, self.name.encode())
        except OSError:
            link.close()
            return
        with self._lock:
            self._links[("accepted", id(link))] = link
        self._mux_gauge.set(len(self._links))

    def _link_to(self, peer: tuple[str, int]) -> _MuxLink:
        with self._lock:
            link = self._links.get(peer)
        if link is not None and not link.closed.is_set():
            return link
        sock = socket.create_connection(peer, timeout=5.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        link = _MuxLink(self, sock, dialed=True)
        with self._lock:
            current = self._links.get(peer)
            if current is not None and not current.closed.is_set():
                # Lost the dial race; use the winner.
                sock.close()
                return current
            self._links[peer] = link
        link.start()
        link.send(T_HELLO, 0, self.name.encode())
        self._mux_gauge.set(len(self._links))
        return link

    def _drop_link(self, link: _MuxLink) -> None:
        with self._lock:
            for key, value in list(self._links.items()):
                if value is link:
                    del self._links[key]
        self._mux_gauge.set(len(self._links))

    # -- routing ---------------------------------------------------------
    def add_route(self, target: tuple[str, int],
                  peer: tuple[str, int]) -> None:
        """Splice dials to ``target`` through the daemon at ``peer``."""
        with self._lock:
            self._routes[(target[0], int(target[1]))] = (
                peer[0], int(peer[1]))

    def remove_route(self, target: tuple[str, int]) -> None:
        with self._lock:
            self._routes.pop((target[0], int(target[1])), None)

    def dial(self, host: str, port: int, timeout: float):
        """The transport connect hook: splice routed targets, pass on
        everything else (return None -> direct dial)."""
        with self._lock:
            peer = self._routes.get((host, int(port)))
        if peer is None:
            return None
        link = self._link_to(peer)
        return link.open_channel((host, int(port)), timeout)

    def install(self) -> None:
        tcpros.install_connect_hook(self.dial)
        self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            tcpros.install_connect_hook(None)
            self._installed = False

    # -- introspection / shutdown ----------------------------------------
    def mux_link_count(self) -> int:
        with self._lock:
            return len(self._links)

    def channel_count(self) -> int:
        with self._lock:
            links = list(self._links.values())
        return sum(len(link.channel_ids()) for link in links)

    def status(self) -> dict:
        with self._lock:
            routes = {
                f"{t[0]}:{t[1]}": f"{p[0]}:{p[1]}"
                for t, p in self._routes.items()
            }
            links = list(self._links.items())
        return {
            "name": self.name,
            "listen": f"{self.listen_addr[0]}:{self.listen_addr[1]}",
            "routes": routes,
            "mux_links": [
                {
                    "peer": link.peer_name or str(key),
                    "channels": link.channel_ids(),
                }
                for key, link in links
            ],
        }

    def shutdown(self) -> None:
        self._closed.set()
        self.uninstall()
        if self._acceptor is not None:
            self._acceptor.close()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            links = list(self._links.values())
        for link in links:
            link.close()
        if self._admin is not None:
            self._admin.shutdown()
            self._admin.server_close()

    def __enter__(self) -> "RouteD":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
