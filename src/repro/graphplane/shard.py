"""Replicated master shards: leader, follower, and the log between them.

A :class:`ShardLeader` is a master (the same registry and RPC surface as
:class:`repro.ros.master.Master`) that additionally journals every
mutation to a :class:`~repro.graphplane.log.RegistrationLog` and pushes
the tail to its follower *before answering the caller* -- so any
registration the leader has acknowledged is already on the replica when
the leader dies.  If the follower is unreachable the leader degrades to
async (the catch-up thread keeps retrying) rather than refusing writes:
availability over durability for a registry whose ground truth is also
held node-side.

A :class:`ShardReplica` tails the log into its own registry and answers
``standby`` to master API calls until promoted.  Its probe thread dials
the leader's ``getEpoch``; after ``probe_failures`` consecutive misses
it promotes itself and starts serving *the replicated graph state under
the leader's epoch*.  Keeping the epoch is the point: node watchdogs
compare epochs, so a failover is invisible to them -- no re-registration
replay, no publisherUpdate storm, unlike the amnesiac-restart path.

Both servers are threaded (unlike the seed master) so a shard can serve
a registration while its peer probes it -- with synchronous replication
in the call path, a single-threaded server pair can deadlock.
"""

from __future__ import annotations

import socketserver
import threading
import xmlrpc.client
import xmlrpc.server

from repro.graphplane.log import (
    LogRecord,
    REPLICATED_METHODS,
    RegistrationLog,
    apply_record,
)
from repro.obs import instrument as obs_instrument
from repro.ros.master import (
    ERROR,
    FAILURE,
    SUCCESS,
    MasterRegistry,
    _MasterRPCHandlers,
)

#: Master API methods whose handler mutates the registry (RPC-surface
#: names; the log records the snake_case registry methods).
MUTATING_RPC_METHODS = {
    "registerPublisher",
    "unregisterPublisher",
    "registerSubscriber",
    "unregisterSubscriber",
    "registerService",
    "unregisterService",
    "setParam",
    "deleteParam",
}

#: Status string a replica answers with before promotion; failover
#: proxies treat it as "not the master (yet)", not as an API error.
STANDBY = "standby"


class _ThreadedXMLRPCServer(socketserver.ThreadingMixIn,
                            xmlrpc.server.SimpleXMLRPCServer):
    daemon_threads = True


def timeout_proxy(uri: str, timeout: float) -> xmlrpc.client.ServerProxy:
    """A ServerProxy whose underlying connections time out -- probes and
    replication pushes must fail fast, not hang on a half-dead peer."""

    class _Transport(xmlrpc.client.Transport):
        def make_connection(self, host):
            connection = super().make_connection(host)
            connection.timeout = timeout
            return connection

    return xmlrpc.client.ServerProxy(
        uri, allow_none=True, transport=_Transport()
    )


class LoggedRegistry(MasterRegistry):
    """A MasterRegistry that journals every mutation.

    Apply and append happen under the registry's own (reentrant) lock,
    so the log order is exactly the apply order -- a follower replaying
    the log reaches bit-identical state.
    """

    def __init__(self) -> None:
        super().__init__()
        self.log = RegistrationLog(self.epoch)


def _logged(method_name: str):
    def wrapper(self, *args):
        with self._lock:
            result = getattr(MasterRegistry, method_name)(self, *args)
            self.log.append(method_name, args)
        return result
    wrapper.__name__ = method_name
    return wrapper


for _name in sorted(REPLICATED_METHODS):
    setattr(LoggedRegistry, _name, _logged(_name))
del _name


class ShardLeader:
    """One master shard: registry + log + synchronous follower push.

    ``pause()``/``resume()`` mirror the chaos master's bounce semantics
    (stable port, optionally amnesiac) so fault scenarios can target a
    single shard.
    """

    def __init__(
        self,
        shard_index: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        replica_uri: str | None = None,
        replication_timeout: float = 1.0,
        catchup_interval: float = 0.1,
    ) -> None:
        self.shard_index = shard_index
        self._host = host
        self._port = port
        self.registry = LoggedRegistry()
        self._replication_timeout = replication_timeout
        self._repl_lock = threading.Lock()
        self._replica_uri = None
        self._replica_proxy = None
        self._acked_seq = 0
        self._lag_gauge = obs_instrument.graphplane_replication_lag.labels(
            shard=str(shard_index)
        )
        self._records_counter = obs_instrument.graphplane_log_records.labels(
            shard=str(shard_index)
        )
        self._server = None
        self._thread = None
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._start()
        self.uri = f"http://{self._host}:{self._port}/"
        if replica_uri is not None:
            self.attach_replica(replica_uri)
        self._catchup_thread = threading.Thread(
            target=self._catchup_loop, args=(catchup_interval,),
            daemon=True, name=f"shard-catchup:{shard_index}",
        )
        self._catchup_thread.start()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _start(self) -> None:
        server = _ThreadedXMLRPCServer(
            (self._host, self._port), logRequests=False, allow_none=True
        )
        server.register_instance(_LeaderDispatch(self))
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name=f"shard-leader:{self.shard_index}",
        )
        thread.start()
        self._host, self._port = server.server_address
        self._server, self._thread = server, thread

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def epoch(self) -> str:
        return self.registry.epoch

    @property
    def log(self) -> RegistrationLog:
        return self.registry.log

    def pause(self) -> None:
        """Stop answering (connection refused), keeping registry and log
        -- the shard is *down*, not *reset*."""
        with self._lock:
            server, thread = self._server, self._thread
            self._server = self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
            thread.join(timeout=2.0)

    def resume(self, fresh_registry: bool = False) -> None:
        """Come back on the same port; ``fresh_registry=True`` models an
        amnesiac crash-restart (new epoch, empty registry, empty log)."""
        with self._lock:
            if self._server is not None:
                return
            if fresh_registry:
                self.registry = LoggedRegistry()
                with self._repl_lock:
                    self._acked_seq = 0
            self._start()

    def restart(self) -> None:
        self.pause()
        self.resume(fresh_registry=True)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def attach_replica(self, replica_uri: str) -> None:
        with self._repl_lock:
            self._replica_uri = replica_uri
            self._replica_proxy = timeout_proxy(
                replica_uri, self._replication_timeout
            )
            self._acked_seq = 0

    def replication_lag(self) -> int:
        with self._repl_lock:
            if self._replica_uri is None:
                return 0
            return max(0, self.log.last_seq - self._acked_seq)

    def _replicate(self) -> bool:
        """Push the unacknowledged log tail to the follower (called in
        the RPC handler after each mutation, and by the catch-up loop).
        Returns True when the follower is caught up."""
        with self._repl_lock:
            proxy = self._replica_proxy
            if proxy is None:
                return True
            log = self.registry.log
            records = log.since(self._acked_seq)
            if not records:
                self._lag_gauge.set(0)
                return True
            try:
                code, _status, acked = proxy.applyRecords(
                    f"/shard{self.shard_index}",
                    log.epoch,
                    [record.to_wire() for record in records],
                )
            except Exception:
                self._lag_gauge.set(log.last_seq - self._acked_seq)
                return False
            if code == SUCCESS:
                self._acked_seq = max(self._acked_seq, int(acked))
            lag = max(0, log.last_seq - self._acked_seq)
            self._lag_gauge.set(lag)
            return lag == 0

    def _catchup_loop(self, interval: float) -> None:
        """Retry the push while the follower is behind (its only job is
        the window where a synchronous push failed)."""
        while not self._closed.wait(interval):
            if self.replication_lag() > 0:
                self._replicate()

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    def shard_info(self) -> dict:
        log = self.registry.log
        with self._repl_lock:
            acked = self._acked_seq
            replica = self._replica_uri
        state = self.registry.system_state()
        return {
            "role": "leader",
            "shard": self.shard_index,
            "uri": self.uri,
            "epoch": self.registry.epoch,
            "log_seq": log.last_seq,
            "replica_uri": replica or "",
            "replica_acked": acked,
            "replication_lag": (
                max(0, log.last_seq - acked) if replica else 0
            ),
            "topics": len(state[0]) + len(state[1]),
        }

    def shutdown(self) -> None:
        self._closed.set()
        self.pause()

    def __enter__(self) -> "ShardLeader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class _LeaderDispatch:
    """RPC dispatch for a shard leader: the plain master surface plus
    shard introspection, with a synchronous replication push after every
    mutating call."""

    def __init__(self, leader: ShardLeader) -> None:
        self._leader = leader

    def _dispatch(self, method: str, params):
        leader = self._leader
        if method == "getShardInfo":
            return SUCCESS, "shard info", leader.shard_info()
        if method == "getLogSince":
            _caller_id, seq = params
            return SUCCESS, "log tail", [
                record.to_wire()
                for record in leader.registry.log.since(int(seq))
            ]
        handlers = _MasterRPCHandlers(leader.registry)
        handler = getattr(handlers, method, None)
        if handler is None or method.startswith("_"):
            raise Exception(f"method {method!r} is not supported")
        result = handler(*params)
        if method in MUTATING_RPC_METHODS:
            leader._records_counter.inc()
            # Synchronous push: the caller's registration is on the
            # replica before the caller hears "registered".
            leader._replicate()
        return result


class ShardReplica:
    """A shard follower: replays the leader's log, promotes on silence.

    The replica answers ``standby`` to the master API until
    :meth:`promote` runs; ``applyRecords``/``getShardInfo`` work in both
    roles.  Promotion keeps the replicated epoch, so clients that fail
    over see the same master identity with its state intact.
    """

    def __init__(
        self,
        leader_uri: str | None = None,
        shard_index: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        probe_interval: float = 0.25,
        probe_failures: int = 3,
        probe_timeout: float = 0.5,
        auto_promote: bool = True,
    ) -> None:
        self.shard_index = shard_index
        self.leader_uri = leader_uri
        self.registry = MasterRegistry()
        self.promoted = False
        self.applied_seq = 0
        self._applied_epoch: str | None = None
        self._apply_lock = threading.Lock()
        self._probe_interval = probe_interval
        self._probe_failures = probe_failures
        self._probe_timeout = probe_timeout
        self._auto_promote = auto_promote
        self._failures = 0
        self._closed = threading.Event()
        self._server = _ThreadedXMLRPCServer(
            (host, port), logRequests=False, allow_none=True
        )
        self._server.register_instance(_ReplicaDispatch(self))
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name=f"shard-replica:{shard_index}",
        )
        self._thread.start()
        host, port = self._server.server_address
        self.uri = f"http://{host}:{port}/"
        self._probe_thread = None
        if leader_uri is not None:
            self._bootstrap()
            self._probe_thread = threading.Thread(
                target=self._probe_loop, daemon=True,
                name=f"shard-probe:{shard_index}",
            )
            self._probe_thread.start()

    # ------------------------------------------------------------------
    # Log application
    # ------------------------------------------------------------------
    def apply_records(self, epoch: str, wire_records: list) -> int:
        """Apply pushed/pulled log records; returns the applied seq.

        Dense sequence numbers make this idempotent and gap-safe: stale
        records (seq <= applied) are skipped, a gap stops application
        and the returned seq tells the leader where to resend from.  An
        epoch change means the leader restarted amnesiac -- the replica
        mirrors it by starting from an empty registry under the new
        epoch.
        """
        with self._apply_lock:
            if self._applied_epoch != epoch:
                fresh = MasterRegistry()
                fresh.epoch = epoch
                self.registry = fresh
                self._applied_epoch = epoch
                self.applied_seq = 0
            for doc in wire_records:
                record = LogRecord.from_wire(doc)
                if record.seq <= self.applied_seq:
                    continue
                if record.seq != self.applied_seq + 1:
                    break
                apply_record(self.registry, record)
                self.applied_seq = record.seq
            return self.applied_seq

    def _bootstrap(self) -> None:
        """Adopt the leader's epoch and replay its log from the start
        (registries are small; the full log is the snapshot)."""
        try:
            proxy = timeout_proxy(self.leader_uri, self._probe_timeout)
            code, _status, epoch = proxy.getEpoch(self._caller_id())
            if code != SUCCESS:
                return
            code, _status, records = proxy.getLogSince(self._caller_id(), 0)
            if code == SUCCESS:
                self.apply_records(epoch, records)
            else:
                self.apply_records(epoch, [])
        except Exception:
            # Leader unreachable at construction: the probe loop will
            # catch up (or promote) once it starts.
            pass

    def _caller_id(self) -> str:
        return f"/shard{self.shard_index}_replica"

    # ------------------------------------------------------------------
    # Probe / promotion
    # ------------------------------------------------------------------
    def _probe_loop(self) -> None:
        while not self._closed.wait(self._probe_interval):
            if self.promoted:
                return
            self._probe_once()

    def _probe_once(self) -> None:
        try:
            proxy = timeout_proxy(self.leader_uri, self._probe_timeout)
            code, _status, epoch = proxy.getEpoch(self._caller_id())
            if code != SUCCESS:
                raise ConnectionError("leader unhealthy")
            # Pull-based catch-up alongside the leader's push: covers
            # the window where a synchronous push failed.
            code, _status, records = proxy.getLogSince(
                self._caller_id(), self.applied_seq
                if self._applied_epoch == epoch else 0
            )
            if code == SUCCESS and records:
                self.apply_records(epoch, records)
            self._failures = 0
        except Exception:
            self._failures += 1
            if self._auto_promote and self._failures >= self._probe_failures:
                self.promote()

    def promote(self) -> None:
        """Take over the shard: serve the replicated graph state under
        the replicated epoch.  Idempotent."""
        if self.promoted:
            return
        self.promoted = True
        obs_instrument.graphplane_failovers.labels(
            shard=str(self.shard_index)
        ).inc()

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    def shard_info(self) -> dict:
        state = self.registry.system_state()
        return {
            "role": "leader (promoted)" if self.promoted else "replica",
            "shard": self.shard_index,
            "uri": self.uri,
            "epoch": self.registry.epoch,
            "applied_seq": self.applied_seq,
            "leader_uri": self.leader_uri or "",
            "probe_failures": self._failures,
            "topics": len(state[0]) + len(state[1]),
        }

    def shutdown(self) -> None:
        self._closed.set()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=2.0)
        if self._probe_thread is not None:
            self._probe_thread.join(timeout=2.0)

    def __enter__(self) -> "ShardReplica":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class _ReplicaDispatch:
    """RPC dispatch for a replica: replication + introspection always,
    the master surface only once promoted."""

    def __init__(self, replica: ShardReplica) -> None:
        self._replica = replica

    def _dispatch(self, method: str, params):
        replica = self._replica
        if method == "applyRecords":
            if replica.promoted:
                return ERROR, "promoted", replica.applied_seq
            _caller_id, epoch, records = params
            return (
                SUCCESS, "applied",
                replica.apply_records(epoch, records),
            )
        if method == "getShardInfo":
            return SUCCESS, "shard info", replica.shard_info()
        if not replica.promoted:
            return FAILURE, STANDBY, 0
        handlers = _MasterRPCHandlers(replica.registry)
        handler = getattr(handlers, method, None)
        if handler is None or method.startswith("_"):
            raise Exception(f"method {method!r} is not supported")
        return handler(*params)
