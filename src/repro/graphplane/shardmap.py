"""Shard assignment: which master shard owns a graph resource name.

The graph plane partitions the master's registry across N shards.  The
partition key is the resource's *top-level namespace* segment (``/camera
/image`` and ``/camera/info`` co-locate; a bare ``/chatter`` is its own
key), hashed with CRC-32 so the mapping is stable across processes,
Python versions and ``PYTHONHASHSEED`` -- every proxy in the fleet must
agree on ownership without coordination.

A *graph-plane spec* is the string a node is given instead of a single
master URI::

    http://h:1/                       one master (plain MasterProxy)
    http://h:1/|http://h:2/           leader|replica (failover)
    http://h:1/|http://h:2/,http://h:3/   two shards, first replicated

Commas separate shards; ``|`` separates failover candidates within one
shard.  Shard order is load-bearing: every participant must hold the
same ordered spec or names route to different shards.
"""

from __future__ import annotations

import zlib


def partition_key(name: str) -> str:
    """The shard-assignment key for a graph resource name.

    >>> partition_key("/camera/image")
    'camera'
    >>> partition_key("/camera/info")
    'camera'
    >>> partition_key("/chatter")
    'chatter'
    """
    parts = [part for part in name.split("/") if part]
    return parts[0] if parts else ""


def stable_hash(key: str) -> int:
    """A process-independent hash (CRC-32 of the UTF-8 bytes)."""
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


def shard_for(name: str, shard_count: int) -> int:
    """The index of the shard owning ``name``.

    >>> shard_for("/camera/image", 1)
    0
    >>> shard_for("/camera/image", 4) == shard_for("/camera/info", 4)
    True
    """
    if shard_count <= 1:
        return 0
    return stable_hash(partition_key(name)) % shard_count


def parse_spec(spec: str) -> list[list[str]]:
    """Parse a graph-plane spec into per-shard candidate URI lists.

    >>> parse_spec("http://h:1/")
    [['http://h:1/']]
    >>> parse_spec("http://h:1/|http://h:2/,http://h:3/")
    [['http://h:1/', 'http://h:2/'], ['http://h:3/']]
    """
    shards: list[list[str]] = []
    for part in spec.split(","):
        candidates = [uri.strip() for uri in part.split("|") if uri.strip()]
        if candidates:
            shards.append(candidates)
    if not shards:
        raise ValueError(f"empty graph-plane spec {spec!r}")
    return shards


def format_spec(shards: list[list[str]]) -> str:
    """The inverse of :func:`parse_spec`."""
    return ",".join("|".join(candidates) for candidates in shards)


def is_plain_uri(spec: str) -> bool:
    """True when ``spec`` is a single master URI (no shards, no
    failover candidates) -- the fast path that needs no graph plane."""
    return "," not in spec and "|" not in spec
