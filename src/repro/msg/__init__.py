"""The ``.msg`` interface definition language and message class machinery.

ROS defines message types in a small IDL (``.msg`` files); the build system
turns each definition into a native message class plus serialization
routines.  This subpackage reproduces that pipeline:

- :mod:`repro.msg.fields` -- the field type system (primitives, strings,
  arrays, nested message types, plus the paper's Section 4.4.2 extensions:
  ``optional`` fields and ``map`` fields).
- :mod:`repro.msg.idl` -- the ``.msg`` grammar parser producing
  :class:`~repro.msg.idl.MessageSpec` objects.
- :mod:`repro.msg.registry` -- the global type registry and md5 fingerprint
  computation (the equivalent of genmsg's md5sum, used in the TCPROS
  handshake to reject type mismatches).
- :mod:`repro.msg.generator` -- generates plain Python message classes with
  ROS semantics (every field is an ordinary attribute).
- :mod:`repro.msg.library` -- the standard message library used by the
  paper's evaluation (std_msgs, sensor_msgs, geometry_msgs, stereo_msgs).
"""

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    FieldType,
    MapType,
    PrimitiveType,
    StringType,
    parse_field_type,
)
from repro.msg.idl import Constant, Field, MessageSpec, parse_message_definition
from repro.msg.registry import TypeRegistry, default_registry
from repro.msg.generator import generate_message_class

__all__ = [
    "ArrayType",
    "ComplexType",
    "Constant",
    "Field",
    "FieldType",
    "MapType",
    "MessageSpec",
    "PrimitiveType",
    "StringType",
    "TypeRegistry",
    "default_registry",
    "generate_message_class",
    "parse_field_type",
    "parse_message_definition",
]
