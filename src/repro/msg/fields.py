"""Field type system for the ``.msg`` interface definition language.

ROS messages are composed from a small set of builtin types plus arrays and
nested message types.  Every builtin type except ``string`` has a fixed wire
size, a fact the SFM format relies on (paper Section 4.1): the *skeleton* of
a message is fixed-size precisely because strings and variable-length arrays
contribute a fixed 8-byte (length, offset) pair.

The classes here describe types only; serialization lives in
:mod:`repro.serialization` and the SFM layout in :mod:`repro.sfm.layout`.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass
from typing import Optional

#: Legal spelling of a (possibly package-qualified) complex type name.
_COMPLEX_NAME_RE = re.compile(
    r"^[A-Za-z][A-Za-z0-9_]*(/[A-Za-z][A-Za-z0-9_]*)?$"
)


class FieldType:
    """Base class for all field types.

    A field type knows its canonical IDL name and whether its serialized
    size is fixed.  Concrete subclasses: :class:`PrimitiveType`,
    :class:`StringType`, :class:`ArrayType`, :class:`ComplexType` and the
    extension :class:`MapType`.
    """

    #: Canonical IDL spelling, e.g. ``uint32`` or ``sensor_msgs/Image``.
    name: str

    def is_fixed_size(self) -> bool:
        """Return True when every value of this type serializes to the
        same number of bytes (no strings or variable-length arrays)."""
        raise NotImplementedError

    def default_value(self):
        """Return the ROS default value for an unassigned field."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.name == other.name

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


@dataclass(frozen=True, eq=False)
class PrimitiveType(FieldType):
    """A fixed-size builtin type (integers, floats, bool, time, duration).

    ``struct_fmt`` is the little-endian :mod:`struct` format for one value;
    ``size`` is its wire size in bytes.  ROS serializes ``time`` and
    ``duration`` as two unsigned 32-bit integers, which we model with the
    8-byte ``II`` format and 2-tuples on the Python side.
    """

    name: str
    struct_fmt: str
    size: int
    python_default: object

    def is_fixed_size(self) -> bool:
        return True

    def default_value(self):
        return self.python_default

    @property
    def is_integral(self) -> bool:
        return self.struct_fmt in ("b", "B", "h", "H", "i", "I", "q", "Q", "?")

    @property
    def is_float(self) -> bool:
        return self.struct_fmt in ("f", "d")

    @property
    def is_time(self) -> bool:
        return self.struct_fmt == "II"

    def range(self) -> Optional[tuple]:
        """Return the inclusive (lo, hi) value range for integral types,
        or None for floats / time."""
        if not self.is_integral:
            return None
        if self.struct_fmt == "?":
            return (0, 1)
        bits = self.size * 8
        if self.struct_fmt.islower():
            return (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
        return (0, (1 << bits) - 1)


class StringType(FieldType):
    """The ROS ``string`` type: UTF-8 text with a 32-bit length prefix."""

    name = "string"

    def is_fixed_size(self) -> bool:
        return False

    def default_value(self) -> str:
        return ""


@dataclass(frozen=True, eq=False)
class ArrayType(FieldType):
    """A fixed (``T[N]``) or variable-length (``T[]``) array of a type."""

    element_type: FieldType
    length: Optional[int]  # None => variable length

    @property
    def name(self) -> str:  # type: ignore[override]
        suffix = f"[{self.length}]" if self.length is not None else "[]"
        return self.element_type.name + suffix

    @property
    def is_variable_length(self) -> bool:
        return self.length is None

    def is_fixed_size(self) -> bool:
        return self.length is not None and self.element_type.is_fixed_size()

    def default_value(self):
        if self.length is None:
            return []
        return [self.element_type.default_value() for _ in range(self.length)]


@dataclass(frozen=True, eq=False)
class ComplexType(FieldType):
    """A nested message type, referenced as ``package/Name``."""

    name: str

    @property
    def package(self) -> str:
        return self.name.split("/", 1)[0] if "/" in self.name else ""

    @property
    def short_name(self) -> str:
        return self.name.split("/", 1)[-1]

    def is_fixed_size(self) -> bool:
        # Resolution happens in the registry; a bare ComplexType is
        # conservatively variable-size.
        return False

    def default_value(self):
        return None


@dataclass(frozen=True, eq=False)
class MapType(FieldType):
    """Extension type from paper Section 4.4.2: a key/value map.

    Following the paper's suggestion (and ROS's own convention), a map is
    represented on the wire as a variable-length vector of key/value pairs.
    """

    key_type: FieldType
    value_type: FieldType

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"map<{self.key_type.name},{self.value_type.name}>"

    def is_fixed_size(self) -> bool:
        return False

    def default_value(self) -> dict:
        return {}


def _prim(name: str, fmt: str, default) -> PrimitiveType:
    size = struct.calcsize("<" + fmt)
    return PrimitiveType(name=name, struct_fmt=fmt, size=size, python_default=default)


#: All ROS builtin primitive types, keyed by IDL name.  ``byte`` and
#: ``char`` are the historic aliases for int8/uint8.
PRIMITIVE_TYPES: dict[str, PrimitiveType] = {
    "bool": _prim("bool", "?", False),
    "int8": _prim("int8", "b", 0),
    "uint8": _prim("uint8", "B", 0),
    "byte": _prim("byte", "b", 0),
    "char": _prim("char", "B", 0),
    "int16": _prim("int16", "h", 0),
    "uint16": _prim("uint16", "H", 0),
    "int32": _prim("int32", "i", 0),
    "uint32": _prim("uint32", "I", 0),
    "int64": _prim("int64", "q", 0),
    "uint64": _prim("uint64", "Q", 0),
    "float32": _prim("float32", "f", 0.0),
    "float64": _prim("float64", "d", 0.0),
    "time": _prim("time", "II", (0, 0)),
    "duration": _prim("duration", "ii", (0, 0)),
}

STRING = StringType()


class FieldTypeError(ValueError):
    """Raised for malformed type spellings in a message definition."""


def parse_field_type(spelling: str, package_context: str = "") -> FieldType:
    """Parse an IDL type spelling into a :class:`FieldType`.

    ``package_context`` supplies the package for unqualified complex type
    names (``Header`` is special-cased to ``std_msgs/Header`` as in ROS).

    >>> parse_field_type("uint8[]").name
    'uint8[]'
    >>> parse_field_type("Header", "sensor_msgs").name
    'std_msgs/Header'
    """
    spelling = spelling.strip()
    if not spelling:
        raise FieldTypeError("empty type spelling")

    if spelling.endswith("]"):
        open_idx = spelling.rfind("[")
        if open_idx < 0:
            raise FieldTypeError(f"malformed array type {spelling!r}")
        inner = spelling[open_idx + 1 : -1].strip()
        element = parse_field_type(spelling[:open_idx], package_context)
        if inner == "":
            return ArrayType(element_type=element, length=None)
        try:
            length = int(inner)
        except ValueError as exc:
            raise FieldTypeError(f"bad array length in {spelling!r}") from exc
        if length < 0:
            raise FieldTypeError(f"negative array length in {spelling!r}")
        return ArrayType(element_type=element, length=length)

    if spelling.startswith("map<"):
        if not spelling.endswith(">"):
            raise FieldTypeError(f"malformed map type {spelling!r}")
        body = spelling[4:-1]
        parts = _split_map_args(body)
        if len(parts) != 2:
            raise FieldTypeError(f"map type needs 2 arguments: {spelling!r}")
        key = parse_field_type(parts[0], package_context)
        value = parse_field_type(parts[1], package_context)
        if not isinstance(key, (PrimitiveType, StringType)):
            raise FieldTypeError(f"map key must be primitive or string: {spelling!r}")
        return MapType(key_type=key, value_type=value)

    if spelling in PRIMITIVE_TYPES:
        return PRIMITIVE_TYPES[spelling]
    if spelling == "string":
        return STRING
    if spelling == "Header":
        return ComplexType(name="std_msgs/Header")
    if not _COMPLEX_NAME_RE.match(spelling):
        raise FieldTypeError(f"malformed type spelling {spelling!r}")
    if "/" in spelling:
        return ComplexType(name=spelling)
    if not package_context:
        raise FieldTypeError(
            f"unqualified complex type {spelling!r} outside a package context"
        )
    return ComplexType(name=f"{package_context}/{spelling}")


def _split_map_args(body: str) -> list[str]:
    """Split ``map<...>`` arguments at the top-level comma only."""
    parts, depth, current = [], 0, []
    for ch in body:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts]
