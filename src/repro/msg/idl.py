"""Parser for the ``.msg`` interface definition language.

A message definition is a sequence of lines, each one of:

- a field:       ``<type> <name>``
- a constant:    ``<type> <NAME>=<value>``
- a comment:     ``# ...``
- a directive:   ``# sfm_capacity: <bytes>`` (extension: the per-type
  buffer capacity hint the paper says "is defined by developers in the
  IDL", Section 4.2)
- an optional field (extension, Section 4.4.2):
  ``optional <type> <name> [= <default>]``

The parser produces a :class:`MessageSpec`, the single source of truth
consumed by the plain generator, the SFM generator, every serializer and
the md5 fingerprint computation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    FieldType,
    MapType,
    PrimitiveType,
    StringType,
    parse_field_type,
)

_FIELD_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")
_CAPACITY_RE = re.compile(r"^#\s*sfm_capacity\s*:\s*(\d+)\s*$")


class MessageDefinitionError(ValueError):
    """Raised when a ``.msg`` definition cannot be parsed."""


@dataclass(frozen=True)
class Field:
    """One declared field of a message.

    ``optional`` and ``default`` implement the paper's Section 4.4.2
    extension: an optional fixed-size field carries a user-defined default,
    while optional variable-size fields are treated as bound-1 vectors.
    """

    name: str
    type: FieldType
    optional: bool = False
    default: object = None

    def default_value(self):
        if self.optional and self.default is not None:
            return self.default
        return self.type.default_value()


@dataclass(frozen=True)
class Constant:
    """A constant declaration such as ``uint8 DEBUG=1``."""

    name: str
    type: FieldType
    value: object
    raw_value: str


@dataclass
class MessageSpec:
    """A parsed message definition.

    The ``text`` attribute retains the canonical definition text used by the
    md5 fingerprint; ``sfm_capacity`` is the initial whole-message buffer
    capacity for SFM allocation (paper Section 4.2: "large enough for the
    largest message of this message type ... defined by developers in the
    IDL").
    """

    full_name: str
    fields: list[Field] = dataclass_field(default_factory=list)
    constants: list[Constant] = dataclass_field(default_factory=list)
    text: str = ""
    sfm_capacity: Optional[int] = None

    @property
    def package(self) -> str:
        return self.full_name.split("/", 1)[0] if "/" in self.full_name else ""

    @property
    def short_name(self) -> str:
        return self.full_name.split("/", 1)[-1]

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"{self.full_name} has no field {name!r}")

    def complex_dependencies(self) -> list[str]:
        """Full names of all directly referenced complex types."""
        deps: list[str] = []
        for f in self.fields:
            deps.extend(_complex_names(f.type))
        return deps

    def has_header(self) -> bool:
        return bool(
            self.fields
            and isinstance(self.fields[0].type, ComplexType)
            and self.fields[0].type.name == "std_msgs/Header"
            and self.fields[0].name == "header"
        )


def _complex_names(ftype: FieldType) -> list[str]:
    if isinstance(ftype, ComplexType):
        return [ftype.name]
    if isinstance(ftype, ArrayType):
        return _complex_names(ftype.element_type)
    if isinstance(ftype, MapType):
        return _complex_names(ftype.key_type) + _complex_names(ftype.value_type)
    return []


def parse_message_definition(full_name: str, text: str) -> MessageSpec:
    """Parse the definition ``text`` of message type ``full_name``.

    >>> spec = parse_message_definition("pkg/Point", "float64 x\\nfloat64 y")
    >>> [f.name for f in spec.fields]
    ['x', 'y']
    """
    if "/" not in full_name:
        raise MessageDefinitionError(
            f"message name must be package-qualified: {full_name!r}"
        )
    package = full_name.split("/", 1)[0]
    spec = MessageSpec(full_name=full_name, text=text)
    seen_names: set[str] = set()

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        capacity_match = _CAPACITY_RE.match(line)
        if capacity_match:
            spec.sfm_capacity = int(capacity_match.group(1))
            continue
        # Strip trailing comments, except inside string constant values.
        line = _strip_comment(line)
        if not line:
            continue
        try:
            entry = _parse_line(line, package)
        except MessageDefinitionError as exc:
            raise MessageDefinitionError(
                f"{full_name}:{lineno}: {exc}"
            ) from exc
        if isinstance(entry, Constant):
            if entry.name in seen_names:
                raise MessageDefinitionError(
                    f"{full_name}:{lineno}: duplicate name {entry.name!r}"
                )
            seen_names.add(entry.name)
            spec.constants.append(entry)
        else:
            if entry.name in seen_names:
                raise MessageDefinitionError(
                    f"{full_name}:{lineno}: duplicate name {entry.name!r}"
                )
            seen_names.add(entry.name)
            spec.fields.append(entry)
    return spec


def _strip_comment(line: str) -> str:
    # String constants keep everything after '=' verbatim (ROS rule), so we
    # must not cut a '#' that appears inside one.  Detect the string-constant
    # shape first.
    if line.startswith("#"):
        return ""
    if re.match(r"^string\s+[A-Za-z][A-Za-z0-9_]*\s*=", line):
        return line
    idx = line.find("#")
    if idx >= 0:
        line = line[:idx]
    return line.strip()


def _parse_line(line: str, package: str):
    optional = False
    if line.startswith("optional "):
        optional = True
        line = line[len("optional ") :].strip()

    if "=" in line and not optional:
        return _parse_constant(line, package)

    default = None
    if optional and "=" in line:
        decl, _, default_text = line.partition("=")
        line = decl.strip()
        default_text = default_text.strip()
    else:
        default_text = None

    parts = line.split()
    if len(parts) != 2:
        raise MessageDefinitionError(f"expected '<type> <name>', got {line!r}")
    type_spelling, name = parts
    if not _FIELD_NAME_RE.match(name):
        raise MessageDefinitionError(f"bad field name {name!r}")
    ftype = parse_field_type(type_spelling, package)
    if default_text is not None:
        default = _coerce_value(ftype, default_text)
    if optional and default is None and not ftype.is_fixed_size():
        # Optional variable-size fields carry no default; they are treated
        # as bound-1 vectors by the SFM generator (paper Section 4.4.2).
        pass
    return Field(name=name, type=ftype, optional=optional, default=default)


def _parse_constant(line: str, package: str) -> Constant:
    decl, _, value_text = line.partition("=")
    parts = decl.split()
    if len(parts) != 2:
        raise MessageDefinitionError(f"expected '<type> <NAME>=<value>', got {line!r}")
    type_spelling, name = parts
    ftype = parse_field_type(type_spelling, package)
    if isinstance(ftype, (ArrayType, ComplexType, MapType)):
        raise MessageDefinitionError(f"constants must be primitive: {line!r}")
    if isinstance(ftype, StringType):
        # ROS: everything after '=' is the value, whitespace preserved,
        # leading whitespace stripped.
        raw = value_text.lstrip()
        value: object = raw
    else:
        raw = value_text.strip()
        value = _coerce_value(ftype, raw)
    return Constant(name=name, type=ftype, value=value, raw_value=raw)


def _coerce_value(ftype: FieldType, text: str):
    if isinstance(ftype, StringType):
        return text
    if not isinstance(ftype, PrimitiveType):
        raise MessageDefinitionError(f"cannot give a default for type {ftype.name!r}")
    if ftype.name == "bool":
        lowered = text.lower()
        if lowered in ("true", "1"):
            return True
        if lowered in ("false", "0"):
            return False
        raise MessageDefinitionError(f"bad bool value {text!r}")
    if ftype.is_float:
        try:
            return float(text)
        except ValueError as exc:
            raise MessageDefinitionError(f"bad float value {text!r}") from exc
    try:
        value = int(text, 0)
    except ValueError as exc:
        raise MessageDefinitionError(f"bad integer value {text!r}") from exc
    rng = ftype.range()
    if rng is not None and not (rng[0] <= value <= rng[1]):
        raise MessageDefinitionError(
            f"value {value} out of range for {ftype.name} {rng}"
        )
    return value
