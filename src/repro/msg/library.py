"""The standard message library used throughout the paper's evaluation.

Definitions are transcribed from the ROS common_msgs stack (std_msgs,
geometry_msgs, sensor_msgs, stereo_msgs) and include the paper's simplified
``Image`` example (``rossf_bench/SimpleImage``, Fig. 1) whose SFM layout is
spelled out byte-by-byte in Fig. 7.

Each definition may carry an ``# sfm_capacity`` directive: the initial
whole-message buffer capacity used by SFM allocation (paper Section 4.2 --
"large enough for the largest message of this message type", declared in
the IDL).  Capacities are sized for the paper's largest workload (a
1920x1080x24bit image, ~6 MB).
"""

from __future__ import annotations

from repro.msg.generator import generate_message_class
from repro.msg.registry import TypeRegistry, default_registry

#: Raw definition text for every library type, keyed by full name.
DEFINITIONS: dict[str, str] = {
    "std_msgs/Header": (
        "# Standard metadata for higher-level stamped data types.\n"
        "uint32 seq\n"
        "time stamp\n"
        "string frame_id\n"
        "# sfm_capacity: 256\n"
    ),
    "std_msgs/String": "string data\n# sfm_capacity: 4096\n",
    "std_msgs/UInt32": "uint32 data\n",
    "std_msgs/Float64": "float64 data\n",
    "std_msgs/Time": "time data\n",
    "geometry_msgs/Point": "float64 x\nfloat64 y\nfloat64 z\n",
    "geometry_msgs/Point32": "float32 x\nfloat32 y\nfloat32 z\n",
    "geometry_msgs/Vector3": "float64 x\nfloat64 y\nfloat64 z\n",
    "geometry_msgs/Quaternion": (
        "float64 x\nfloat64 y\nfloat64 z\nfloat64 w\n"
    ),
    "geometry_msgs/Pose": (
        "Point position\n"
        "Quaternion orientation\n"
    ),
    "geometry_msgs/PoseStamped": (
        "Header header\n"
        "Pose pose\n"
        "# sfm_capacity: 512\n"
    ),
    "geometry_msgs/Transform": (
        "Vector3 translation\n"
        "Quaternion rotation\n"
    ),
    "geometry_msgs/TransformStamped": (
        "Header header\n"
        "string child_frame_id\n"
        "Transform transform\n"
        "# sfm_capacity: 512\n"
    ),
    "geometry_msgs/Twist": (
        "Vector3 linear\n"
        "Vector3 angular\n"
    ),
    "sensor_msgs/RegionOfInterest": (
        "uint32 x_offset\n"
        "uint32 y_offset\n"
        "uint32 height\n"
        "uint32 width\n"
        "bool do_rectify\n"
    ),
    "sensor_msgs/Image": (
        "# An uncompressed image: 2D pixel data plus encoding metadata.\n"
        "Header header\n"
        "uint32 height\n"
        "uint32 width\n"
        "string encoding\n"
        "uint8 is_bigendian\n"
        "uint32 step\n"
        "uint8[] data\n"
        "# sfm_capacity: 8388608\n"
    ),
    "sensor_msgs/CompressedImage": (
        "Header header\n"
        "string format\n"
        "uint8[] data\n"
        "# sfm_capacity: 4194304\n"
    ),
    "sensor_msgs/ChannelFloat32": (
        "string name\n"
        "float32[] values\n"
        "# sfm_capacity: 1048576\n"
    ),
    "sensor_msgs/PointCloud": (
        "Header header\n"
        "geometry_msgs/Point32[] points\n"
        "ChannelFloat32[] channels\n"
        "# sfm_capacity: 8388608\n"
    ),
    "sensor_msgs/PointField": (
        "uint8 INT8=1\n"
        "uint8 UINT8=2\n"
        "uint8 INT16=3\n"
        "uint8 UINT16=4\n"
        "uint8 INT32=5\n"
        "uint8 UINT32=6\n"
        "uint8 FLOAT32=7\n"
        "uint8 FLOAT64=8\n"
        "string name\n"
        "uint32 offset\n"
        "uint8 datatype\n"
        "uint32 count\n"
        "# sfm_capacity: 128\n"
    ),
    "sensor_msgs/PointCloud2": (
        "Header header\n"
        "uint32 height\n"
        "uint32 width\n"
        "PointField[] fields\n"
        "bool is_bigendian\n"
        "uint32 point_step\n"
        "uint32 row_step\n"
        "uint8[] data\n"
        "bool is_dense\n"
        "# sfm_capacity: 8388608\n"
    ),
    "sensor_msgs/LaserScan": (
        "Header header\n"
        "float32 angle_min\n"
        "float32 angle_max\n"
        "float32 angle_increment\n"
        "float32 time_increment\n"
        "float32 scan_time\n"
        "float32 range_min\n"
        "float32 range_max\n"
        "float32[] ranges\n"
        "float32[] intensities\n"
        "# sfm_capacity: 65536\n"
    ),
    "sensor_msgs/CameraInfo": (
        "Header header\n"
        "uint32 height\n"
        "uint32 width\n"
        "string distortion_model\n"
        "float64[] D\n"
        "float64[9] K\n"
        "float64[9] R\n"
        "float64[12] P\n"
        "uint32 binning_x\n"
        "uint32 binning_y\n"
        "RegionOfInterest roi\n"
        "# sfm_capacity: 2048\n"
    ),
    "stereo_msgs/DisparityImage": (
        "Header header\n"
        "sensor_msgs/Image image\n"
        "float32 f\n"
        "float32 t\n"
        "sensor_msgs/RegionOfInterest valid_window\n"
        "float32 min_disparity\n"
        "float32 max_disparity\n"
        "float32 delta_d\n"
        "# sfm_capacity: 8388608\n"
    ),
    "geometry_msgs/PoseWithCovariance": (
        "Pose pose\n"
        "float64[36] covariance\n"
    ),
    "geometry_msgs/TwistWithCovariance": (
        "Twist twist\n"
        "float64[36] covariance\n"
    ),
    "nav_msgs/Odometry": (
        "Header header\n"
        "string child_frame_id\n"
        "geometry_msgs/PoseWithCovariance pose\n"
        "geometry_msgs/TwistWithCovariance twist\n"
        "# sfm_capacity: 2048\n"
    ),
    "nav_msgs/Path": (
        "Header header\n"
        "geometry_msgs/PoseStamped[] poses\n"
        "# sfm_capacity: 1048576\n"
    ),
    "nav_msgs/MapMetaData": (
        "time map_load_time\n"
        "float32 resolution\n"
        "uint32 width\n"
        "uint32 height\n"
        "geometry_msgs/Pose origin\n"
    ),
    "nav_msgs/OccupancyGrid": (
        "Header header\n"
        "MapMetaData info\n"
        "int8[] data\n"
        "# sfm_capacity: 4194304\n"
    ),
    "tf2_msgs/TFMessage": (
        "geometry_msgs/TransformStamped[] transforms\n"
        "# sfm_capacity: 65536\n"
    ),
    "sensor_msgs/Imu": (
        "Header header\n"
        "geometry_msgs/Quaternion orientation\n"
        "float64[9] orientation_covariance\n"
        "geometry_msgs/Vector3 angular_velocity\n"
        "float64[9] angular_velocity_covariance\n"
        "geometry_msgs/Vector3 linear_acceleration\n"
        "float64[9] linear_acceleration_covariance\n"
        "# sfm_capacity: 512\n"
    ),
    "sensor_msgs/JointState": (
        "Header header\n"
        "string[] name\n"
        "float64[] position\n"
        "float64[] velocity\n"
        "float64[] effort\n"
        "# sfm_capacity: 65536\n"
    ),
    # The paper's running example (Fig. 1): a simplified Image whose SFM
    # memory layout is given field-by-field in Fig. 7.
    "rossf_bench/SimpleImage": (
        "string encoding\n"
        "uint32 height\n"
        "uint32 width\n"
        "uint8[] data\n"
        "# sfm_capacity: 8388608\n"
    ),
    # A stamped variant used by the latency experiments: the creation time
    # is "stored into the message" (Section 5.1).
    "rossf_bench/StampedImage": (
        "time stamp\n"
        "string encoding\n"
        "uint32 height\n"
        "uint32 width\n"
        "uint8[] data\n"
        "# sfm_capacity: 8388608\n"
    ),
}


def register_all(registry: TypeRegistry | None = None) -> TypeRegistry:
    """Register every library definition into ``registry`` (idempotent)."""
    registry = registry or default_registry
    for full_name, text in DEFINITIONS.items():
        registry.register_text(full_name, text)
    return registry


register_all()

# Plain (ROS-style) generated classes, exported by short name.
Header = generate_message_class("std_msgs/Header")
String = generate_message_class("std_msgs/String")
UInt32 = generate_message_class("std_msgs/UInt32")
Float64 = generate_message_class("std_msgs/Float64")
Time = generate_message_class("std_msgs/Time")
Point = generate_message_class("geometry_msgs/Point")
Point32 = generate_message_class("geometry_msgs/Point32")
Vector3 = generate_message_class("geometry_msgs/Vector3")
Quaternion = generate_message_class("geometry_msgs/Quaternion")
Pose = generate_message_class("geometry_msgs/Pose")
PoseStamped = generate_message_class("geometry_msgs/PoseStamped")
Transform = generate_message_class("geometry_msgs/Transform")
TransformStamped = generate_message_class("geometry_msgs/TransformStamped")
Twist = generate_message_class("geometry_msgs/Twist")
RegionOfInterest = generate_message_class("sensor_msgs/RegionOfInterest")
Image = generate_message_class("sensor_msgs/Image")
CompressedImage = generate_message_class("sensor_msgs/CompressedImage")
ChannelFloat32 = generate_message_class("sensor_msgs/ChannelFloat32")
PointCloud = generate_message_class("sensor_msgs/PointCloud")
PointField = generate_message_class("sensor_msgs/PointField")
PointCloud2 = generate_message_class("sensor_msgs/PointCloud2")
LaserScan = generate_message_class("sensor_msgs/LaserScan")
CameraInfo = generate_message_class("sensor_msgs/CameraInfo")
DisparityImage = generate_message_class("stereo_msgs/DisparityImage")
PoseWithCovariance = generate_message_class("geometry_msgs/PoseWithCovariance")
TwistWithCovariance = generate_message_class("geometry_msgs/TwistWithCovariance")
Odometry = generate_message_class("nav_msgs/Odometry")
Path = generate_message_class("nav_msgs/Path")
MapMetaData = generate_message_class("nav_msgs/MapMetaData")
OccupancyGrid = generate_message_class("nav_msgs/OccupancyGrid")
TFMessage = generate_message_class("tf2_msgs/TFMessage")
Imu = generate_message_class("sensor_msgs/Imu")
JointState = generate_message_class("sensor_msgs/JointState")
SimpleImage = generate_message_class("rossf_bench/SimpleImage")
StampedImage = generate_message_class("rossf_bench/StampedImage")

__all__ = [
    "DEFINITIONS",
    "register_all",
    "Header",
    "String",
    "UInt32",
    "Float64",
    "Time",
    "Point",
    "Point32",
    "Vector3",
    "Quaternion",
    "Pose",
    "PoseStamped",
    "Transform",
    "TransformStamped",
    "Twist",
    "RegionOfInterest",
    "Image",
    "CompressedImage",
    "ChannelFloat32",
    "PointCloud",
    "PointField",
    "PointCloud2",
    "LaserScan",
    "CameraInfo",
    "DisparityImage",
    "PoseWithCovariance",
    "TwistWithCovariance",
    "Odometry",
    "Path",
    "MapMetaData",
    "OccupancyGrid",
    "TFMessage",
    "Imu",
    "JointState",
    "SimpleImage",
    "StampedImage",
]
