"""Global message type registry and md5 fingerprints.

ROS identifies message types on the wire by an md5 fingerprint of the
canonical definition text; publisher and subscriber exchange fingerprints
during the TCPROS handshake and refuse to connect on mismatch.  We
reproduce genmsg's scheme: the fingerprint of a spec hashes its constant
declarations followed by its field declarations, with every nested complex
type name replaced by that type's own fingerprint.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Iterator, Optional

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    FieldType,
    MapType,
    PrimitiveType,
    StringType,
)
from repro.msg.idl import MessageSpec, parse_message_definition


class UnknownTypeError(KeyError):
    """Raised when a complex type is referenced but not registered."""


class TypeRegistry:
    """Thread-safe registry mapping full type names to specs.

    The registry also resolves structural questions that require the whole
    type graph (fixed-size-ness of nested messages, dependency closure,
    fingerprints) and caches their answers.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._specs: dict[str, MessageSpec] = {}
        self._md5_cache: dict[str, str] = {}
        self._fixed_size_cache: dict[str, bool] = {}
        self._flat_size_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, spec: MessageSpec) -> MessageSpec:
        """Register ``spec``; re-registering identical text is a no-op."""
        with self._lock:
            existing = self._specs.get(spec.full_name)
            if existing is not None:
                if existing.text != spec.text:
                    raise ValueError(
                        f"conflicting registration for {spec.full_name}"
                    )
                return existing
            self._specs[spec.full_name] = spec
            self._invalidate_caches()
            return spec

    def register_text(self, full_name: str, text: str) -> MessageSpec:
        """Parse and register a definition in one step."""
        return self.register(parse_message_definition(full_name, text))

    def get(self, full_name: str) -> MessageSpec:
        with self._lock:
            try:
                return self._specs[full_name]
            except KeyError:
                raise UnknownTypeError(full_name) from None

    def get_optional(self, full_name: str) -> Optional[MessageSpec]:
        with self._lock:
            return self._specs.get(full_name)

    def __contains__(self, full_name: str) -> bool:
        with self._lock:
            return full_name in self._specs

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._specs)

    def _invalidate_caches(self) -> None:
        self._md5_cache.clear()
        self._fixed_size_cache.clear()
        self._flat_size_cache.clear()

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def resolve(self, ftype: FieldType) -> Optional[MessageSpec]:
        """Return the spec behind a :class:`ComplexType`, else None."""
        if isinstance(ftype, ComplexType):
            return self.get(ftype.name)
        return None

    def is_fixed_size(self, ftype: FieldType) -> bool:
        """Whole-graph fixed-size check (arrays of fixed-size messages with
        declared lengths are fixed-size, etc.)."""
        if isinstance(ftype, PrimitiveType):
            return True
        if isinstance(ftype, (StringType, MapType)):
            return False
        if isinstance(ftype, ArrayType):
            return ftype.length is not None and self.is_fixed_size(
                ftype.element_type
            )
        if isinstance(ftype, ComplexType):
            return self._spec_fixed_size(ftype.name, frozenset())
        raise TypeError(f"unknown field type {ftype!r}")

    def _spec_fixed_size(self, full_name: str, stack: frozenset) -> bool:
        with self._lock:
            cached = self._fixed_size_cache.get(full_name)
            if cached is not None:
                return cached
        if full_name in stack:
            raise ValueError(f"recursive message type {full_name}")
        spec = self.get(full_name)
        stack = stack | {full_name}
        result = True
        for field in spec.fields:
            if not self._field_fixed_size(field.type, stack):
                result = False
                break
        with self._lock:
            self._fixed_size_cache[full_name] = result
        return result

    def _field_fixed_size(self, ftype: FieldType, stack: frozenset) -> bool:
        if isinstance(ftype, PrimitiveType):
            return True
        if isinstance(ftype, (StringType, MapType)):
            return False
        if isinstance(ftype, ArrayType):
            return ftype.length is not None and self._field_fixed_size(
                ftype.element_type, stack
            )
        if isinstance(ftype, ComplexType):
            return self._spec_fixed_size(ftype.name, stack)
        raise TypeError(f"unknown field type {ftype!r}")

    def dependency_closure(self, full_name: str) -> list[str]:
        """All complex types reachable from ``full_name`` in a stable
        topological-ish (DFS post-order) ordering, excluding the root."""
        seen: list[str] = []
        visited: set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for dep in self.get(name).complex_dependencies():
                visit(dep)
            seen.append(name)

        for dep in self.get(full_name).complex_dependencies():
            visit(dep)
        return seen

    # ------------------------------------------------------------------
    # md5 fingerprints (genmsg scheme)
    # ------------------------------------------------------------------
    def md5sum(self, full_name: str) -> str:
        with self._lock:
            cached = self._md5_cache.get(full_name)
        if cached is not None:
            return cached
        digest = self._compute_md5(full_name, frozenset())
        with self._lock:
            self._md5_cache[full_name] = digest
        return digest

    def _compute_md5(self, full_name: str, stack: frozenset) -> str:
        if full_name in stack:
            raise ValueError(f"recursive message type {full_name}")
        spec = self.get(full_name)
        stack = stack | {full_name}
        lines: list[str] = []
        for const in spec.constants:
            lines.append(f"{const.type.name} {const.name}={const.raw_value}")
        for field in spec.fields:
            lines.append(self._md5_field_line(field.name, field.type, stack))
        text = "\n".join(lines)
        return hashlib.md5(text.encode("utf-8")).hexdigest()

    def _md5_field_line(self, name: str, ftype: FieldType, stack: frozenset) -> str:
        if isinstance(ftype, ComplexType):
            return f"{self._compute_md5(ftype.name, stack)} {name}"
        if isinstance(ftype, ArrayType) and isinstance(
            ftype.element_type, ComplexType
        ):
            inner = self._compute_md5(ftype.element_type.name, stack)
            suffix = f"[{ftype.length}]" if ftype.length is not None else "[]"
            return f"{inner}{suffix} {name}"
        return f"{ftype.name} {name}"

    def full_text(self, full_name: str) -> str:
        """The concatenated definition text (root plus all dependencies),
        matching ROS's ``message_definition`` handshake field."""
        parts = [self.get(full_name).text]
        separator = "\n" + "=" * 80 + "\n"
        for dep in self.dependency_closure(full_name):
            parts.append(f"MSG: {dep}\n{self.get(dep).text}")
        return separator.join(parts)

    # ------------------------------------------------------------------
    # Field iteration helpers shared by serializers
    # ------------------------------------------------------------------
    def iter_flat_fields(self, full_name: str) -> Iterator[tuple[str, FieldType]]:
        """Yield ``(dotted_path, type)`` for every leaf field, flattening
        nested messages (arrays are leaves)."""
        for field in self.get(full_name).fields:
            yield from self._iter_flat(field.name, field.type)

    def _iter_flat(self, prefix: str, ftype: FieldType):
        if isinstance(ftype, ComplexType):
            for field in self.get(ftype.name).fields:
                yield from self._iter_flat(f"{prefix}.{field.name}", field.type)
        else:
            yield prefix, ftype


#: Process-wide registry used by the message library, generators and
#: serializers unless an explicit registry is supplied.
default_registry = TypeRegistry()
