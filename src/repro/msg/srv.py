"""The ``.srv`` service definition language.

A service definition is two message definitions separated by a ``---``
line: the request and the response.  As in ROS, the generated artifacts
are a request class, a response class and a service handle whose md5
fingerprint hashes the concatenated request+response definitions, checked
during the service handshake.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.msg.generator import generate_message_class
from repro.msg.idl import MessageDefinitionError, MessageSpec, parse_message_definition
from repro.msg.registry import TypeRegistry, default_registry

SEPARATOR = "---"


@dataclass
class ServiceSpec:
    """A parsed service definition."""

    full_name: str
    request: MessageSpec
    response: MessageSpec
    text: str

    @property
    def package(self) -> str:
        return self.full_name.split("/", 1)[0]

    @property
    def short_name(self) -> str:
        return self.full_name.split("/", 1)[-1]


def parse_service_definition(full_name: str, text: str) -> ServiceSpec:
    """Split a ``.srv`` body at ``---`` and parse both halves.

    >>> spec = parse_service_definition(
    ...     "pkg/AddTwoInts", "int64 a\\nint64 b\\n---\\nint64 sum\\n"
    ... )
    >>> spec.request.field_names(), spec.response.field_names()
    (['a', 'b'], ['sum'])
    """
    if "/" not in full_name:
        raise MessageDefinitionError(
            f"service name must be package-qualified: {full_name!r}"
        )
    request_lines: list[str] = []
    response_lines: list[str] = []
    current = request_lines
    seen_separator = False
    for line in text.splitlines():
        if line.strip() == SEPARATOR:
            if seen_separator:
                raise MessageDefinitionError(
                    f"{full_name}: multiple '---' separators"
                )
            seen_separator = True
            current = response_lines
            continue
        current.append(line)
    if not seen_separator:
        raise MessageDefinitionError(f"{full_name}: missing '---' separator")
    request = parse_message_definition(
        f"{full_name}Request", "\n".join(request_lines)
    )
    response = parse_message_definition(
        f"{full_name}Response", "\n".join(response_lines)
    )
    return ServiceSpec(full_name=full_name, request=request,
                       response=response, text=text)


class ServiceRegistry:
    """Registers service specs and their request/response message types."""

    def __init__(self, registry: Optional[TypeRegistry] = None) -> None:
        self.types = registry or default_registry
        self._services: dict[str, ServiceSpec] = {}

    def register_text(self, full_name: str, text: str) -> ServiceSpec:
        existing = self._services.get(full_name)
        if existing is not None:
            if existing.text != text:
                raise ValueError(f"conflicting registration for {full_name}")
            return existing
        spec = parse_service_definition(full_name, text)
        self.types.register(spec.request)
        self.types.register(spec.response)
        self._services[full_name] = spec
        return spec

    def get(self, full_name: str) -> ServiceSpec:
        return self._services[full_name]

    def __contains__(self, full_name: str) -> bool:
        return full_name in self._services

    def md5sum(self, full_name: str) -> str:
        """Service fingerprint: md5 over the request and response md5
        texts concatenated (the genmsg scheme)."""
        spec = self.get(full_name)
        combined = (
            self.types.md5sum(spec.request.full_name)
            + self.types.md5sum(spec.response.full_name)
        )
        return hashlib.md5(combined.encode("ascii")).hexdigest()


#: Standard services, transcribed from std_srvs plus a benchmark service.
SERVICE_DEFINITIONS: dict[str, str] = {
    "std_srvs/Trigger": (
        "# sfm_capacity: 64\n"
        "---\n"
        "bool success\n"
        "string message\n"
        "# sfm_capacity: 1024\n"
    ),
    "std_srvs/SetBool": (
        "bool data\n"
        "# sfm_capacity: 64\n"
        "---\n"
        "bool success\n"
        "string message\n"
        "# sfm_capacity: 1024\n"
    ),
    "rossf_bench/AddTwoInts": (
        "int64 a\n"
        "int64 b\n"
        "# sfm_capacity: 64\n"
        "---\n"
        "int64 sum\n"
        "# sfm_capacity: 64\n"
    ),
    "rossf_bench/GetImage": (
        "uint32 height\n"
        "uint32 width\n"
        "# sfm_capacity: 64\n"
        "---\n"
        "sensor_msgs/Image image\n"
        "# sfm_capacity: 8388608\n"
    ),
}

#: Process-wide service registry (parallels repro.msg.default_registry).
default_service_registry = ServiceRegistry()


def register_all(registry: Optional[ServiceRegistry] = None) -> ServiceRegistry:
    registry = registry or default_service_registry
    import repro.msg.library  # noqa: F401  (response types use the library)

    for full_name, text in SERVICE_DEFINITIONS.items():
        registry.register_text(full_name, text)
    return registry


register_all()


@dataclass(frozen=True)
class ServiceType:
    """A handle bundling the generated request/response classes, used by
    service servers and clients (plain-message flavour)."""

    spec: ServiceSpec
    request_class: type
    response_class: type
    md5sum: str


def service_type(full_name: str,
                 registry: Optional[ServiceRegistry] = None) -> ServiceType:
    """Resolve a registered service into its generated classes."""
    registry = registry or default_service_registry
    spec = registry.get(full_name)
    return ServiceType(
        spec=spec,
        request_class=generate_message_class(
            spec.request.full_name, registry.types
        ),
        response_class=generate_message_class(
            spec.response.full_name, registry.types
        ),
        md5sum=registry.md5sum(full_name),
    )


def sfm_service_type(full_name: str,
                     registry: Optional[ServiceRegistry] = None) -> ServiceType:
    """The SFM flavour: request/response as serialization-free classes."""
    from repro.sfm.generator import generate_sfm_class

    registry = registry or default_service_registry
    spec = registry.get(full_name)
    return ServiceType(
        spec=spec,
        request_class=generate_sfm_class(spec.request.full_name, registry.types),
        response_class=generate_sfm_class(spec.response.full_name, registry.types),
        md5sum=registry.md5sum(full_name),
    )
