"""Inter-machine network modeling (the Fig. 16 substrate).

The paper's inter-machine experiment uses two hosts joined by an Intel
82599 10 GbE NIC.  Offline we substitute a link model: ping-pong latency
decomposes into compute time (message construction and, for the baseline,
(de)serialization -- which we *measure*) plus wire time (which we *model*
as frame overhead + size/bandwidth + propagation delay).  Because ROS-SF
only changes the compute term, who-wins and the crossover behaviour are
preserved under any fixed wire model; see DESIGN.md.

:class:`~repro.net.link.NetworkLink` is the analytic model;
:class:`~repro.net.shaper.ShapedChannel` is an optional real-socket
token-bucket variant for end-to-end runs.
"""

from repro.net.link import LinkProfile, NetworkLink, GIGABIT, TEN_GIGABIT, HUNDRED_MEGABIT
from repro.net.shaper import ShapedChannel

__all__ = [
    "GIGABIT",
    "HUNDRED_MEGABIT",
    "LinkProfile",
    "NetworkLink",
    "ShapedChannel",
    "TEN_GIGABIT",
]
