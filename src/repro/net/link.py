"""Analytic network link model.

Transmitting ``n`` payload bytes over a link takes::

    per_message_overhead + ceil(n / mtu_payload) * per_frame_overhead
        + n * 8 / bandwidth_bps + propagation_delay

which captures the three effects the paper leans on (Section 1): high
bandwidth shrinks the ``n/bandwidth`` term tenfold-to-hundredfold while
the serialization time it is compared against stays put, so serialization
dominates on fast links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkProfile:
    """Static parameters of a point-to-point link."""

    name: str
    bandwidth_bps: float
    #: One-way propagation + switching delay in seconds.
    propagation_s: float = 30e-6
    #: Fixed per-message software/NIC overhead (syscalls, DMA setup).
    per_message_overhead_s: float = 20e-6
    #: Ethernet MTU payload per frame.
    mtu_payload: int = 1500
    #: Per-frame serialization-on-the-wire overhead (headers, gaps), bytes.
    per_frame_overhead_bytes: int = 78

    def transmit_time(self, payload_bytes: int) -> float:
        """One-way wire time in seconds for a payload of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        frames = max(1, math.ceil(payload_bytes / self.mtu_payload))
        wire_bytes = payload_bytes + frames * self.per_frame_overhead_bytes
        return (
            self.per_message_overhead_s
            + wire_bytes * 8.0 / self.bandwidth_bps
            + self.propagation_s
        )


#: The NIC of the paper's Section 5.2 testbed (Intel 82599, 10 GbE).
TEN_GIGABIT = LinkProfile(name="10GbE", bandwidth_bps=10e9)

#: Older-generation links used to discuss the bandwidth trend (Section 1).
GIGABIT = LinkProfile(name="1GbE", bandwidth_bps=1e9)
HUNDRED_MEGABIT = LinkProfile(name="100Mb", bandwidth_bps=100e6)


class NetworkLink:
    """A stateful link accumulating modeled wire time.

    The Fig. 16 harness runs real compute (construction, serialization,
    de-serialization) and calls :meth:`send` for every hop; the modeled
    wire seconds accumulate here and are added to the measured compute
    time per iteration.
    """

    def __init__(self, profile: LinkProfile) -> None:
        self.profile = profile
        self.messages_sent = 0
        self.bytes_sent = 0
        self.modeled_seconds = 0.0

    def send(self, payload_bytes: int) -> float:
        """Model one one-way transfer; returns its wire time in seconds."""
        elapsed = self.profile.transmit_time(payload_bytes)
        self.messages_sent += 1
        self.bytes_sent += payload_bytes
        self.modeled_seconds += elapsed
        return elapsed

    def reset(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.modeled_seconds = 0.0
