"""Token-bucket bandwidth shaping over an in-process byte channel.

An optional, real-time alternative to the analytic model: a pair of
endpoints connected by a queue whose drain rate is capped at the link
bandwidth.  Useful for end-to-end demonstrations where modeled time would
be invisible (e.g. the inter-machine example script run with wall-clock
pacing).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

from repro.net.link import LinkProfile


class ShapedChannel:
    """A unidirectional, bandwidth-shaped, length-framed byte channel."""

    def __init__(self, profile: LinkProfile, max_queued: int = 64) -> None:
        self.profile = profile
        self._queue: deque[tuple[bytes, float]] = deque()
        self._condition = threading.Condition()
        self._max_queued = max_queued
        self._closed = False

    def send(self, payload) -> None:
        """Enqueue a message; it becomes receivable after its modeled
        wire time has elapsed."""
        data = bytes(payload)
        ready_at = time.monotonic() + self.profile.transmit_time(len(data))
        with self._condition:
            if self._closed:
                raise ConnectionError("channel closed")
            while len(self._queue) >= self._max_queued:
                self._condition.wait(timeout=0.1)
                if self._closed:
                    raise ConnectionError("channel closed")
            self._queue.append((data, ready_at))
            self._condition.notify_all()

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Dequeue the next message, sleeping until its arrival time.

        Returns None on timeout or when the channel is closed and empty.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while not self._queue:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._condition.wait(timeout=remaining)
            data, ready_at = self._queue.popleft()
            self._condition.notify_all()
        delay = ready_at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        return data

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()
