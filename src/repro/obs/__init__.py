"""repro.obs: runtime observability for the whole middleware.

The paper's argument is a cost model -- where serialization, copy and
transport time go per message.  This package makes those costs visible on
a *running* graph instead of only in offline benchmark scripts:

- :mod:`repro.obs.metrics` -- a thread-safe registry of counters, gauges
  and fixed-bucket histograms with a Prometheus text renderer, designed
  for negligible hot-path overhead;
- :mod:`repro.obs.trace` -- per-message trace ids piggybacked on the
  connection/frame headers, recording publish/send/recv/decode/callback
  spans and exporting Chrome ``trace_event`` JSON;
- :mod:`repro.obs.instrument` -- scrape-time collectors that walk the
  live publishers/subscribers/bridges and the SFM message manager, so
  the hot paths pay plain attribute increments only;
- :mod:`repro.obs.export` -- an HTTP ``/metrics`` (+ ``/trace.json``)
  endpoint;
- :mod:`repro.obs.statistics` -- a periodic ``/statistics`` topic in the
  miniros graph;
- :mod:`repro.obs.top` -- the ``tools top`` live terminal view.

One kill switch governs everything: :func:`set_enabled` (or the
``REPRO_OBS=0`` environment variable) turns the registry instruments into
no-ops and stops new connections from negotiating the traced wire
prefix.
"""

from __future__ import annotations

from repro.obs import instrument, metrics, trace  # noqa: F401  (collectors register)
from repro.obs.metrics import global_registry
from repro.obs.trace import tracer


def set_enabled(on: bool) -> None:
    """Enable/disable all hot-path instrumentation (registry instruments
    become no-ops; *new* connections skip the traced wire prefix)."""
    global_registry.enabled = bool(on)


def enabled() -> bool:
    """Whether hot-path instrumentation is currently on."""
    return global_registry.enabled


__all__ = [
    "enabled",
    "global_registry",
    "instrument",
    "metrics",
    "set_enabled",
    "trace",
    "tracer",
]
