"""HTTP surfacing of the metrics registry and the tracer.

A tiny stdlib HTTP server (no new dependencies) exposing:

- ``/metrics``    -- the Prometheus text exposition (collectors run per
  scrape);
- ``/trace.json`` -- the tracer's current window as Chrome
  ``trace_event`` JSON (load at ``chrome://tracing``);
- ``/healthz``    -- liveness probe.

Usage::

    from repro.obs.export import MetricsServer
    server = MetricsServer()          # 127.0.0.1, ephemeral port
    print(server.url)                 # http://127.0.0.1:PORT
    ...
    server.close()
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs import metrics, trace

CONTENT_TYPE_METRICS = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves ``/metrics``, ``/trace.json`` and ``/healthz``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[metrics.Registry] = None,
        tracer: Optional[trace.Tracer] = None,
    ) -> None:
        self.registry = registry or metrics.global_registry
        self.tracer = tracer or trace.tracer
        owner = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    self._reply(200, CONTENT_TYPE_METRICS,
                                owner.registry.render())
                elif path == "/trace.json":
                    self._reply(200, "application/json",
                                owner.tracer.export_json())
                elif path == "/healthz":
                    self._reply(200, "text/plain; charset=utf-8", "ok\n")
                else:
                    self._reply(404, "text/plain; charset=utf-8",
                                "not found\n")

            def _reply(self, status: int, content_type: str,
                       body: str) -> None:
                encoded = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(encoded)))
                self.end_headers()
                self.wfile.write(encoded)

            def log_message(self, *_args) -> None:
                pass  # scrapes are not worth a stderr line each

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name=f"obs-metrics:{self.port}",
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
