"""Instrument definitions and scrape-time collectors.

Two tiers, matching the hot-path contract of :mod:`repro.obs.metrics`:

- **Hot-path instruments** (the latency histogram, the intra-process
  delivery counter) are observed per message from cached label children --
  one flag check + one lock + one add.
- **Everything else** is *collector-populated*: publishers, subscribers
  and bridge servers register themselves in weak sets
  (:func:`track_publisher` & co.) and already maintain plain integer
  attributes for their own introspection (``published_count``,
  ``wire_bytes``, ...).  At scrape time the collector walks the live
  objects, calls their public ``stats()`` / ``stats_snapshot()`` /
  ``snapshot()`` APIs and rewrites the families.  The hot paths never see
  the registry at all for these.

Families are cleared and repopulated on each scrape, so cells belonging
to dead objects vanish from the exposition instead of flat-lining.
"""

from __future__ import annotations

import threading
import weakref

from repro.obs.metrics import global_registry

# ----------------------------------------------------------------------
# Hot-path instruments (updated per message by the topic layer)
# ----------------------------------------------------------------------
pubsub_latency = global_registry.histogram(
    "miniros_pubsub_latency_seconds",
    "Publish-to-callback latency per topic (needs the traced wire prefix).",
    labels=("topic",),
)

intraprocess_deliveries = global_registry.counter(
    "miniros_intraprocess_deliveries_total",
    "Messages handed over by reference on the intra-process bus.",
)


def latency_child(topic: str):
    """The cached per-topic latency cell (resolve once per subscriber,
    observe per message)."""
    return pubsub_latency.labels(topic=topic)


# ----------------------------------------------------------------------
# Collector-populated families
# ----------------------------------------------------------------------
published_messages = global_registry.counter(
    "miniros_published_messages_total",
    "Messages published per topic.", labels=("topic",),
)
published_bytes = global_registry.counter(
    "miniros_published_bytes_total",
    "Encoded payload bytes published per topic.", labels=("topic",),
)
publish_drops = global_registry.counter(
    "miniros_publish_drops_total",
    "Deliveries dropped by publisher queue overflow or slot reclaim.",
    labels=("topic",),
)
publisher_links = global_registry.gauge(
    "miniros_publisher_links",
    "Connected subscriber links per advertised topic.", labels=("topic",),
)
publisher_queue_depth = global_registry.gauge(
    "miniros_publisher_queue_depth",
    "Queued outbound deliveries across a topic's links.", labels=("topic",),
)
received_messages = global_registry.counter(
    "miniros_received_messages_total",
    "Messages delivered to subscriber callbacks per topic.",
    labels=("topic",),
)
subscriber_links = global_registry.gauge(
    "miniros_subscriber_links",
    "Connected publisher links per subscribed topic.", labels=("topic",),
)
subscriber_stale_drops = global_registry.counter(
    "miniros_subscriber_stale_drops_total",
    "SHMROS slot notifications skipped because the slot was reclaimed.",
    labels=("topic",),
)
received_bytes = global_registry.counter(
    "miniros_received_bytes_total",
    "Payload bytes delivered to subscribers per topic (socket transports).",
    labels=("topic",),
)
subscriber_transport = global_registry.gauge(
    "miniros_subscriber_transport_links",
    "Connected subscriber links per (topic, transport) -- the transport "
    "planner's decisions are visible here as links move between cells.",
    labels=("topic", "transport"),
)
link_state = global_registry.gauge(
    "miniros_link_state",
    "Worst link health per (topic, role): 0 healthy, 1 degraded, "
    "2 reconnecting, 3 dead.",
    labels=("topic", "role"),
)
link_retries = global_registry.counter(
    "miniros_link_retries_total",
    "Reconnect attempts made by subscriber links per topic.",
    labels=("topic",),
)

#: Numeric encoding of ``link_state`` for the gauge (aggregated by max:
#: one sick subscription marks the whole topic).
LINK_STATE_CODES = {"healthy": 0, "degraded": 1, "reconnecting": 2, "dead": 3}

# ----------------------------------------------------------------------
# Graph plane (repro.graphplane): shards, replication, routing daemon
# ----------------------------------------------------------------------
graphplane_log_records = global_registry.counter(
    "miniros_graphplane_log_records_total",
    "Registration-log records appended per shard leader.",
    labels=("shard",),
)
graphplane_replication_lag = global_registry.gauge(
    "miniros_graphplane_replication_lag",
    "Log records the shard's follower has not yet applied.",
    labels=("shard",),
)
graphplane_failovers = global_registry.counter(
    "miniros_graphplane_failovers_total",
    "Replica promotions (a shard leader was declared dead).",
    labels=("shard",),
)
graphplane_proxy_failovers = global_registry.counter(
    "miniros_graphplane_proxy_failovers_total",
    "Client-side candidate switches inside a failover master proxy.",
)
routed_mux_links = global_registry.gauge(
    "miniros_routed_mux_links",
    "Live multiplexed host-pair connections per RouteD (both roles).",
    labels=("routed",),
)
routed_channels = global_registry.gauge(
    "miniros_routed_channels",
    "Open tunneled topic-link channels per RouteD (both roles).",
    labels=("routed",),
)
routed_frames = global_registry.counter(
    "miniros_routed_frames_total",
    "Mux frames forwarded per RouteD.", labels=("routed",),
)
routed_bytes = global_registry.counter(
    "miniros_routed_bytes_total",
    "Tunneled payload bytes forwarded per RouteD.", labels=("routed",),
)

sfm_live_records = global_registry.gauge(
    "miniros_sfm_live_records",
    "Live serialization-free message records in the global manager.",
)
sfm_live_bytes = global_registry.gauge(
    "miniros_sfm_live_bytes", "Bytes used by live SFM messages.",
)
sfm_pool_buffers = global_registry.gauge(
    "miniros_sfm_pool_buffers", "Recycled buffers shelved in the pool.",
)
sfm_pool_bytes = global_registry.gauge(
    "miniros_sfm_pool_bytes", "Bytes held by the recycling pool.",
)
sfm_events = global_registry.counter(
    "miniros_sfm_events_total",
    "Lifetime SFM manager events (allocated, adopted, expansions, "
    "pool_hits, ...).",
    labels=("event",),
)

bridge_clients = global_registry.gauge(
    "miniros_bridge_clients", "Connected bridge gateway clients.",
)
bridge_published = global_registry.counter(
    "miniros_bridge_published_total",
    "Messages published into the graph via the bridge, per topic.",
    labels=("topic",),
)
bridge_sub_sent = global_registry.counter(
    "miniros_bridge_subscription_sent_total",
    "Bridge deliveries written to external clients.",
    labels=("topic", "codec"),
)
bridge_sub_wire_bytes = global_registry.counter(
    "miniros_bridge_subscription_wire_bytes_total",
    "Bytes written to external clients per (topic, codec).",
    labels=("topic", "codec"),
)
bridge_sub_dropped = global_registry.counter(
    "miniros_bridge_subscription_dropped_total",
    "Bridge deliveries dropped by per-subscription queue bounds.",
    labels=("topic", "codec"),
)
bridge_transport_clients = global_registry.gauge(
    "miniros_bridge_transport_clients",
    "Connected bridge clients per transport (tcp, ws, sse).",
    labels=("transport",),
)
bridge_queue_depth = global_registry.gauge(
    "miniros_bridge_queue_depth",
    "Deliveries queued toward external clients, summed per transport.",
    labels=("transport",),
)
bridge_evictions = global_registry.counter(
    "miniros_bridge_evictions_total",
    "Sessions evicted by the slow-client policy.",
)
bridge_ws_auth_failures = global_registry.counter(
    "miniros_bridge_ws_auth_failures_total",
    "WebSocket/SSE requests rejected by token auth.",
)
bridge_ws_rate_limited = global_registry.counter(
    "miniros_bridge_ws_rate_limited_total",
    "Ops refused by the front-door token buckets, per op class.",
    labels=("op_class",),
)
bridge_ws_handshakes = global_registry.counter(
    "miniros_bridge_ws_handshakes_total",
    "Completed WebSocket upgrades and SSE stream starts.",
)

# ----------------------------------------------------------------------
# Live-object tracking
# ----------------------------------------------------------------------
_tracked_lock = threading.Lock()
_publishers: "weakref.WeakSet" = weakref.WeakSet()
_subscribers: "weakref.WeakSet" = weakref.WeakSet()
_bridges: "weakref.WeakSet" = weakref.WeakSet()


def track_publisher(publisher) -> None:
    with _tracked_lock:
        _publishers.add(publisher)


def track_subscriber(subscriber) -> None:
    with _tracked_lock:
        _subscribers.add(subscriber)


def track_bridge(bridge) -> None:
    with _tracked_lock:
        _bridges.add(bridge)


def _tracked(pool: "weakref.WeakSet") -> list:
    with _tracked_lock:
        return list(pool)


# ----------------------------------------------------------------------
# The collector
# ----------------------------------------------------------------------
def _add(totals: dict, key, amount) -> None:
    totals[key] = totals.get(key, 0) + amount


def _collect_pubsub() -> None:
    for family in (published_messages, published_bytes, publish_drops,
                   publisher_links, publisher_queue_depth,
                   received_messages, received_bytes, subscriber_links,
                   subscriber_stale_drops, subscriber_transport,
                   link_state, link_retries):
        family.clear()
    msgs: dict = {}
    nbytes: dict = {}
    drops: dict = {}
    links: dict = {}
    depth: dict = {}
    pub_state: dict = {}
    for publisher in _tracked(_publishers):
        stats = publisher.stats()
        topic = stats["topic"]
        _add(msgs, topic, stats["messages"])
        _add(nbytes, topic, stats["bytes"])
        _add(drops, topic, stats["drops"])
        _add(links, topic, stats["connections"])
        _add(depth, topic, stats["queue_depth"])
        code = LINK_STATE_CODES.get(stats.get("link_state", "healthy"), 0)
        pub_state[topic] = max(pub_state.get(topic, 0), code)
    for topic, value in msgs.items():
        published_messages.labels(topic=topic).set_total(value)
        published_bytes.labels(topic=topic).set_total(nbytes[topic])
        publish_drops.labels(topic=topic).set_total(drops[topic])
        publisher_links.labels(topic=topic).set(links[topic])
        publisher_queue_depth.labels(topic=topic).set(depth[topic])
        link_state.labels(topic=topic, role="publisher").set(pub_state[topic])
    received: dict = {}
    recv_bytes: dict = {}
    sub_links: dict = {}
    stale: dict = {}
    sub_state: dict = {}
    retries: dict = {}
    transports: dict = {}
    for subscriber in _tracked(_subscribers):
        stats = subscriber.stats()
        topic = stats["topic"]
        _add(received, topic, stats["messages"])
        _add(recv_bytes, topic, stats.get("bytes", 0))
        _add(sub_links, topic, stats["connections"])
        _add(stale, topic, stats["stale_drops"])
        _add(retries, topic, stats.get("retries", 0))
        for transport, count in stats.get("transports", {}).items():
            if transport:
                _add(transports, (topic, transport), count)
        code = LINK_STATE_CODES.get(stats.get("link_state", "healthy"), 0)
        sub_state[topic] = max(sub_state.get(topic, 0), code)
    for topic, value in received.items():
        received_messages.labels(topic=topic).set_total(value)
        received_bytes.labels(topic=topic).set_total(recv_bytes[topic])
        subscriber_links.labels(topic=topic).set(sub_links[topic])
        subscriber_stale_drops.labels(topic=topic).set_total(stale[topic])
        link_state.labels(topic=topic, role="subscriber").set(sub_state[topic])
        link_retries.labels(topic=topic).set_total(retries[topic])
    for (topic, transport), count in transports.items():
        subscriber_transport.labels(topic=topic, transport=transport).set(count)


def _collect_sfm() -> None:
    from repro.sfm.manager import global_message_manager

    snap = global_message_manager.snapshot()
    sfm_live_records.set(snap["live_records"])
    sfm_live_bytes.set(snap["live_bytes"])
    sfm_pool_buffers.set(snap["pool_buffers"])
    sfm_pool_bytes.set(snap["pool_bytes"])
    sfm_events.clear()
    for event, value in snap["counters"].items():
        sfm_events.labels(event=event).set_total(value)


def _collect_bridges() -> None:
    for family in (bridge_published, bridge_sub_sent,
                   bridge_sub_wire_bytes, bridge_sub_dropped,
                   bridge_transport_clients, bridge_queue_depth,
                   bridge_ws_rate_limited):
        family.clear()
    clients = 0
    evictions = 0
    auth_failures = 0
    handshakes = 0
    by_transport: dict = {}
    depth: dict = {}
    limited: dict = {}
    published: dict = {}
    sent: dict = {}
    wire: dict = {}
    dropped: dict = {}
    for bridge in _tracked(_bridges):
        snap = bridge.stats_snapshot()
        clients += snap["clients"]
        evictions += snap.get("evictions", 0)
        for transport, count in snap.get("clients_by_transport", {}).items():
            _add(by_transport, transport, count)
        for sess in snap.get("sessions", ()):
            _add(depth, sess["transport"], sess["queue_depth"])
        ws = snap.get("ws")
        if ws:
            auth_failures += ws["auth_failures"]
            handshakes += ws["handshakes"]
            for op_class, count in ws["rate_limited"].items():
                _add(limited, op_class, count)
        for adv in snap["advertisements"]:
            _add(published, adv["topic"], adv["published"])
        for sub in snap["subscriptions"]:
            key = (sub["topic"], sub["codec"])
            _add(sent, key, sub["sent"])
            _add(wire, key, sub["wire_bytes"])
            _add(dropped, key, sub["dropped"])
    bridge_clients.set(clients)
    bridge_evictions.set_total(evictions)
    bridge_ws_auth_failures.set_total(auth_failures)
    bridge_ws_handshakes.set_total(handshakes)
    for transport, count in by_transport.items():
        bridge_transport_clients.labels(transport=transport).set(count)
        bridge_queue_depth.labels(transport=transport).set(
            depth.get(transport, 0)
        )
    for op_class, count in limited.items():
        bridge_ws_rate_limited.labels(op_class=op_class).set_total(count)
    for topic, value in published.items():
        bridge_published.labels(topic=topic).set_total(value)
    for (topic, codec), value in sent.items():
        bridge_sub_sent.labels(topic=topic, codec=codec).set_total(value)
        bridge_sub_wire_bytes.labels(
            topic=topic, codec=codec
        ).set_total(wire[(topic, codec)])
        bridge_sub_dropped.labels(
            topic=topic, codec=codec
        ).set_total(dropped[(topic, codec)])


def collect_all() -> None:
    """One scrape's worth of collection (registered on the global
    registry; each part is isolated so one failure cannot hide the
    others)."""
    for part in (_collect_pubsub, _collect_sfm, _collect_bridges):
        try:
            part()
        except Exception:
            pass


global_registry.register_collector(collect_all)
