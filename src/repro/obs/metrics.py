"""A thread-safe metrics registry with a Prometheus text renderer.

Three instrument kinds -- :class:`Counter`, :class:`Gauge` and
:class:`Histogram` (fixed buckets) -- grouped into *families* keyed by
label values, the Prometheus data model.  The hot-path contract:

- an increment/observe is one ``enabled`` flag check, one lock
  acquisition and one integer add -- no allocation, no string work;
- with the registry disabled every instrument method returns
  immediately after the flag check, so the instrumented and
  uninstrumented paths differ by a single attribute load;
- anything more expensive (walking live publishers, snapshotting the
  SFM manager) belongs in a *collector* -- a callable the registry runs
  at render (scrape) time, never per message.

Label children are resolved once and cached by the call site
(``family.labels(topic=...)`` at init, ``child.inc()`` per message), so
the per-message path never touches a dict.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Callable, Iterable, Optional, Sequence

#: Default histogram bounds (seconds): tuned for pub/sub latencies from
#: tens of microseconds (intra-machine SHMROS) to whole seconds (a
#: saturated bridge client).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _fmt(value) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _labels_suffix(labelnames: Sequence[str], labelvalues: Sequence[str],
                   extra: Optional[tuple[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape(value)}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Child:
    """One (labelvalues -> value) cell of a family."""

    __slots__ = ("_family", "_labelvalues", "_lock", "_value")

    def __init__(self, family: "_Family", labelvalues: tuple[str, ...]):
        self._family = family
        self._labelvalues = labelvalues
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self):
        return self._value


class _CounterChild(_Child):
    def inc(self, amount: int = 1) -> None:
        if not self._family.registry.enabled:
            return
        with self._lock:
            self._value += amount

    def set_total(self, value) -> None:
        """Overwrite the running total -- for scrape-time collectors that
        mirror an externally maintained monotonic counter (a publisher's
        ``published_count``), never for hot-path call sites."""
        with self._lock:
            self._value = value


class _GaugeChild(_Child):
    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        if not self._family.registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        self.inc(-amount)


class _HistogramChild(_Child):
    __slots__ = ("_counts", "_sum")

    def __init__(self, family: "_Family", labelvalues: tuple[str, ...]):
        super().__init__(family, labelvalues)
        self._counts = [0] * (len(family.buckets) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not self._family.registry.enabled:
            return
        index = bisect.bisect_left(self._family.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._value += 1  # observation count

    @property
    def count(self) -> int:
        return self._value

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) observation counts, +Inf last."""
        with self._lock:
            return list(self._counts)


class _Family:
    """All children of one metric name (one per label-value tuple)."""

    kind = "untyped"
    child_class = _Child

    def __init__(self, registry: "Registry", name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.registry = registry
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()

    def labels(self, **labelvalues):
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self.child_class(self, key)
                self._children[key] = child
            return child

    def _default_child(self):
        """The single child of an unlabelled family (created lazily so
        the family itself can be used as the instrument)."""
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels()")
        return self.labels()

    def clear(self) -> None:
        """Drop every child (collectors repopulate on each scrape, so
        cells for dead objects disappear from the exposition)."""
        with self._lock:
            self._children.clear()

    def children(self) -> dict[tuple[str, ...], _Child]:
        with self._lock:
            return dict(self._children)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key in sorted(self.children()):
            lines.extend(self._render_child(key, self._children[key]))
        return lines

    def _render_child(self, key, child) -> list[str]:
        suffix = _labels_suffix(self.labelnames, key)
        return [f"{self.name}{suffix} {_fmt(child.value)}"]


class Counter(_Family):
    kind = "counter"
    child_class = _CounterChild

    def inc(self, amount: int = 1) -> None:
        self._default_child().inc(amount)

    def set_total(self, value) -> None:
        self._default_child().set_total(value)

    @property
    def value(self):
        return self._default_child().value


class Gauge(_Family):
    kind = "gauge"
    child_class = _GaugeChild

    def set(self, value) -> None:
        self._default_child().set(value)

    def inc(self, amount=1) -> None:
        self._default_child().inc(amount)

    def dec(self, amount=1) -> None:
        self._default_child().dec(amount)

    @property
    def value(self):
        return self._default_child().value


class Histogram(_Family):
    kind = "histogram"
    child_class = _HistogramChild

    def __init__(self, registry, name, help_text, labelnames=(),
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(registry, name, help_text, labelnames)
        bounds = tuple(sorted(buckets or DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def _render_child(self, key, child) -> list[str]:
        counts = child.bucket_counts()
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            suffix = _labels_suffix(
                self.labelnames, key, ("le", f"{bound:.10g}")
            )
            lines.append(f"{self.name}_bucket{suffix} {cumulative}")
        cumulative += counts[-1]
        inf_suffix = _labels_suffix(self.labelnames, key, ("le", "+Inf"))
        lines.append(f"{self.name}_bucket{inf_suffix} {cumulative}")
        plain = _labels_suffix(self.labelnames, key)
        lines.append(f"{self.name}_sum{plain} {_fmt(child.sum)}")
        lines.append(f"{self.name}_count{plain} {child.count}")
        return lines


class Registry:
    """A namespace of metric families plus scrape-time collectors."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Family constructors (idempotent: re-registering the same name and
    # kind returns the existing family, so module reloads are safe)
    # ------------------------------------------------------------------
    def _family(self, cls, name, help_text, labels, **kwargs) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or \
                        existing.labelnames != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different kind or label set"
                    )
                return existing
            family = cls(self, name, help_text, labels, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str,
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._family(Histogram, name, help_text, labels,
                            buckets=buckets)

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return list(self._families.values())

    # ------------------------------------------------------------------
    # Collectors
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a zero-arg callable run before each render; it reads
        live objects and sets family values (the cheap-hot-path/expensive-
        scrape split)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector: Callable[[], None]) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def collect(self) -> None:
        """Run every collector (a failing collector is skipped, never
        fatal to the scrape)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition of every family (collectors
        run first)."""
        self.collect()
        lines: list[str] = []
        for family in sorted(self.families(), key=lambda f: f.name):
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


from repro import config as _config

#: The process-wide registry the middleware instruments against.
global_registry = Registry(enabled=_config.obs())
