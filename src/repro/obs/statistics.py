"""The ``/statistics`` topic: periodic in-graph observability.

Publishes a ``std_msgs/String`` carrying a JSON document with the owning
node's per-topic counters (:meth:`NodeHandle.topic_stats`) and the global
SFM manager snapshot -- so any graph participant (or ``tools top``) can
watch a node's health without an HTTP side channel, mirroring ROS's
``/statistics`` convention.
"""

from __future__ import annotations

import json
import threading
import time


def statistics_document(node) -> dict:
    """One sample: the node's topic stats plus the SFM manager state."""
    from repro.sfm.manager import global_message_manager

    doc = node.topic_stats()
    doc["stamp"] = time.time()
    snap = global_message_manager.snapshot()
    doc["sfm"] = {
        "live_records": snap["live_records"],
        "live_bytes": snap["live_bytes"],
        "pool_buffers": snap["pool_buffers"],
        "pool_bytes": snap["pool_bytes"],
        "counters": snap["counters"],
    }
    return doc


class StatisticsPublisher:
    """Periodically publishes a node's statistics document.

    The publisher thread wakes every ``interval`` seconds; ``close()``
    stops it and unadvertises.  ``publish_once()`` is exposed for tests
    and manual sampling.
    """

    def __init__(self, node, topic: str = "/statistics",
                 interval: float = 1.0) -> None:
        from repro.msg.library import String

        self.node = node
        self.topic = topic
        self.interval = interval
        self.publisher = node.advertise(topic, String, queue_size=10)
        self._msg_class = String
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"obs-stats:{node.name}",
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.publish_once()
            except Exception:
                # A transient publish failure (node shutting down) must
                # not kill the sampling thread.
                if self._stop.is_set():
                    return

    def publish_once(self) -> dict:
        doc = statistics_document(self.node)
        msg = self._msg_class()
        msg.data = json.dumps(doc, separators=(",", ":"))
        self.publisher.publish(msg)
        return doc

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        try:
            self.publisher.unadvertise()
        except Exception:
            pass

    def __enter__(self) -> "StatisticsPublisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
