"""``tools top``: a live terminal view of the graph.

One helper node taps every topic the master knows about with *raw*
subscriptions (payload bytes, no decoding -- the gateway's
forward-without-deserializing trick), counts messages and bytes, and
renders a refreshing table of per-topic rate and bandwidth plus the SFM
manager state.

Wire-format sniffing: a raw subscription still negotiates the wire
format from its class, so tapping an SFM topic with the plain class is
rejected in the handshake ("wire format mismatch").  The monitor watches
for that link error and re-subscribes with the ``@sfm`` flavour of the
same type -- no configuration needed.

Nodes running a :class:`~repro.obs.statistics.StatisticsPublisher` are
also surfaced: the monitor parses ``/statistics`` JSON and shows each
reporting node's SFM live-record count.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional

_FORMAT_MISMATCH = "wire format mismatch"
STATISTICS_TOPIC = "/statistics"


class _Tap:
    """One raw subscription counting a topic's traffic."""

    def __init__(self, monitor: "TopMonitor", topic: str,
                 type_name: str) -> None:
        self.monitor = monitor
        self.topic = topic
        self.type_name = type_name
        self.flavour = ""  # "" = plain, "@sfm" after a format flip
        self.count = 0
        self.bytes = 0
        self.error: Optional[str] = None
        #: Previous sample's (monotonic, count, bytes) for rate deltas.
        self._mark = (time.monotonic(), 0, 0)
        self.subscriber = None
        self._subscribe()

    def _subscribe(self) -> None:
        from repro.bridge.server import resolve_msg_class

        try:
            msg_class = resolve_msg_class(
                self.type_name + self.flavour, self.monitor.registry
            )
        except Exception as exc:
            self.error = str(exc)
            return
        self.subscriber = self.monitor.node.subscribe(
            self.topic, msg_class, self._on_raw, raw=True
        )

    def _on_raw(self, payload: bytes) -> None:
        self.count += 1
        self.bytes += len(payload)

    def check_format(self) -> None:
        """Flip to the @sfm class when the plain-format handshake was
        rejected (the publisher told us its wire format is ``sfm``)."""
        if self.subscriber is None or self.flavour:
            return
        errors = dict(self.subscriber.link_errors)
        if any(_FORMAT_MISMATCH in str(err) for err in errors.values()):
            self.subscriber.unsubscribe()
            self.flavour = "@sfm"
            self._subscribe()

    def rates(self) -> tuple[float, float]:
        """(messages/s, bytes/s) since the previous call."""
        now = time.monotonic()
        last_t, last_count, last_bytes = self._mark
        self._mark = (now, self.count, self.bytes)
        elapsed = now - last_t
        if elapsed <= 0:
            return 0.0, 0.0
        return (
            (self.count - last_count) / elapsed,
            (self.bytes - last_bytes) / elapsed,
        )

    def close(self) -> None:
        if self.subscriber is not None:
            self.subscriber.unsubscribe()
            self.subscriber = None


def _human_bytes(rate: float) -> str:
    for unit in ("B/s", "KiB/s", "MiB/s", "GiB/s"):
        if rate < 1024.0 or unit == "GiB/s":
            return f"{rate:.1f} {unit}"
        rate /= 1024.0
    return f"{rate:.1f} GiB/s"  # pragma: no cover - unreachable


def render_bridge_clients(snapshot: dict) -> str:
    """The per-client gateway table (shared by ``tools top --bridge``
    and ``tools bridge --stats-interval``)."""
    lines = [
        f"{'CLIENT':<24} {'TRANSPORT':<10} {'CODEC':<6} {'SUBS':>5} "
        f"{'QDEPTH':>7} {'DROPS':>7} {'SHED':>6}"
    ]
    for sess in snapshot.get("sessions", ()):
        lines.append(
            f"{sess['peer']:<24} {sess['transport']:<10} "
            f"{sess['codec']:<6} {sess['subscriptions']:>5} "
            f"{sess['queue_depth']:>7} {sess['dropped']:>7} "
            f"{sess['shed']:>6}"
        )
    if not snapshot.get("sessions"):
        lines.append("(no bridge clients)")
    summary = (
        f"bridge: {snapshot.get('clients', 0)} client(s) "
        + " ".join(
            f"{transport}={count}"
            for transport, count in sorted(
                snapshot.get("clients_by_transport", {}).items()
            )
        )
        + f"  evictions={snapshot.get('evictions', 0)}"
    )
    ws = snapshot.get("ws")
    if ws:
        limited = sum(ws["rate_limited"].values())
        summary += (
            f"  ws[handshakes={ws['handshakes']} "
            f"auth_failures={ws['auth_failures']} "
            f"rate_limited={limited}]"
        )
    lines.append(summary)
    return "\n".join(lines)


class TopMonitor:
    """The engine behind ``tools top`` (separated from the CLI so tests
    can drive ``sample()``/``render()`` without a terminal)."""

    def __init__(self, master_uri: str, node_name: Optional[str] = None,
                 registry=None, bridge: Optional[str] = None) -> None:
        from repro.msg.registry import default_registry
        from repro.ros.node import NodeHandle

        self.master_uri = master_uri
        self.registry = registry or default_registry
        self.node = NodeHandle(
            node_name or f"obs_top_{os.getpid()}", master_uri
        )
        self._taps: dict[str, _Tap] = {}
        #: Latest parsed /statistics document per reporting node.
        self.node_reports: dict[str, dict] = {}
        self._stats_sub = None
        #: Optional "host:port" of a gateway whose per-client counters
        #: are appended to every sample (via the ``stats`` wire op).
        self._bridge_addr = bridge
        self._bridge_client = None

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def refresh_topics(self) -> None:
        """Tap any topic the master knows that we are not watching yet,
        and re-check wire formats on existing taps."""
        from repro.ros.introspection import list_topics

        for topic, type_name in list_topics(self.master_uri):
            if topic == STATISTICS_TOPIC:
                self._ensure_statistics_tap()
                continue
            if topic not in self._taps and type_name:
                self._taps[topic] = _Tap(self, topic, type_name)
        for tap in self._taps.values():
            tap.check_format()

    def _ensure_statistics_tap(self) -> None:
        if self._stats_sub is not None:
            return
        from repro.msg.library import String

        def on_stats(msg) -> None:
            try:
                doc = json.loads(msg.data)
                self.node_reports[doc.get("node", "?")] = doc
            except (ValueError, AttributeError):
                pass

        self._stats_sub = self.node.subscribe(
            STATISTICS_TOPIC, String, on_stats
        )

    # ------------------------------------------------------------------
    # Sampling / rendering
    # ------------------------------------------------------------------
    def sample(self) -> dict:
        """One table's worth of data (rates are deltas since the last
        sample)."""
        from repro.sfm.manager import global_message_manager

        from repro.ros.planner import last_decision_for

        rows = []
        for topic in sorted(self._taps):
            tap = self._taps[topic]
            rate, bandwidth = tap.rates()
            transports = (
                tap.subscriber._transport_counts()
                if tap.subscriber is not None else {}
            )
            transport = "/".join(
                name if count == 1 else f"{name}x{count}"
                for name, count in sorted(transports.items())
            ) or "-"
            decision = last_decision_for(topic)
            rows.append({
                "topic": topic,
                "type": tap.type_name + tap.flavour,
                "messages": tap.count,
                "bytes": tap.bytes,
                "rate": rate,
                "bandwidth": bandwidth,
                "transport": transport,
                #: The in-process planner's latest verdict for the topic
                #: ("-" while it has none): ``SHMROS:large-payloads``.
                "plan": (
                    f"{decision['to']}:{decision['reason']}"
                    if decision is not None else "-"
                ),
                "state": (
                    tap.subscriber.link_state
                    if tap.subscriber is not None else "error"
                ),
            })
        snap = global_message_manager.snapshot()
        return {
            "rows": rows,
            "sfm": {
                "live_records": snap["live_records"],
                "live_bytes": snap["live_bytes"],
                "pool_buffers": snap["pool_buffers"],
            },
            "nodes": dict(self.node_reports),
            "bridge": self._bridge_stats(),
        }

    def _bridge_stats(self) -> Optional[dict]:
        """The attached gateway's stats snapshot (None when no --bridge
        was given or the gateway is unreachable)."""
        if self._bridge_addr is None:
            return None
        from repro.bridge.client import BridgeClient, BridgeError

        if self._bridge_client is None:
            host, _, port = self._bridge_addr.rpartition(":")
            try:
                self._bridge_client = BridgeClient(
                    host or "127.0.0.1", int(port), timeout=3.0
                )
            except (OSError, ValueError, BridgeError) as exc:
                return {"error": f"bridge {self._bridge_addr}: {exc}"}
        try:
            return self._bridge_client.stats()
        except (OSError, BridgeError) as exc:
            self._bridge_client.close()
            self._bridge_client = None
            return {"error": f"bridge {self._bridge_addr}: {exc}"}

    def render(self, sample: dict) -> str:
        lines = [
            f"{'TOPIC':<32} {'TYPE':<28} {'MSGS':>8} "
            f"{'RATE':>10} {'BANDWIDTH':>12} {'TRANSPORT':<12} "
            f"{'PLAN':<22} {'STATE':<12}"
        ]
        for row in sample["rows"]:
            lines.append(
                f"{row['topic']:<32} {row['type']:<28} "
                f"{row['messages']:>8} {row['rate']:>8.1f}Hz "
                f"{_human_bytes(row['bandwidth']):>12} "
                f"{row.get('transport', '-'):<12} "
                f"{row.get('plan', '-'):<22} "
                f"{row.get('state', 'healthy'):<12}"
            )
        if not sample["rows"]:
            lines.append("(no topics)")
        sfm = sample["sfm"]
        lines.append(
            f"sfm: {sfm['live_records']} live records, "
            f"{sfm['live_bytes']} bytes, "
            f"{sfm['pool_buffers']} pooled buffers"
        )
        for name, doc in sorted(sample["nodes"].items()):
            remote = doc.get("sfm", {})
            lines.append(
                f"node {name}: {remote.get('live_records', '?')} live "
                f"records (reported)"
            )
        bridge = sample.get("bridge")
        if bridge is not None:
            lines.append("")
            if "error" in bridge:
                lines.append(bridge["error"])
            else:
                lines.append(render_bridge_clients(bridge))
        return "\n".join(lines)

    def run(self, iterations: int = 0, interval: float = 1.0,
            stream=None) -> None:
        """The CLI loop: refresh, sample, render.  ``iterations=0`` runs
        until interrupted; tests pass a small count and a StringIO."""
        stream = stream or sys.stdout
        clear = stream.isatty() if hasattr(stream, "isatty") else False
        remaining = iterations
        try:
            while True:
                self.refresh_topics()
                time.sleep(interval)
                if clear:
                    stream.write("\x1b[2J\x1b[H")
                stream.write(self.render(self.sample()) + "\n")
                stream.flush()
                if iterations:
                    remaining -= 1
                    if remaining <= 0:
                        return
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        for tap in self._taps.values():
            tap.close()
        self._taps.clear()
        if self._stats_sub is not None:
            self._stats_sub.unsubscribe()
            self._stats_sub = None
        if self._bridge_client is not None:
            self._bridge_client.close()
            self._bridge_client = None
        self.node.shutdown()

    def __enter__(self) -> "TopMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
