"""Per-message tracing with Chrome ``trace_event`` export.

A *trace id* is minted by the publisher when tracing is active (see
:meth:`Tracer.start`), piggybacked on the wire -- TCPROS connections that
negotiated ``trace=1`` in the connection header carry a 16-byte
``<trace_id, publish_monotonic_ns>`` prefix inside each frame; SHMROS
doorbell frames carry the same two fields natively -- and every stage
stamps a *span* against it: ``publish`` (encode + enqueue on the
publisher), ``send`` (the socket/ring write), ``recv`` (publish to
frame-arrival, i.e. queueing + transport), ``decode`` and ``callback``
on the subscriber.

Timestamps are ``time.monotonic_ns()``: on Linux ``CLOCK_MONOTONIC`` is
machine-wide, so spans from two processes on one machine land on one
consistent timeline (the intra-machine case the paper measures).  Cross-
machine traces need per-host offset correction, which this module does
not attempt.

``export()`` emits the Chrome ``trace_event`` JSON object format --
load it at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Optional

from repro.obs import metrics


class Span:
    """One recorded stage of one traced message."""

    __slots__ = ("name", "trace_id", "start_ns", "end_ns", "thread", "args")

    def __init__(self, name: str, trace_id: int, start_ns: int,
                 end_ns: int, thread: int, args: dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.thread = thread
        self.args = args

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.trace_id:#x}, "
            f"dur={self.duration_ns / 1000:.1f}us, args={self.args})"
        )


class Tracer:
    """A bounded in-memory span recorder with sampled id minting.

    Hot-path contract: with tracing stopped, :meth:`new_trace_id` is one
    attribute check returning 0, and every instrumentation site guards
    its clock reads and :meth:`record` calls behind ``if trace_id:`` --
    an untraced message pays nothing beyond that check.  Subscribers
    record spans for any nonzero id they see on the wire, so the
    sampling decision is made once, at the publisher.
    """

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._events: deque[Span] = deque(maxlen=capacity)
        self._active = False
        self._sample_every = 1
        #: High bits namespace ids per process so two traced processes on
        #: one machine never mint the same id.
        self._id_base = (os.getpid() & 0xFFFF) << 48
        self._ids = itertools.count(1)
        self._calls = itertools.count()

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def start(self, sample_every: int = 1, clear: bool = True) -> None:
        """Open a trace window: every ``sample_every``-th published
        message gets a trace id (1 = trace everything)."""
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if clear:
            self._events.clear()
        self._sample_every = sample_every
        self._active = True

    def stop(self) -> None:
        """Close the window (already recorded spans are kept; in-flight
        traced messages may still land -- drain before exporting)."""
        self._active = False

    def clear(self) -> None:
        self._events.clear()

    # ------------------------------------------------------------------
    # Recording (instrumentation sites)
    # ------------------------------------------------------------------
    def new_trace_id(self) -> int:
        """A fresh id when the window is open and this message is
        sampled, else 0 (the wire value for "untraced")."""
        if not self._active:
            return 0
        if self._sample_every > 1 and next(self._calls) % self._sample_every:
            return 0
        return self._id_base | next(self._ids)

    def record(self, name: str, trace_id: int, start_ns: int, end_ns: int,
               **args) -> None:
        """Store one span (no-op for id 0; deque append is atomic under
        the GIL, so no lock on this path)."""
        if not trace_id:
            return
        self._events.append(
            Span(name, trace_id, start_ns, end_ns,
                 threading.get_ident(), args)
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def spans(self, trace_id: Optional[int] = None) -> list[Span]:
        events = list(self._events)
        if trace_id is None:
            return events
        return [span for span in events if span.trace_id == trace_id]

    def trace_ids(self) -> list[int]:
        """Distinct ids seen, in first-appearance order."""
        seen: dict[int, None] = {}
        for span in list(self._events):
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def export(self) -> dict:
        """The Chrome ``trace_event`` JSON object format: complete
        ("ph":"X") events in microseconds on the shared monotonic
        timeline."""
        pid = os.getpid()
        events = []
        for span in list(self._events):
            events.append({
                "name": span.name,
                "cat": "miniros",
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": max(span.duration_ns, 0) / 1000.0,
                "pid": pid,
                "tid": span.thread & 0xFFFFFFFF,
                "args": {"trace_id": f"{span.trace_id:#x}", **span.args},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs.trace"},
        }

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.export(), indent=indent)


#: The process-wide tracer the middleware instruments against.
tracer = Tracer()


def wire_enabled() -> bool:
    """Whether new connections should negotiate the traced wire prefix.

    Tied to the metrics kill switch (the prefix also carries the publish
    timestamp that feeds the latency histogram) plus its own override:
    ``REPRO_OBS_WIRE=0`` keeps frames byte-identical to the untraced
    format while leaving counters on.
    """
    from repro import config

    return metrics.global_registry.enabled and config.obs_wire()
