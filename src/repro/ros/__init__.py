"""miniros: a ROS1-like publish/subscribe middleware substrate.

This subpackage reproduces the parts of ROS1 that the paper's evaluation
exercises: an XML-RPC master mediating topic discovery, per-node slave
APIs, TCPROS-style length-framed connections with a key=value handshake
(callerid/topic/type/md5sum), publisher-side queues and subscriber
callbacks.  Serialization is pluggable through
:mod:`repro.ros.codecs`, which is the seam where ROS-SF swaps the
generated (de)serialization routines for its dummy zero-copy ones while
the user-facing API (``NodeHandle.advertise`` / ``subscribe`` /
``Publisher.publish`` / callback signatures) stays identical -- the
paper's transparency requirement.
"""

from repro.ros.exceptions import (
    ConnectionHandshakeError,
    MasterError,
    RosError,
    TopicTypeMismatch,
)
from repro.ros.master import Master, MasterProxy
from repro.ros.node import NodeHandle
from repro.ros.rate import Rate
from repro.ros.rostime import Duration, Time
from repro.ros.graph import RosGraph
from repro.ros.bag import BagReader, BagRecorder, BagWriter
from repro.ros.service import ServiceError, ServiceProxy, ServiceServer

__all__ = [
    "BagReader",
    "BagRecorder",
    "BagWriter",
    "ConnectionHandshakeError",
    "Duration",
    "Master",
    "MasterError",
    "MasterProxy",
    "NodeHandle",
    "Rate",
    "RosError",
    "RosGraph",
    "ServiceError",
    "ServiceProxy",
    "ServiceServer",
    "Time",
    "TopicTypeMismatch",
]
