"""Bag files: recording and playback of topic traffic (the rosbag
analogue).

Format (``#REPROBAG V1``): a magic line, then length-framed records.
Each record is a TCPROS-style key=value header plus a data blob:

- ``op=conn`` records declare a connection: ``conn`` id, ``topic``,
  ``type``, ``md5sum`` and ``format`` (``ros`` or ``sfm``); no data.
- ``op=msg`` records carry one message: ``conn`` id, ``secs``/``nsecs``
  receive stamp, and the **raw wire payload** as data.

Storing wire payloads keeps recording serialization-free for SFM topics
(the buffer is written as-is) and lets playback republish without
re-encoding.  ``BagReader.messages`` lazily decodes through the right
codec when asked.
"""

from __future__ import annotations

import struct
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.msg.generator import generate_message_class
from repro.msg.registry import TypeRegistry, UnknownTypeError, default_registry
from repro.ros.codecs import codec_for_class, type_info_for_class
from repro.ros.exceptions import RosError
from repro.ros.rostime import Time
from repro.ros.transport.tcpros import decode_header, encode_header

MAGIC = b"#REPROBAG V1\n"
_U32 = struct.Struct("<I")


class BagError(RosError):
    """Malformed bag file or inconsistent usage."""


@dataclass(frozen=True)
class BagConnection:
    """Metadata of one recorded topic."""

    conn_id: int
    topic: str
    type_name: str
    md5sum: str
    format_name: str


@dataclass(frozen=True)
class BagMessage:
    """One recorded message (payload kept raw until ``decode``)."""

    connection: BagConnection
    stamp: tuple[int, int]
    raw: bytes

    @property
    def topic(self) -> str:
        """The topic this message was recorded from."""
        return self.connection.topic

    def stamp_sec(self) -> float:
        """The receive stamp as fractional seconds."""
        secs, nsecs = self.stamp
        return secs + nsecs / 1e9

    def decode(self, registry: Optional[TypeRegistry] = None):
        """Materialize the message through the recorded wire format."""
        return _codec_for_connection(self.connection, registry).decode(
            bytearray(self.raw)
        )


def _codec_for_connection(connection: BagConnection,
                          registry: Optional[TypeRegistry] = None):
    registry = registry or default_registry
    msg_class = _class_for_connection(connection, registry)
    return codec_for_class(msg_class)


def _class_for_connection(connection: BagConnection,
                          registry: Optional[TypeRegistry] = None) -> type:
    registry = registry or default_registry
    if connection.format_name == "sfm":
        from repro.sfm.generator import generate_sfm_class

        return generate_sfm_class(connection.type_name, registry)
    return generate_message_class(connection.type_name, registry)


class BagWriter:
    """Writes a bag file; one connection per distinct topic."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "wb")
        self._file.write(MAGIC)
        self._connections: dict[str, BagConnection] = {}
        self._next_conn_id = 0
        self.message_count = 0
        self._closed = False

    def _write_record(self, header: dict[str, str], data: bytes) -> None:
        body = encode_header(header)
        self._file.write(_U32.pack(len(body)))
        self._file.write(body)
        self._file.write(_U32.pack(len(data)))
        self._file.write(data)

    def _connection_for(self, topic: str, msg_class: type) -> BagConnection:
        connection = self._connections.get(topic)
        if connection is not None:
            return connection
        type_name, md5sum = type_info_for_class(msg_class)
        codec = codec_for_class(msg_class)
        connection = BagConnection(
            conn_id=self._next_conn_id,
            topic=topic,
            type_name=type_name,
            md5sum=md5sum,
            format_name=codec.format_name,
        )
        self._next_conn_id += 1
        self._connections[topic] = connection
        self._write_record(
            {
                "op": "conn",
                "conn": str(connection.conn_id),
                "topic": topic,
                "type": type_name,
                "md5sum": md5sum,
                "format": connection.format_name,
            },
            b"",
        )
        return connection

    def write(self, topic: str, msg, stamp: Optional[tuple[int, int]] = None):
        """Record one message (encodes through the class's codec)."""
        if self._closed:
            raise BagError("bag is closed")
        connection = self._connection_for(topic, type(msg))
        codec = codec_for_class(type(msg))
        payload, release = codec.encode(msg)
        try:
            data = bytes(payload)
        finally:
            if release is not None:
                release()
        secs, nsecs = stamp if stamp is not None else tuple(Time.now())
        self._write_record(
            {
                "op": "msg",
                "conn": str(connection.conn_id),
                "secs": str(int(secs)),
                "nsecs": str(int(nsecs)),
            },
            data,
        )
        self.message_count += 1

    def close(self) -> None:
        """Flush and close the bag file (idempotent)."""
        if not self._closed:
            self._closed = True
            self._file.close()

    def __enter__(self) -> "BagWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BagReader:
    """Reads a bag file; iterable, with per-topic metadata."""

    def __init__(self, path: str,
                 registry: Optional[TypeRegistry] = None) -> None:
        self.path = path
        self.registry = registry or default_registry
        self.connections: dict[int, BagConnection] = {}
        self._messages: list[BagMessage] = []
        self._load()

    def _load(self) -> None:
        with open(self.path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise BagError(f"{self.path}: not a bag file")
            while True:
                prefix = handle.read(4)
                if not prefix:
                    break
                if len(prefix) != 4:
                    raise BagError("truncated record header length")
                (header_len,) = _U32.unpack(prefix)
                header = decode_header(handle.read(header_len))
                (data_len,) = _U32.unpack(handle.read(4))
                data = handle.read(data_len)
                if len(data) != data_len:
                    raise BagError("truncated record data")
                self._dispatch(header, data)

    def _dispatch(self, header: dict[str, str], data: bytes) -> None:
        op = header.get("op")
        if op == "conn":
            connection = BagConnection(
                conn_id=int(header["conn"]),
                topic=header["topic"],
                type_name=header["type"],
                md5sum=header["md5sum"],
                format_name=header.get("format", "ros"),
            )
            self.connections[connection.conn_id] = connection
        elif op == "msg":
            conn_id = int(header["conn"])
            connection = self.connections.get(conn_id)
            if connection is None:
                raise BagError(f"message references unknown connection {conn_id}")
            self._messages.append(
                BagMessage(
                    connection=connection,
                    stamp=(int(header["secs"]), int(header["nsecs"])),
                    raw=data,
                )
            )
        else:
            raise BagError(f"unknown record op {op!r}")

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[BagMessage]:
        return iter(self._messages)

    def topics(self) -> dict[str, BagConnection]:
        """Recorded topics and their connection metadata."""
        return {c.topic: c for c in self.connections.values()}

    def messages(self, topic: Optional[str] = None) -> list[BagMessage]:
        """All recorded messages, optionally filtered by topic."""
        if topic is None:
            return list(self._messages)
        return [m for m in self._messages if m.topic == topic]


class BagRecorder:
    """Subscribes to topics on a node and records everything it hears."""

    def __init__(self, node, writer: BagWriter) -> None:
        self.node = node
        self.writer = writer
        self._subscribers = []

    def record(self, topic: str, msg_class: type) -> None:
        """Start recording ``topic`` into the writer."""
        def on_message(msg, _topic=topic):
            self.writer.write(_topic, msg)

        self._subscribers.append(
            self.node.subscribe(topic, msg_class, on_message)
        )

    def stop(self) -> None:
        """Unsubscribe from every recorded topic."""
        for subscriber in self._subscribers:
            subscriber.unsubscribe()
        self._subscribers.clear()


def play(reader: BagReader, node, rate: float = 1.0,
         on_published: Optional[Callable] = None,
         wait_for_subscribers: float = 0.0) -> int:
    """Republish a bag's messages on ``node``, preserving relative timing
    scaled by ``rate`` (``rate=0`` publishes as fast as possible).

    ``wait_for_subscribers`` > 0 blocks up to that many seconds until
    every replayed topic has at least one connected subscriber, so the
    first messages are not lost to connection latency.

    Returns the number of messages published.
    """
    publishers: dict[str, object] = {}
    for topic, connection in reader.topics().items():
        try:
            msg_class = _class_for_connection(connection, reader.registry)
        except UnknownTypeError:
            # The bag outlived the type: a recording is replayable years
            # later, so an unregistered type skips its topic instead of
            # aborting the whole playback.
            warnings.warn(
                f"skipping {topic}: type {connection.type_name!r} is not "
                "registered",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        publishers[topic] = node.advertise(topic, msg_class)
    if wait_for_subscribers > 0:
        for publisher in publishers.values():
            publisher.wait_for_subscribers(1, timeout=wait_for_subscribers)
    messages = reader.messages()
    if not messages:
        return 0
    start_wall = time.monotonic()
    start_stamp = messages[0].stamp_sec()
    published = 0
    for record in messages:
        if record.topic not in publishers:
            continue
        if rate > 0:
            target = start_wall + (record.stamp_sec() - start_stamp) / rate
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        msg = record.decode(reader.registry)
        publishers[record.topic].publish(msg)
        published += 1
        if on_published is not None:
            on_published(record)
    return published
