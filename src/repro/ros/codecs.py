"""Message codecs: the seam between the topic layer and wire formats.

A codec turns a message object into an outgoing payload and a received
payload back into a message object.  The original ROS pipeline uses
:class:`RosCodec` (generated serialize/deserialize routines); ROS-SF swaps
in :class:`repro.rossf.serializer.SfmCodec`, whose ``encode`` is a
buffer-pointer copy and whose ``decode`` adopts the received buffer -- the
paper's "overloaded ROS (de)serialization routine" (Section 4.3.1).

The codec is inferred from the message class, so user code that merely
switches which generated class it imports (what the ROS-SF Converter
automates) transparently switches the whole pipeline.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.msg.registry import TypeRegistry
from repro.serialization.rosser import ROSSerializer


class MessageCodec:
    """Encodes/decodes messages for one topic."""

    #: Wire-format tag exchanged in the connection handshake; both ends
    #: must agree (mixing SFM and ROS framing would mis-decode buffers).
    format_name: str = "abstract"

    def encode(self, msg) -> tuple[object, Optional[Callable[[], None]]]:
        """Return ``(payload, release)``.

        ``payload`` is a bytes-like object ready for framing; ``release``
        (may be None) must be called exactly once when the transport no
        longer needs the payload -- for SFM this drops the transport's
        buffer-pointer reference (Fig. 8).
        """
        raise NotImplementedError

    def decode(self, buffer: bytearray):
        """Turn a received frame into the message object handed to the
        subscriber callback."""
        raise NotImplementedError

    def decode_external(self, view: memoryview):
        """Decode from a *borrowed* buffer (a shared-memory slot view).

        Codecs that copy while decoding read straight from the view; the
        SFM codec overrides this to adopt the view zero-copy.  The default
        materializes a private copy, which is always safe.
        """
        return self.decode(bytearray(view))


class RosCodec(MessageCodec):
    """The baseline: generated serialization / de-serialization."""

    format_name = "ros"

    def __init__(self, msg_class: type, registry: Optional[TypeRegistry] = None):
        self.msg_class = msg_class
        registry = registry or msg_class._registry
        self.serializer = ROSSerializer(registry)
        self.type_name = msg_class._spec.full_name

    def encode(self, msg):
        return self.serializer.serialize(msg), None

    def decode(self, buffer: bytearray):
        return self.serializer.deserialize(self.type_name, buffer)

    def decode_external(self, view: memoryview):
        # The generated reader copies every field out as it decodes, so
        # it can consume the borrowed view directly -- no staging bytes().
        return self.serializer.deserialize(self.type_name, view)


def codec_for_class(msg_class: type) -> MessageCodec:
    """Infer the codec from the message class: SFM classes get the
    serialization-free codec, plain classes the ROS one."""
    from repro.sfm.message import SFMMessage

    if isinstance(msg_class, type) and issubclass(msg_class, SFMMessage):
        from repro.rossf.serializer import SfmCodec

        return SfmCodec(msg_class)
    return RosCodec(msg_class)


def type_info_for_class(msg_class: type) -> tuple[str, str]:
    """(full type name, md5sum) for the handshake, for either class kind."""
    from repro.sfm.message import SFMMessage

    if isinstance(msg_class, type) and issubclass(msg_class, SFMMessage):
        return msg_class._layout.type_name, msg_class.md5sum()
    return msg_class._spec.full_name, msg_class.md5sum()
