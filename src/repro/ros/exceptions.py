"""Exception hierarchy for the miniros middleware."""

from __future__ import annotations


class RosError(Exception):
    """Base class for all middleware errors."""


class MasterError(RosError):
    """A master API call failed (non-success status code)."""


class NameError_(RosError):
    """An invalid graph resource name was supplied."""


class TopicTypeMismatch(RosError):
    """Publisher and subscriber disagree on type, md5sum or wire format."""


class ConnectionHandshakeError(RosError):
    """The TCPROS-style handshake failed."""


class NodeShutdownError(RosError):
    """An operation was attempted on a shut-down node."""
