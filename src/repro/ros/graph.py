"""RosGraph: a convenience wrapper bundling a master and its nodes.

Tests, examples and the benchmark harness all need "start a master, make
a few nodes, tear everything down"; this context manager owns that
plumbing so experiment code reads like the paper's node/topic diagrams
(Figs. 12, 15 and 17).
"""

from __future__ import annotations

from repro.ros.master import Master
from repro.ros.node import NodeHandle


class RosGraph:
    """A self-contained ROS graph (one master plus managed nodes)."""

    def __init__(self) -> None:
        self.master = Master()
        self._nodes: list[NodeHandle] = []

    @property
    def master_uri(self) -> str:
        return self.master.uri

    def node(self, name: str, namespace: str = "/", **kwargs) -> NodeHandle:
        """Create a node registered with this graph's master.

        Extra keyword arguments (e.g. ``shmros=False``) are forwarded to
        :class:`~repro.ros.node.NodeHandle`.
        """
        handle = NodeHandle(name, self.master.uri, namespace, **kwargs)
        self._nodes.append(handle)
        return handle

    def shutdown(self) -> None:
        for node in reversed(self._nodes):
            try:
                node.shutdown()
            except Exception:
                pass
        self._nodes.clear()
        self.master.shutdown()

    def __enter__(self) -> "RosGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
