"""Graph introspection helpers: the ``rostopic``/``rosservice`` analogues.

Thin, scriptable equivalents of the CLI tools ROS developers reach for:
``list_topics``, ``topic_info``, ``echo``, ``measure_hz`` and
``list_services``; used by tests and handy in examples/notebooks.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dataclass_field

from repro.ros.master import MasterProxy


def _proxy_for(master_uri: str):
    """A master proxy for either a plain URI or a graph-plane spec, so
    every introspection helper works against a sharded graph."""
    if "," in master_uri or "|" in master_uri:
        from repro.graphplane.proxy import make_master_proxy

        return make_master_proxy(master_uri)
    return MasterProxy(master_uri)


def list_topics(master_uri: str) -> list[tuple[str, str]]:
    """``rostopic list``: [(topic, type), ...] known to the master."""
    proxy = _proxy_for(master_uri)
    return [tuple(entry) for entry in proxy.get_topic_types("/introspect")]


@dataclass
class TopicInfo:
    """``rostopic info`` payload."""

    topic: str
    type_name: str = ""
    publishers: list = dataclass_field(default_factory=list)
    subscribers: list = dataclass_field(default_factory=list)
    #: Handshake failures per publisher URI (``{uri: error string}``),
    #: populated when a live subscriber is passed to :func:`topic_info`.
    link_errors: dict = dataclass_field(default_factory=dict)


def topic_info(master_uri: str, topic: str, subscriber=None) -> TopicInfo:
    """``rostopic info``; pass a live :class:`~repro.ros.topic.Subscriber`
    to also surface its per-publisher handshake failures (type/md5/format
    mismatches that otherwise require a debugger to see)."""
    proxy = _proxy_for(master_uri)
    info = TopicInfo(topic=topic)
    for name, type_name in proxy.get_topic_types("/introspect"):
        if name == topic:
            info.type_name = type_name
    publishers, subscribers, _services = proxy.get_system_state("/introspect")
    for name, nodes in publishers:
        if name == topic:
            info.publishers = list(nodes)
    for name, nodes in subscribers:
        if name == topic:
            info.subscribers = list(nodes)
    if subscriber is not None:
        info.link_errors = {
            uri: str(error) for uri, error in subscriber.link_errors.items()
        }
    return info


def _teardown(subscriber, errors) -> None:
    """Release a helper subscription and surface its handshake failures.

    The unsubscribe must run even when the caller is exiting early (count
    reached, timeout, Ctrl-C) -- a leaked subscription keeps its inbound
    links streaming and the node registered with the master.
    """
    try:
        subscriber.unsubscribe()
    finally:
        if errors is not None:
            for uri, error in subscriber.link_errors.items():
                errors[uri] = str(error)


def echo(node, topic: str, msg_class: type, count: int = 1,
         timeout: float = 10.0, errors: dict = None) -> list:
    """``rostopic echo -n count``: collect ``count`` messages.

    ``errors``, when given, receives the subscription's per-publisher
    handshake failures (``{uri: error string}``) on return.
    """
    received: list = []
    done = threading.Event()

    def on_message(msg) -> None:
        if len(received) < count:
            received.append(msg)
            if len(received) >= count:
                done.set()

    subscriber = node.subscribe(topic, msg_class, on_message)
    try:
        done.wait(timeout)
    finally:
        _teardown(subscriber, errors)
    return received


def measure_hz(node, topic: str, msg_class: type, window: int = 10,
               timeout: float = 10.0, errors: dict = None) -> float:
    """``rostopic hz``: measured publish rate over ``window`` messages."""
    stamps: list[float] = []
    done = threading.Event()

    def on_message(_msg) -> None:
        stamps.append(time.monotonic())
        if len(stamps) >= window:
            done.set()

    subscriber = node.subscribe(topic, msg_class, on_message)
    try:
        done.wait(timeout)
    finally:
        _teardown(subscriber, errors)
    if len(stamps) < 2:
        return 0.0
    span = stamps[-1] - stamps[0]
    return (len(stamps) - 1) / span if span > 0 else 0.0
