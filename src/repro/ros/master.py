"""The ROS master: XML-RPC name service mediating topic discovery.

As in ROS1, nodes register publishers/subscribers with the master over
XML-RPC; the master answers registrations with the current peer list and
pushes ``publisherUpdate`` callbacks to subscribers when the publisher set
of a topic changes.  Data never flows through the master -- peers connect
directly over the TCPROS-style transport.

API methods return ROS's ``(code, statusMessage, value)`` triples with
``code`` 1 on success.
"""

from __future__ import annotations

import threading
import uuid
import xmlrpc.client
import xmlrpc.server
from dataclasses import dataclass, field as dataclass_field

from repro.ros.exceptions import MasterError

SUCCESS = 1
FAILURE = 0
ERROR = -1


@dataclass
class _TopicEntry:
    type_name: str = ""
    publishers: dict = dataclass_field(default_factory=dict)   # caller_id -> api
    subscribers: dict = dataclass_field(default_factory=dict)  # caller_id -> api


class MasterRegistry:
    """The master's pure bookkeeping (no transport).

    Exposed separately so tests can drive it without sockets and so the
    XML-RPC server is a thin shell.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._topics: dict[str, _TopicEntry] = {}
        self._nodes: dict[str, str] = {}  # caller_id -> slave api uri
        self._services: dict[str, tuple[str, str]] = {}  # name -> (caller, uri)
        self._parameters: dict[str, object] = {}
        #: Identity of this registry instance.  A node's master watchdog
        #: compares epochs across probes: a changed epoch means the
        #: master lost its state (restart) and every registration must be
        #: replayed from node-local memory.
        self.epoch = uuid.uuid4().hex

    # -- registration --------------------------------------------------
    def register_publisher(
        self, caller_id: str, topic: str, type_name: str, caller_api: str
    ) -> tuple[list[str], list[str]]:
        """Returns (subscriber_apis, subscriber_apis_to_notify).

        A re-registration that changes nothing (same caller, same api --
        the watchdog replaying against a master that already holds it)
        notifies nobody: the publisher set is unchanged, so pushing
        ``publisherUpdate`` would only churn every subscriber's link
        bookkeeping for no information.
        """
        with self._lock:
            entry = self._topics.setdefault(topic, _TopicEntry(type_name))
            if not entry.type_name:
                entry.type_name = type_name
            changed = entry.publishers.get(caller_id) != caller_api
            entry.publishers[caller_id] = caller_api
            self._nodes[caller_id] = caller_api
            subscribers = list(entry.subscribers.values())
            return subscribers, (subscribers if changed else [])

    def unregister_publisher(self, caller_id: str, topic: str) -> int:
        with self._lock:
            entry = self._topics.get(topic)
            if entry and entry.publishers.pop(caller_id, None) is not None:
                return 1
            return 0

    def register_subscriber(
        self, caller_id: str, topic: str, type_name: str, caller_api: str
    ) -> list[str]:
        """Returns the current publisher API list for the topic."""
        with self._lock:
            entry = self._topics.setdefault(topic, _TopicEntry(type_name))
            if not entry.type_name:
                entry.type_name = type_name
            entry.subscribers[caller_id] = caller_api
            self._nodes[caller_id] = caller_api
            return list(entry.publishers.values())

    def unregister_subscriber(self, caller_id: str, topic: str) -> int:
        with self._lock:
            entry = self._topics.get(topic)
            if entry and entry.subscribers.pop(caller_id, None) is not None:
                return 1
            return 0

    # -- services --------------------------------------------------------
    def register_service(self, caller_id: str, service: str,
                         service_uri: str, caller_api: str) -> None:
        with self._lock:
            self._services[service] = (caller_id, service_uri)
            self._nodes[caller_id] = caller_api

    def unregister_service(self, caller_id: str, service: str) -> int:
        with self._lock:
            entry = self._services.get(service)
            if entry and entry[0] == caller_id:
                del self._services[service]
                return 1
            return 0

    def lookup_service(self, service: str) -> str:
        with self._lock:
            entry = self._services.get(service)
            if entry is None:
                raise MasterError(f"no provider for service {service!r}")
            return entry[1]

    def service_names(self) -> list[str]:
        with self._lock:
            return sorted(self._services)

    # -- parameter server --------------------------------------------------
    def set_param(self, key: str, value) -> None:
        with self._lock:
            self._parameters[key] = value

    def get_param(self, key: str):
        with self._lock:
            if key not in self._parameters:
                raise MasterError(f"parameter {key!r} is not set")
            return self._parameters[key]

    def has_param(self, key: str) -> bool:
        with self._lock:
            return key in self._parameters

    def delete_param(self, key: str) -> int:
        with self._lock:
            return 1 if self._parameters.pop(key, None) is not None else 0

    def param_names(self) -> list[str]:
        with self._lock:
            return sorted(self._parameters)

    # -- queries --------------------------------------------------------
    def publishers_of(self, topic: str) -> list[str]:
        with self._lock:
            entry = self._topics.get(topic)
            return list(entry.publishers.values()) if entry else []

    def lookup_node(self, node_name: str) -> str:
        with self._lock:
            api = self._nodes.get(node_name)
            if api is None:
                raise MasterError(f"unknown node {node_name!r}")
            return api

    def topic_types(self) -> list[list[str]]:
        with self._lock:
            return [
                [topic, entry.type_name]
                for topic, entry in sorted(self._topics.items())
                if entry.type_name
            ]

    # -- replication snapshots ---------------------------------------------
    def dump(self) -> dict:
        """A plain-data snapshot of the whole registry (the bootstrap a
        shard replica loads before tailing the registration log)."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "topics": {
                    topic: {
                        "type": entry.type_name,
                        "publishers": dict(entry.publishers),
                        "subscribers": dict(entry.subscribers),
                    }
                    for topic, entry in self._topics.items()
                },
                "nodes": dict(self._nodes),
                "services": {
                    name: list(entry)
                    for name, entry in self._services.items()
                },
                "parameters": dict(self._parameters),
            }

    def load(self, doc: dict) -> None:
        """Replace this registry's state (and epoch) with a snapshot
        produced by :meth:`dump` -- the replica adopts the leader's
        identity, so a later promotion is invisible to epoch watchdogs."""
        with self._lock:
            self._topics = {
                topic: _TopicEntry(
                    entry["type"],
                    dict(entry["publishers"]),
                    dict(entry["subscribers"]),
                )
                for topic, entry in doc.get("topics", {}).items()
            }
            self._nodes = dict(doc.get("nodes", {}))
            self._services = {
                name: tuple(entry)
                for name, entry in doc.get("services", {}).items()
            }
            self._parameters = dict(doc.get("parameters", {}))
            self.epoch = doc["epoch"]

    def system_state(self):
        with self._lock:
            pubs = [
                [topic, sorted(entry.publishers)]
                for topic, entry in sorted(self._topics.items())
                if entry.publishers
            ]
            subs = [
                [topic, sorted(entry.subscribers)]
                for topic, entry in sorted(self._topics.items())
                if entry.subscribers
            ]
            return [pubs, subs, []]


class _MasterRPCHandlers:
    """XML-RPC surface; mirrors the ROS master API shape."""

    def __init__(self, registry: MasterRegistry) -> None:
        self._registry = registry

    def registerPublisher(self, caller_id, topic, type_name, caller_api):
        subscribers, to_notify = self._registry.register_publisher(
            caller_id, topic, type_name, caller_api
        )
        # Notify subscribers asynchronously so a dead subscriber cannot
        # stall a registration.
        publishers = self._registry.publishers_of(topic)
        for api in to_notify:
            threading.Thread(
                target=_notify_publisher_update,
                args=(api, topic, publishers),
                daemon=True,
            ).start()
        return SUCCESS, f"registered {caller_id} as publisher of {topic}", subscribers

    def unregisterPublisher(self, caller_id, topic, caller_api):
        count = self._registry.unregister_publisher(caller_id, topic)
        return SUCCESS, "unregistered", count

    def registerSubscriber(self, caller_id, topic, type_name, caller_api):
        publishers = self._registry.register_subscriber(
            caller_id, topic, type_name, caller_api
        )
        return SUCCESS, f"registered {caller_id} as subscriber of {topic}", publishers

    def unregisterSubscriber(self, caller_id, topic, caller_api):
        count = self._registry.unregister_subscriber(caller_id, topic)
        return SUCCESS, "unregistered", count

    def lookupNode(self, caller_id, node_name):
        try:
            return SUCCESS, "node found", self._registry.lookup_node(node_name)
        except MasterError as exc:
            return ERROR, str(exc), ""

    def getTopicTypes(self, caller_id):
        return SUCCESS, "topic types", self._registry.topic_types()

    def getSystemState(self, caller_id):
        return SUCCESS, "system state", self._registry.system_state()

    def getPid(self, caller_id):
        import os

        return SUCCESS, "pid", os.getpid()

    def getEpoch(self, caller_id):
        """Registry instance identity (not part of the ROS1 master API):
        the probe target of every node's master watchdog."""
        return SUCCESS, "epoch", self._registry.epoch

    # -- services ----------------------------------------------------------
    def registerService(self, caller_id, service, service_uri, caller_api):
        self._registry.register_service(caller_id, service, service_uri,
                                        caller_api)
        return SUCCESS, f"registered service {service}", 0

    def unregisterService(self, caller_id, service, service_uri):
        count = self._registry.unregister_service(caller_id, service)
        return SUCCESS, "unregistered", count

    def lookupService(self, caller_id, service):
        try:
            return SUCCESS, "service found", self._registry.lookup_service(service)
        except MasterError as exc:
            return ERROR, str(exc), ""

    # -- parameter server ----------------------------------------------------
    def setParam(self, caller_id, key, value):
        self._registry.set_param(key, value)
        return SUCCESS, f"parameter {key} set", 0

    def getParam(self, caller_id, key):
        try:
            return SUCCESS, f"parameter {key}", self._registry.get_param(key)
        except MasterError as exc:
            return ERROR, str(exc), 0

    def hasParam(self, caller_id, key):
        return SUCCESS, key, self._registry.has_param(key)

    def deleteParam(self, caller_id, key):
        return SUCCESS, key, self._registry.delete_param(key)

    def getParamNames(self, caller_id):
        return SUCCESS, "parameter names", self._registry.param_names()


def _notify_publisher_update(api: str, topic: str, publishers: list[str]) -> None:
    try:
        proxy = xmlrpc.client.ServerProxy(api, allow_none=True)
        proxy.publisherUpdate("/master", topic, publishers)
    except Exception:
        # A vanished subscriber is not the master's problem.
        pass


class Master:
    """A running master: XML-RPC server wrapping a :class:`MasterRegistry`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = MasterRegistry()
        self._server = xmlrpc.server.SimpleXMLRPCServer(
            (host, port), logRequests=False, allow_none=True
        )
        self._server.register_instance(_MasterRPCHandlers(self.registry))
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True, name="ros-master",
        )
        self._thread.start()
        host, port = self._server.server_address
        self.uri = f"http://{host}:{port}/"

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=2.0)

    def __enter__(self) -> "Master":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class MasterProxy:
    """Client-side handle on a master, unwrapping status triples."""

    def __init__(self, uri: str) -> None:
        self.uri = uri
        self._proxy = xmlrpc.client.ServerProxy(uri, allow_none=True)
        self._lock = threading.Lock()

    def _call(self, method: str, *args):
        with self._lock:
            code, status, value = getattr(self._proxy, method)(*args)
        if code != SUCCESS:
            raise MasterError(f"{method}: {status}")
        return value

    def register_publisher(self, caller_id, topic, type_name, caller_api):
        return self._call(
            "registerPublisher", caller_id, topic, type_name, caller_api
        )

    def unregister_publisher(self, caller_id, topic, caller_api):
        return self._call("unregisterPublisher", caller_id, topic, caller_api)

    def register_subscriber(self, caller_id, topic, type_name, caller_api):
        return self._call(
            "registerSubscriber", caller_id, topic, type_name, caller_api
        )

    def unregister_subscriber(self, caller_id, topic, caller_api):
        return self._call("unregisterSubscriber", caller_id, topic, caller_api)

    def lookup_node(self, caller_id, node_name):
        return self._call("lookupNode", caller_id, node_name)

    def get_epoch(self, caller_id):
        return self._call("getEpoch", caller_id)

    def get_topic_types(self, caller_id):
        return self._call("getTopicTypes", caller_id)

    def get_system_state(self, caller_id):
        return self._call("getSystemState", caller_id)

    def register_service(self, caller_id, service, service_uri, caller_api):
        return self._call(
            "registerService", caller_id, service, service_uri, caller_api
        )

    def unregister_service(self, caller_id, service, service_uri):
        return self._call("unregisterService", caller_id, service, service_uri)

    def lookup_service(self, caller_id, service):
        return self._call("lookupService", caller_id, service)

    def set_param(self, caller_id, key, value):
        return self._call("setParam", caller_id, key, value)

    def get_param(self, caller_id, key):
        return self._call("getParam", caller_id, key)

    def has_param(self, caller_id, key):
        return self._call("hasParam", caller_id, key)

    def delete_param(self, caller_id, key):
        return self._call("deleteParam", caller_id, key)

    def get_param_names(self, caller_id):
        return self._call("getParamNames", caller_id)
