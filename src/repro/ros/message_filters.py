"""Message filters: multi-topic synchronization (the message_filters
package analogue).

RGBD pipelines (like the paper's ORB-SLAM case study) consume image
pairs that must be matched by timestamp; ROS ships ``message_filters``
with exact and approximate time synchronizers for this.  Reproduced here:

- :class:`FilterSubscriber` -- adapts a topic subscription into a filter
  source.
- :class:`TimeSynchronizer` -- exact policy: fires the callback once every
  connected source has delivered a message with the identical
  ``header.stamp``.
- :class:`ApproximateTimeSynchronizer` -- fires on sets whose stamps lie
  within ``slop`` seconds of each other, picking the best available
  candidate per source.

Both work identically for plain and SFM messages (they only read
``header.stamp``), so a synchronized pipeline stays transparent under
ROS-SF.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable


def _stamp_key(msg) -> tuple[int, int]:
    secs, nsecs = msg.header.stamp
    return int(secs), int(nsecs)


def _stamp_seconds(msg) -> float:
    secs, nsecs = msg.header.stamp
    return int(secs) + int(nsecs) / 1e9


class FilterSubscriber:
    """A topic subscription usable as a synchronizer input."""

    def __init__(self, node, topic: str, msg_class: type, **subscribe_kwargs):
        self.topic = topic
        self._callbacks: list[Callable] = []
        self.subscription = node.subscribe(
            topic, msg_class, self._dispatch, **subscribe_kwargs
        )

    def register_callback(self, callback: Callable) -> None:
        self._callbacks.append(callback)

    def _dispatch(self, msg) -> None:
        for callback in self._callbacks:
            callback(msg)

    def unsubscribe(self) -> None:
        self.subscription.unsubscribe()


class TimeSynchronizer:
    """Exact-stamp synchronization across N sources.

    Buffers up to ``queue_size`` stamps per source; when every source has
    a message for some stamp, the callback fires with the messages in
    source order and older incomplete stamps are discarded.
    """

    def __init__(self, sources, queue_size: int = 10) -> None:
        if not sources:
            raise ValueError("TimeSynchronizer needs at least one source")
        self.sources = list(sources)
        self.queue_size = queue_size
        self._lock = threading.Lock()
        # stamp -> {source_index: msg}; insertion-ordered for eviction.
        self._pending: OrderedDict[tuple[int, int], dict] = OrderedDict()
        self._callbacks: list[Callable] = []
        self.synchronized_count = 0
        self.dropped_count = 0
        for index, source in enumerate(self.sources):
            source.register_callback(
                lambda msg, _index=index: self._add(_index, msg)
            )

    def register_callback(self, callback: Callable) -> None:
        self._callbacks.append(callback)

    def _add(self, source_index: int, msg) -> None:
        key = _stamp_key(msg)
        fire_with = None
        with self._lock:
            entry = self._pending.get(key)
            if entry is None:
                entry = {}
                self._pending[key] = entry
                while len(self._pending) > self.queue_size:
                    self._pending.popitem(last=False)
                    self.dropped_count += 1
            entry[source_index] = msg
            if len(entry) == len(self.sources):
                del self._pending[key]
                # Everything older than a completed set can never complete
                # in order; drop it (message_filters semantics).
                stale = [k for k in self._pending if k < key]
                for stale_key in stale:
                    del self._pending[stale_key]
                    self.dropped_count += 1
                self.synchronized_count += 1
                fire_with = tuple(
                    entry[index] for index in range(len(self.sources))
                )
        if fire_with is not None:
            for callback in self._callbacks:
                callback(*fire_with)


class ApproximateTimeSynchronizer:
    """Slop-tolerant synchronization across N sources.

    Keeps the last ``queue_size`` messages per source; whenever a new
    message arrives, looks for one candidate per other source within
    ``slop`` seconds (nearest first).  A matched set is consumed.
    """

    def __init__(self, sources, queue_size: int = 10, slop: float = 0.05):
        if not sources:
            raise ValueError(
                "ApproximateTimeSynchronizer needs at least one source"
            )
        if slop < 0:
            raise ValueError("slop must be non-negative")
        self.sources = list(sources)
        self.queue_size = queue_size
        self.slop = slop
        self._lock = threading.Lock()
        self._queues: list[list] = [[] for _ in self.sources]
        self._callbacks: list[Callable] = []
        self.synchronized_count = 0
        for index, source in enumerate(self.sources):
            source.register_callback(
                lambda msg, _index=index: self._add(_index, msg)
            )

    def register_callback(self, callback: Callable) -> None:
        self._callbacks.append(callback)

    def _add(self, source_index: int, msg) -> None:
        fire_with = None
        with self._lock:
            queue = self._queues[source_index]
            queue.append(msg)
            if len(queue) > self.queue_size:
                queue.pop(0)
            fire_with = self._try_match(source_index, msg)
        if fire_with is not None:
            for callback in self._callbacks:
                callback(*fire_with)

    def _try_match(self, anchor_index: int, anchor_msg):
        anchor_time = _stamp_seconds(anchor_msg)
        chosen = [None] * len(self.sources)
        chosen[anchor_index] = anchor_msg
        for index, queue in enumerate(self._queues):
            if index == anchor_index:
                continue
            best, best_delta = None, None
            for candidate in queue:
                delta = abs(_stamp_seconds(candidate) - anchor_time)
                if delta <= self.slop and (best is None or delta < best_delta):
                    best, best_delta = candidate, delta
            if best is None:
                return None
            chosen[index] = best
        # Consume the matched messages.
        for index, queue in enumerate(self._queues):
            message = chosen[index]
            if message in queue:
                queue.remove(message)
        self.synchronized_count += 1
        return tuple(chosen)
