"""ROS graph resource name handling.

Graph names are ``/``-separated; a name may be *global* (``/a/b``),
*relative* (``a/b``, resolved against the node's namespace) or *private*
(``~a``, resolved against the node's own name).  This module reproduces
rosgraph's resolution rules, which the master and the topic layer use as
canonical keys.
"""

from __future__ import annotations

import re

from repro.ros.exceptions import NameError_

_NAME_RE = re.compile(r"^[~/]?[A-Za-z][A-Za-z0-9_/]*$|^/$")


def validate_name(name: str) -> str:
    """Validate a graph name, returning it unchanged.

    >>> validate_name("/camera/image")
    '/camera/image'
    """
    if not name or not _NAME_RE.match(name) or "//" in name:
        raise NameError_(f"invalid graph resource name {name!r}")
    return name


def resolve(name: str, namespace: str = "/", node_name: str = "") -> str:
    """Resolve ``name`` to a global name.

    >>> resolve("image", "/camera")
    '/camera/image'
    >>> resolve("~debug", "/", "/viewer")
    '/viewer/debug'
    >>> resolve("/absolute")
    '/absolute'
    """
    validate_name(name)
    if name.startswith("/"):
        return _normalize(name)
    if name.startswith("~"):
        if not node_name:
            raise NameError_(f"private name {name!r} outside a node context")
        return _normalize(f"{node_name}/{name[1:]}")
    return _normalize(f"{namespace}/{name}")


def _normalize(name: str) -> str:
    parts = [part for part in name.split("/") if part]
    return "/" + "/".join(parts)


def namespace_of(name: str) -> str:
    """The parent namespace of a global name.

    >>> namespace_of("/a/b/c")
    '/a/b'
    """
    name = _normalize(name)
    head, _, _ = name.rpartition("/")
    return head or "/"
