"""NodeHandle: one participant in the ROS graph.

A node owns

- an XML-RPC *slave* server implementing ``requestTopic`` (topic
  negotiation) and ``publisherUpdate`` (master push notifications),
- a TCPROS-style data server accepting subscriber connections for its
  advertised topics,
- its publishers and subscribers.

The public surface matches the paper's Fig. 3 program pattern::

    nh = NodeHandle("talker", master_uri)
    pub = nh.advertise("/image", Image)
    pub.publish(img)

    nh2 = NodeHandle("listener", master_uri)
    nh2.subscribe("/image", Image, callback)
"""

from __future__ import annotations

import os
import threading
import xmlrpc.server
from typing import Callable

from repro import config
from repro.ros import names
from repro.ros.exceptions import NodeShutdownError
from repro.ros.master import SUCCESS, ERROR, MasterProxy
from repro.ros.retry import (
    DEFAULT_LINK_RETRY,
    DEFAULT_MASTER_RETRY,
    RetryPolicy,
)
from repro.ros.topic import Publisher, Subscriber
from repro.ros.transport.tcpros import TcpRosServer, reject_connection


class _SlaveHandlers:
    """XML-RPC methods other graph participants call on this node."""

    def __init__(self, node: "NodeHandle") -> None:
        self._node = node

    def requestTopic(self, caller_id, topic, protocols):
        node = self._node
        publisher = node._publishers.get(topic)
        if publisher is None:
            return ERROR, f"{node.name} does not publish {topic}", []
        # Honour the subscriber's preference order: SHMROS when both ends
        # share a machine and the publisher can set up a ring, TCPROS
        # otherwise.  Either way the data connection lands on the same
        # TCPROS server; SHMROS merely changes what flows over it.
        for protocol in protocols:
            if not protocol:
                continue
            if protocol[0] == "SHMROS" and len(protocol) >= 2:
                ring = publisher._offer_shm(protocol[1])
                if ring is not None:
                    return (
                        SUCCESS,
                        "ready",
                        [
                            "SHMROS",
                            node._data_server.host,
                            node._data_server.port,
                            ring.name,
                        ],
                    )
            elif protocol[0] == "TCPROS":
                return (
                    SUCCESS,
                    "ready",
                    ["TCPROS", node._data_server.host, node._data_server.port],
                )
        return ERROR, "no supported protocol", []

    def publisherUpdate(self, caller_id, topic, publishers):
        self._node._publisher_update(topic, publishers)
        return SUCCESS, "publisher list updated", 0

    def getPid(self, caller_id):
        return SUCCESS, "pid", os.getpid()

    def shutdown(self, caller_id, reason=""):
        threading.Thread(target=self._node.shutdown, daemon=True).start()
        return SUCCESS, "shutting down", 0


class NodeHandle:
    """A running node registered with a master."""

    def __init__(
        self,
        name: str,
        master_uri: str,
        namespace: str = "/",
        shmros: bool = True,
        master_probe_interval: float = 0.5,
        master_retry: RetryPolicy = DEFAULT_MASTER_RETRY,
        link_retry: RetryPolicy = DEFAULT_LINK_RETRY,
        link_keepalive: float = 2.0,
        link_idle_timeout: float = 15.0,
        transport_planner: bool | None = None,
        planner_interval: float = 2.0,
    ) -> None:
        self.name = names.resolve(name, namespace)
        self.namespace = namespace
        self.master_uri = master_uri
        #: Allow the SHMROS shared-memory transport for this node's
        #: publishers and subscribers (negotiation still falls back to
        #: TCPROS per connection; REPRO_SHMROS=0 disables globally).
        self.shmros = shmros
        #: Self-healing knobs.  ``master_probe_interval`` is the watchdog
        #: period (0 disables the watchdog); ``link_retry`` governs
        #: per-publisher reconnects; ``link_keepalive`` is how long a
        #: publisher lets a link sit idle before sending an in-band
        #: keepalive, and ``link_idle_timeout`` how long a subscriber
        #: tolerates total silence before declaring the link half-open.
        self.master_probe_interval = master_probe_interval
        self.master_retry = master_retry
        self.link_retry = link_retry
        self.link_keepalive = link_keepalive
        self.link_idle_timeout = link_idle_timeout
        if "," in master_uri or "|" in master_uri:
            # A graph-plane spec (shards and/or failover candidates)
            # rather than a single master URI.  Late import: plain
            # single-master nodes never load the graph plane.
            from repro.graphplane.proxy import make_master_proxy

            self.master = make_master_proxy(master_uri)
        else:
            self.master = MasterProxy(master_uri)
        self._publishers: dict[str, Publisher] = {}
        self._subscribers: dict[str, list[Subscriber]] = {}
        self._services: dict[str, "ServiceServer"] = {}
        self._lock = threading.RLock()
        self._shutdown = False
        #: Master-link health as seen by the watchdog: ``healthy`` while
        #: probes succeed, ``reconnecting`` from the first failed probe
        #: until the master answers again.
        self.master_state = "healthy"
        self.master_retries = 0
        self._master_epoch: str | None = None
        self._watch_stop = threading.Event()

        self._data_server = TcpRosServer(self._dispatch_data)
        self._slave_server = xmlrpc.server.SimpleXMLRPCServer(
            ("127.0.0.1", 0), logRequests=False, allow_none=True
        )
        self._slave_server.register_instance(_SlaveHandlers(self))
        self._slave_thread = threading.Thread(
            target=self._slave_server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name=f"slave:{self.name}",
        )
        self._slave_thread.start()
        host, port = self._slave_server.server_address
        self.uri = f"http://{host}:{port}/"

        #: Adaptive transport planner (repro.ros.planner): flips this
        #: node's subscriber links between SHMROS and TCPROS to match the
        #: observed traffic.  Off by default; ``transport_planner=True``
        #: or ``REPRO_TRANSPORT_PLANNER=1`` turns it on.
        self.planner = None
        if transport_planner is None:
            transport_planner = config.transport_planner()
        if transport_planner:
            self.enable_transport_planner(interval=planner_interval)

        self._watch_thread: threading.Thread | None = None
        if master_probe_interval and master_probe_interval > 0:
            # Prime the epoch baseline now: a master bounce before the
            # first probe tick must still read as a *change*, or early
            # registrations would never be replayed.
            try:
                self._master_epoch = self.master.get_epoch(self.name)
            except Exception:
                pass
            self._watch_thread = threading.Thread(
                target=self._master_watchdog,
                daemon=True,
                name=f"master-watchdog:{self.name}",
            )
            self._watch_thread.start()

    # ------------------------------------------------------------------
    # Topic API
    # ------------------------------------------------------------------
    def advertise(
        self,
        topic: str,
        msg_class: type,
        queue_size: int = 100,
        intraprocess: bool = False,
        latch: bool = False,
        shm_slots: int = None,
        shm_slot_bytes: int = None,
    ) -> Publisher:
        """Declare a topic and return a publisher handle (Fig. 3).

        ``shm_slots`` / ``shm_slot_bytes`` size the SHMROS ring for this
        topic (defaults in :mod:`repro.ros.transport.shm`).
        """
        self._check_alive()
        topic = names.resolve(topic, self.namespace, self.name)
        with self._lock:
            if topic in self._publishers:
                raise ValueError(f"{self.name} already publishes {topic}")
            publisher = Publisher(
                self,
                topic,
                msg_class,
                queue_size,
                intraprocess,
                latch,
                shm_slots=shm_slots,
                shm_slot_bytes=shm_slot_bytes,
            )
            self._publishers[topic] = publisher
        self.master.register_publisher(
            self.name, topic, publisher.type_name, self.uri
        )
        return publisher

    def subscribe(
        self,
        topic: str,
        msg_class: type,
        callback: Callable,
        intraprocess: bool = False,
        raw: bool = False,
    ) -> Subscriber:
        """Register ``callback`` for ``topic`` (Fig. 3).

        With ``raw=True`` the callback receives the undecoded payload
        bytes of each message instead of a message object (used by the
        bridge gateway to fan out without deserializing).
        """
        self._check_alive()
        topic = names.resolve(topic, self.namespace, self.name)
        with self._lock:
            subscriber = Subscriber(
                self, topic, msg_class, callback, intraprocess, raw=raw
            )
            self._subscribers.setdefault(topic, []).append(subscriber)
        publishers = self.master.register_subscriber(
            self.name, topic, subscriber.type_name, self.uri
        )
        subscriber.update_publishers(publishers)
        return subscriber

    def enable_transport_planner(self, **kwargs) -> "TransportPlanner":
        """Start (or return the already-running) adaptive transport
        planner for this node's subscriptions; keyword arguments are
        passed to :class:`repro.ros.planner.TransportPlanner`."""
        from repro.ros.planner import TransportPlanner

        if self.planner is None:
            self.planner = TransportPlanner(self, **kwargs)
        return self.planner

    # ------------------------------------------------------------------
    # Services and parameters
    # ------------------------------------------------------------------
    def advertise_service(self, name: str, srv_type, handler) -> "ServiceServer":
        """Provide a service; ``handler(request) -> response``."""
        from repro.ros.service import ServiceServer

        self._check_alive()
        name = names.resolve(name, self.namespace, self.name)
        with self._lock:
            if name in self._services:
                raise ValueError(f"{self.name} already provides {name}")
            server = ServiceServer(self, name, srv_type, handler)
            self._services[name] = server
        self.master.register_service(self.name, name, server.uri, self.uri)
        return server

    def service_proxy(self, name: str, srv_type, timeout: float = 10.0):
        """A callable client handle for a service."""
        from repro.ros.service import ServiceProxy

        self._check_alive()
        name = names.resolve(name, self.namespace, self.name)
        return ServiceProxy(self, name, srv_type, timeout)

    def wait_for_service(self, name: str, timeout: float = 10.0) -> bool:
        """Block until the master knows a provider for ``name``."""
        import time as _time

        name = names.resolve(name, self.namespace, self.name)
        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            try:
                self.master.lookup_service(self.name, name)
                return True
            except Exception:
                _time.sleep(0.05)
        return False

    def set_param(self, key: str, value) -> None:
        self.master.set_param(self.name, key, value)

    def get_param(self, key: str, default=None):
        try:
            return self.master.get_param(self.name, key)
        except Exception:
            if default is not None:
                return default
            raise

    def has_param(self, key: str) -> bool:
        return bool(self.master.has_param(self.name, key))

    def delete_param(self, key: str) -> None:
        self.master.delete_param(self.name, key)

    def _unadvertise_service(self, server) -> None:
        with self._lock:
            self._services.pop(server.name, None)
        try:
            self.master.unregister_service(self.name, server.name, server.uri)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _dispatch_data(self, sock, header: dict[str, str]) -> None:
        if "service" in header:
            service_name = header["service"]
            with self._lock:
                server = self._services.get(service_name)
            if server is None:
                reject_connection(
                    sock, f"{self.name} does not provide {service_name}"
                )
                return
            server._accept(sock, header)
            return
        topic = header.get("topic", "")
        with self._lock:
            publisher = self._publishers.get(topic)
        if publisher is None:
            reject_connection(sock, f"{self.name} does not publish {topic}")
            return
        publisher._accept(sock, header)

    def _publisher_update(self, topic: str, publishers: list[str]) -> None:
        with self._lock:
            subscribers = list(self._subscribers.get(topic, ()))
        for subscriber in subscribers:
            subscriber.update_publishers(publishers)

    def _unadvertise(self, publisher: Publisher) -> None:
        with self._lock:
            self._publishers.pop(publisher.topic, None)
        try:
            self.master.unregister_publisher(self.name, publisher.topic, self.uri)
        except Exception:
            pass

    def _unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            subs = self._subscribers.get(subscriber.topic, [])
            if subscriber in subs:
                subs.remove(subscriber)
            remaining = bool(subs)
        if not remaining:
            try:
                self.master.unregister_subscriber(
                    self.name, subscriber.topic, self.uri
                )
            except Exception:
                pass

    def _check_alive(self) -> None:
        if self._shutdown:
            raise NodeShutdownError(f"node {self.name} is shut down")

    # ------------------------------------------------------------------
    # Master watchdog (self-healing)
    # ------------------------------------------------------------------
    def _master_watchdog(self) -> None:
        """Probe the master's epoch on a timer.  A failed probe enters a
        backoff reconnect loop; a *changed* epoch (master restarted and
        lost its registry) replays every registration this node holds."""
        while not self._watch_stop.wait(self.master_probe_interval):
            self._probe_master()

    def _probe_master(self) -> None:
        try:
            epoch = self.master.get_epoch(self.name)
        except Exception:
            self._master_reconnect_loop()
            return
        self._note_master_epoch(epoch)

    def _note_master_epoch(self, epoch: str) -> None:
        previous = self._master_epoch
        self._master_epoch = epoch
        if previous is not None and epoch != previous:
            self._reregister()
        self.master_state = "healthy"

    def _master_reconnect_loop(self) -> None:
        """Jittered exponential backoff until the master answers again.
        The master policy never gives up: a node without a master can do
        nothing better than keep trying."""
        self.master_state = "reconnecting"
        policy = self.master_retry
        attempt = 0
        import time as _time

        started = _time.monotonic()
        while not self._shutdown:
            attempt += 1
            if policy.gives_up(attempt, started):
                self.master_state = "dead"
                return
            if self._watch_stop.wait(policy.delay(attempt)):
                return
            self.master_retries += 1
            try:
                epoch = self.master.get_epoch(self.name)
            except Exception:
                continue
            self._note_master_epoch(epoch)
            return

    def _reregister(self) -> None:
        """Replay every registration from node-local state (the master
        restarted with an empty registry).  Subscribers additionally
        refresh their publisher lists -- that is what reconnects the data
        plane after an amnesiac restart."""
        with self._lock:
            publishers = list(self._publishers.values())
            subscribers = [
                sub for subs in self._subscribers.values() for sub in subs
            ]
            services = list(self._services.values())
        for publisher in publishers:
            try:
                self.master.register_publisher(
                    self.name, publisher.topic, publisher.type_name, self.uri
                )
            except Exception:
                return
        for service in services:
            try:
                self.master.register_service(
                    self.name, service.name, service.uri, self.uri
                )
            except Exception:
                return
        for subscriber in subscribers:
            try:
                publishers_now = self.master.register_subscriber(
                    self.name, subscriber.topic, subscriber.type_name, self.uri
                )
            except Exception:
                return
            subscriber.update_publishers(publishers_now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def topic_stats(self) -> dict:
        """Per-topic counters for every publisher and subscriber this
        node owns (the document behind ``/statistics`` and the metrics
        collectors)."""
        with self._lock:
            publishers = list(self._publishers.values())
            subscribers = [
                sub for subs in self._subscribers.values() for sub in subs
            ]
        return {
            "node": self.name,
            "master": {
                "uri": self.master_uri,
                "state": self.master_state,
                "epoch": self._master_epoch,
                "retries": self.master_retries,
            },
            "publishers": [pub.stats() for pub in publishers],
            "subscribers": [sub.stats() for sub in subscribers],
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            publishers = list(self._publishers.values())
            subscribers = [
                sub for subs in self._subscribers.values() for sub in subs
            ]
            services = list(self._services.values())
        if self.planner is not None:
            self.planner.close()
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=2.0)
        for subscriber in subscribers:
            subscriber.unsubscribe()
        for publisher in publishers:
            publisher.unadvertise()
        for server in services:
            server.shutdown()
        self._data_server.close()
        self._slave_server.shutdown()
        self._slave_server.server_close()
        self._slave_thread.join(timeout=2.0)

    def __enter__(self) -> "NodeHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
