"""Adaptive transport planning: metrics-driven SHM/TCPROS selection.

Transport negotiation (PR 1-4) picks a link's transport *once*, at
connect time, from static facts: same machine, shared memory available,
retry budget not yet burned.  But the best transport is a property of
the *traffic*: a 1 MB image stream belongs on shared memory (one copy,
no socket writes), while a 200 Hz stream of 64-byte poses is better off
on a batched TCPROS socket than paying a slot copy, a doorbell frame and
an ack round trip per message -- and a subscriber that keeps missing
slots (stale drops) is telling us the ring is under pressure.

The :class:`TransportPlanner` closes that loop.  It samples the live
counters the observability layer already maintains (received messages
and bytes, stale drops) on a timer, derives each subscription's observed
message size and rate, and when the numbers say the current transport is
wrong it re-dials the link through
:meth:`~repro.ros.topic.Subscriber.set_transport_preference` -- the same
replace-then-close machinery the self-healing downgrade path uses, so a
flip is one clean reconnect with no retry storm.  Every decision is
exported as an obs metric (``miniros_planner_flips_total``) and kept in
a bounded history that ``tools top`` renders in its PLAN column.

Decision rules (thresholds are constructor knobs):

- ``shm-pressure``: a SHMROS link saw stale drops in the window -- the
  subscriber cannot keep up with the ring, so move it to TCPROS where
  backpressure is a socket buffer, not slot reclamation.
- ``large-payloads``: a TCPROS link is carrying payloads averaging at or
  above ``large_payload`` bytes -- the copy-twice socket path loses to a
  shared-memory slot, so request SHMROS.
- ``small-fast``: a SHMROS link is carrying small (``<= small_payload``)
  messages at or above ``high_rate`` Hz -- per-message slot bookkeeping
  and acks dominate, and the batched TCPROS writer amortizes its syscalls.

Flips are rate-limited by a per-link cooldown and a minimum message
count per window, so noisy traffic cannot make the planner oscillate.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from typing import Optional

from repro.obs.metrics import global_registry as obs_registry
from repro.ros.transport import shm

planner_flips = obs_registry.counter(
    "miniros_planner_flips_total",
    "Transport flips made by the adaptive planner.",
    labels=("topic", "transport", "reason"),
)

#: Live planners, so ``tools top`` can surface in-process decisions.
_planners: "weakref.WeakSet" = weakref.WeakSet()
_planners_lock = threading.Lock()


def last_decision_for(topic: str) -> Optional[dict]:
    """The most recent planner decision touching ``topic`` across every
    planner in this process (None when no planner has acted on it)."""
    best: Optional[dict] = None
    with _planners_lock:
        planners = list(_planners)
    for planner in planners:
        decision = planner.last_decision(topic)
        if decision is not None and (
            best is None or decision["when"] > best["when"]
        ):
            best = decision
    return best


def decide(
    transport: str,
    avg_size: float,
    rate: float,
    stale_drops: int,
    small_payload: int = 1024,
    large_payload: int = 64 * 1024,
    high_rate: float = 200.0,
) -> Optional[tuple[str, str]]:
    """The pure decision function: ``(target_transport, reason)`` or
    ``None`` to leave the link alone.  Split out from the sampling loop
    so the thresholds are testable without sockets."""
    if transport == "SHMROS":
        if stale_drops > 0:
            return ("TCPROS", "shm-pressure")
        if avg_size <= small_payload and rate >= high_rate:
            return ("TCPROS", "small-fast")
    elif transport == "TCPROS":
        if avg_size >= large_payload:
            return ("SHMROS", "large-payloads")
    return None


class _Window:
    """Previous sample of one subscriber's counters."""

    __slots__ = ("when", "messages", "nbytes", "stale")

    def __init__(self, when: float, messages: int, nbytes: int,
                 stale: int) -> None:
        self.when = when
        self.messages = messages
        self.nbytes = nbytes
        self.stale = stale


class TransportPlanner:
    """Samples a node's subscriptions and flips transports to match the
    observed traffic (see the module docstring for the rules)."""

    def __init__(
        self,
        node,
        interval: float = 2.0,
        small_payload: int = 1024,
        large_payload: int = 64 * 1024,
        high_rate: float = 200.0,
        min_messages: int = 20,
        cooldown: float = 30.0,
        start: bool = True,
    ) -> None:
        self.node = node
        self.interval = interval
        self.small_payload = small_payload
        self.large_payload = large_payload
        self.high_rate = high_rate
        #: A window with fewer messages than this is too quiet to judge.
        self.min_messages = min_messages
        #: Minimum seconds between flips of the same link, so a workload
        #: sitting on a threshold cannot make the planner oscillate.
        self.cooldown = cooldown
        self.flips = 0
        self._lock = threading.Lock()
        self._windows: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        #: (subscriber id, uri) -> monotonic time of the last flip.
        self._last_flip: dict[tuple[int, str], float] = {}
        self._decisions: deque[dict] = deque(maxlen=64)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        with _planners_lock:
            _planners.add(self)
        if start:
            self._thread = threading.Thread(
                target=self._run,
                daemon=True,
                name=f"planner:{getattr(node, 'name', '?')}",
            )
            self._thread.start()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - planner must not kill
                pass           # the node on a racing shutdown

    def sample_once(self) -> list[dict]:
        """One planning pass over the node's subscriptions; returns the
        decisions made (tests drive this directly, without the timer)."""
        now = time.monotonic()
        made: list[dict] = []
        for subscriber in self._subscriptions():
            decision = self._plan_subscriber(subscriber, now)
            if decision is not None:
                made.append(decision)
        return made

    def _subscriptions(self) -> list:
        node = self.node
        with node._lock:
            return [
                sub for subs in node._subscribers.values() for sub in subs
            ]

    def _plan_subscriber(self, subscriber, now: float) -> Optional[dict]:
        messages = subscriber.received_count
        nbytes = subscriber.received_bytes
        stale = subscriber.stale_drops
        previous = self._windows.get(subscriber)
        self._windows[subscriber] = _Window(now, messages, nbytes, stale)
        if previous is None:
            return None
        elapsed = now - previous.when
        delta_msgs = messages - previous.messages
        if elapsed <= 0 or delta_msgs < self.min_messages:
            return None
        avg_size = (nbytes - previous.nbytes) / delta_msgs
        rate = delta_msgs / elapsed
        delta_stale = stale - previous.stale
        with subscriber._lock:
            links = [
                link for link in subscriber._connected
                if link.transport in ("SHMROS", "TCPROS")
            ]
        for link in links:
            verdict = decide(
                link.transport, avg_size, rate, delta_stale,
                self.small_payload, self.large_payload, self.high_rate,
            )
            if verdict is None:
                continue
            target, reason = verdict
            if target == "SHMROS" and not self._shm_usable():
                continue
            key = (id(subscriber), link.publisher_uri)
            last = self._last_flip.get(key)
            if last is not None and now - last < self.cooldown:
                continue
            if not subscriber.set_transport_preference(
                link.publisher_uri, target, reason
            ):
                continue
            self._last_flip[key] = now
            self.flips += 1
            decision = {
                "topic": subscriber.topic,
                "uri": link.publisher_uri,
                "from": link.transport,
                "to": target,
                "reason": reason,
                "avg_size": avg_size,
                "rate": rate,
                "stale_drops": delta_stale,
                "when": time.time(),
            }
            with self._lock:
                self._decisions.append(decision)
            planner_flips.labels(
                topic=subscriber.topic, transport=target, reason=reason
            ).inc()
            return decision
        return None

    def _shm_usable(self) -> bool:
        return (
            getattr(self.node, "shmros", True)
            and shm.shm_available()
            and not shm.env_disabled()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def decisions(self) -> list[dict]:
        """The bounded decision history, oldest first."""
        with self._lock:
            return list(self._decisions)

    def last_decision(self, topic: str) -> Optional[dict]:
        with self._lock:
            for decision in reversed(self._decisions):
                if decision["topic"] == topic:
                    return decision
        return None

    def stats(self) -> dict:
        return {
            "node": getattr(self.node, "name", "?"),
            "interval": self.interval,
            "flips": self.flips,
            "decisions": self.decisions(),
        }

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
