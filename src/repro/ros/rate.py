"""Fixed-frequency loop helper (the ``ros::Rate`` analogue).

The paper's experiments publish "2,000 times at a frequency of 10 Hz";
:class:`Rate` provides that pacing, compensating for the time consumed by
the loop body so long-running bodies do not accumulate drift.

The clock and sleep function are injectable so a rostime-style settable
clock can drive the schedule -- which is also what makes the
backwards-jump handling testable: when the clock is reset to an earlier
time (bag replay looping, sim-time restart), the stored deadline lies in
the far future of the new timeline.  Without detection, ``sleep()``
would stall for the whole bogus interval (or busy-spin forever under a
polling sleeper that re-checks the clock).  A jump is recognized by the
deadline receding more than one period ahead, and the schedule is
re-anchored to the new timeline.
"""

from __future__ import annotations

import time
from typing import Callable


class Rate:
    """Sleeps to maintain a target loop frequency."""

    def __init__(
        self,
        hz: float,
        clock: Callable[[], float] = time.monotonic,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"rate must be positive, got {hz}")
        self.period = 1.0 / hz
        self._clock = clock
        self._sleeper = sleeper
        self._next_deadline = clock() + self.period

    def sleep(self) -> bool:
        """Sleep until the next cycle boundary.

        Returns False when the deadline was already missed (no sleep
        happened and the schedule was re-anchored), True otherwise.
        A backwards clock jump also re-anchors: the loop resumes its
        cadence on the new timeline after at most one period.
        """
        now = self._clock()
        remaining = self._next_deadline - now
        if remaining > self.period:
            # The clock jumped backwards (the deadline can never be more
            # than one period ahead of a monotonically advancing clock):
            # re-anchor to the new timeline and take one normal cycle.
            self._next_deadline = now + self.period
            self._sleeper(self.period)
            self._next_deadline += self.period
            return True
        if remaining > 0:
            self._sleeper(remaining)
            self._next_deadline += self.period
            return True
        # Missed the cycle: re-anchor rather than bursting to catch up.
        self._next_deadline = now + self.period
        return False

    def reset(self) -> None:
        self._next_deadline = self._clock() + self.period
