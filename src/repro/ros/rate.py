"""Fixed-frequency loop helper (the ``ros::Rate`` analogue).

The paper's experiments publish "2,000 times at a frequency of 10 Hz";
:class:`Rate` provides that pacing, compensating for the time consumed by
the loop body so long-running bodies do not accumulate drift.
"""

from __future__ import annotations

import time


class Rate:
    """Sleeps to maintain a target loop frequency."""

    def __init__(self, hz: float) -> None:
        if hz <= 0:
            raise ValueError(f"rate must be positive, got {hz}")
        self.period = 1.0 / hz
        self._next_deadline = time.monotonic() + self.period

    def sleep(self) -> bool:
        """Sleep until the next cycle boundary.

        Returns False when the deadline was already missed (no sleep
        happened and the schedule was re-anchored), True otherwise.
        """
        now = time.monotonic()
        remaining = self._next_deadline - now
        if remaining > 0:
            time.sleep(remaining)
            self._next_deadline += self.period
            return True
        # Missed the cycle: re-anchor rather than bursting to catch up.
        self._next_deadline = now + self.period
        return False

    def reset(self) -> None:
        self._next_deadline = time.monotonic() + self.period
