"""The reactor core: one event loop under every transport.

Thread-per-connection capped the graph at hundreds of clients: every
TCPROS link, SHM doorbell, bridge session and mux channel burned one or
two Python threads, and at fan-out the scheduler -- not the sockets --
became the bottleneck.  This module rearchitects the connection paths
onto the C10k shape (HPRM's broker, rosbridge's tornado loop):

- one **reactor thread** running a ``selectors`` loop over every
  registered connection, timers included;
- a small **worker pool** (:data:`WORKER_COUNT` threads) running user
  callbacks, each connection's events serialized through its own
  :class:`SerialQueue` so per-link message order is preserved;
- transient **blocking spawns** for connect/handshake phases, which may
  legitimately block for seconds; they register the socket with the
  reactor and exit, so steady-state thread count is independent of
  connection count (the 512-connection idle witness in
  ``tests/test_reactor_parity.py``).

The scheduling contract is the unified **Link protocol** -- the one
interface the five transports (TCPROS, SHMROS doorbell, TZC, RouteD
mux, bridge/ws sessions) register against:

``fileno()``
    the selectable descriptor;
``on_readable()`` / ``on_writable()``
    event entry points, called on the reactor thread;
``stats()``
    a point-in-time counter dict (``transport``, byte/message counters,
    ``queue_depth`` where applicable);
``link_state``
    ``healthy`` / ``degraded`` / ``reconnecting`` / ``dead``;
``close()``
    idempotent, exception-free teardown.

Retry, keepalive, idle-timeout and planner plumbing all route through
this seam (reactor timers + the protocol methods) instead of the old
per-transport thread copies.  ``REPRO_REACTOR=0`` (see
:mod:`repro.config`) restores the threaded paths wholesale.
"""

from __future__ import annotations

import heapq
import itertools
import os
import queue
import selectors
import socket
import struct
import threading
import time
from collections import deque
from typing import Callable, Optional

from repro import config

_LEN = struct.Struct("<I")
_TRACE = struct.Struct("<QQ")

#: Worker threads running user callbacks.  1 reactor + WORKER_COUNT
#: workers = 4 threads total for any number of idle connections.
WORKER_COUNT = 3

#: Max iovecs per ``sendmsg`` (conservative vs IOV_MAX=1024 defaults).
_MAX_IOV = 64

#: Per-tick read bound per link: up to this many ``recv_into`` calls
#: before yielding to other links (fairness under a firehose peer).
_READS_PER_TICK = 16

_RECV_CHUNK = 65536

#: Liveness sweep period: a socket closed *behind* the reactor (chaos
#: sever, crash paths closing raw fds) vanishes from epoll without an
#: event, so a blocked-recv EOF never arrives.  The sweep spots the
#: orphaned registration (``fileno()`` no longer matches) and fails the
#: link promptly -- the reactor's analogue of a reader thread waking on
#: its closed fd.
_REAP_INTERVAL = 0.2


def reactor_enabled() -> bool:
    """The tentpole kill switch (``REPRO_REACTOR=0`` -> threaded paths)."""
    return config.reactor()


class Link:
    """The unified link protocol (see module docstring).

    Concrete links subclass this or simply duck-type it; the reactor
    only ever calls the six protocol members.
    """

    link_state = "healthy"

    def fileno(self) -> int:  # pragma: no cover - protocol stub
        raise NotImplementedError

    def on_readable(self) -> None:  # pragma: no cover - protocol stub
        raise NotImplementedError

    def on_writable(self) -> None:
        """Only called when the link asked for write interest."""

    def stats(self) -> dict:
        return {}

    def close(self) -> None:  # pragma: no cover - protocol stub
        raise NotImplementedError


class Timer:
    """A cancellable one-shot reactor timer (lazy-deleted from the heap)."""

    __slots__ = ("deadline", "fn", "cancelled")

    def __init__(self, deadline: float, fn: Callable[[], None]) -> None:
        self.deadline = deadline
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SerialQueue:
    """Ordered execution on the worker pool.

    Tasks pushed here run one at a time, in push order, on whichever
    worker picks the queue up -- per-link message order without a
    per-link thread.  Exceptions are routed to ``on_error`` (so a bad
    user callback cannot kill a worker)."""

    __slots__ = ("_reactor", "_tasks", "_lock", "_running", "on_error")

    def __init__(self, reactor: "Reactor",
                 on_error: Optional[Callable] = None) -> None:
        self._reactor = reactor
        self._tasks: deque = deque()
        self._lock = threading.Lock()
        self._running = False
        self.on_error = on_error

    def push(self, fn: Callable[[], None]) -> None:
        with self._lock:
            self._tasks.append(fn)
            if self._running:
                return
            self._running = True
        self._reactor.submit(self._drain)

    def _drain(self) -> None:
        while True:
            with self._lock:
                if not self._tasks:
                    self._running = False
                    return
                fn = self._tasks.popleft()
            try:
                fn()
            except Exception as exc:
                handler = self.on_error
                if handler is not None:
                    try:
                        handler(exc)
                    except Exception:
                        pass


class Reactor:
    """One selector loop + worker pool scheduling Link-protocol objects."""

    def __init__(self, workers: int = WORKER_COUNT) -> None:
        self._selector = selectors.DefaultSelector()
        self._pending: deque = deque()
        self._timers: list = []
        self._timer_seq = itertools.count()
        self._lock = threading.Lock()
        self._closed = False
        self._registered: dict[int, Link] = {}
        rwake, wwake = os.pipe()
        os.set_blocking(rwake, False)
        os.set_blocking(wwake, False)
        self._rwake, self._wwake = rwake, wwake
        self._selector.register(rwake, selectors.EVENT_READ, None)
        self._work: "queue.SimpleQueue" = queue.SimpleQueue()
        self._workers = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"reactor-worker-{index}")
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="reactor"
        )
        self._thread.start()
        self.call_later(_REAP_INTERVAL, self._reap_tick)

    # ------------------------------------------------------------------
    # Scheduling primitives (all thread-safe)
    # ------------------------------------------------------------------
    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the reactor thread at the next tick."""
        with self._lock:
            self._pending.append(fn)
        self._wake()

    def call_later(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` on the reactor thread after ``delay`` seconds."""
        timer = Timer(time.monotonic() + delay, fn)
        with self._lock:
            heapq.heappush(
                self._timers, (timer.deadline, next(self._timer_seq), timer)
            )
        self._wake()
        return timer

    def submit(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the worker pool (unordered)."""
        self._work.put(fn)

    def serial_queue(self, on_error: Optional[Callable] = None) -> SerialQueue:
        return SerialQueue(self, on_error)

    def spawn_blocking(self, fn: Callable[[], None], name: str) -> None:
        """Run a legitimately-blocking phase (connect, handshake) on a
        transient daemon thread.  Steady-state cost: zero threads."""
        threading.Thread(target=fn, daemon=True, name=name).start()

    def in_loop(self) -> bool:
        return threading.current_thread() is self._thread

    # ------------------------------------------------------------------
    # Link registration (runs on the loop thread; call from anywhere)
    # ------------------------------------------------------------------
    def register(self, link: Link, write: bool = False) -> None:
        self.call_soon(lambda: self._register(link, write))

    def _register(self, link: Link, write: bool) -> None:
        try:
            fd = link.fileno()
        except (OSError, ValueError):
            return
        if fd < 0:
            return
        stale = self._registered.get(fd)
        if stale is not None:
            if stale is link:
                return
            # Two live sockets cannot share an fd, so the previous owner
            # was closed behind our back (chaos crash paths close raw
            # sockets) and the kernel recycled the number.  Evict it.
            self._unregister(stale)
        events = selectors.EVENT_READ
        # A write queued between the register() call and this tick set
        # the link's want-write flag while want_write() was still a
        # no-op (no fd yet); honor the current desire, not the snapshot.
        if write or getattr(link, "_want_write", False):
            events |= selectors.EVENT_WRITE
        try:
            self._selector.register(fd, events, link)
        except KeyError:
            # Selector bookkeeping also held the recycled fd.
            try:
                self._selector.unregister(fd)
                self._selector.register(fd, events, link)
            except (KeyError, ValueError, OSError):
                return
        except (ValueError, OSError):
            return
        self._registered[fd] = link
        link._reactor_fd = fd
        link._reactor_events = events

    def want_write(self, link: Link, flag: bool) -> None:
        if self.in_loop():
            self._want_write(link, flag)
        else:
            self.call_soon(lambda: self._want_write(link, flag))

    def _want_write(self, link: Link, flag: bool) -> None:
        fd = getattr(link, "_reactor_fd", None)
        if fd is None or self._registered.get(fd) is not link:
            return
        events = selectors.EVENT_READ
        if flag:
            events |= selectors.EVENT_WRITE
        if events == link._reactor_events:
            return
        try:
            self._selector.modify(fd, events, link)
            link._reactor_events = events
        except (KeyError, ValueError, OSError):
            pass

    def unregister(self, link: Link) -> None:
        if self.in_loop():
            self._unregister(link)
        else:
            self.call_soon(lambda: self._unregister(link))

    def _unregister(self, link: Link) -> None:
        fd = getattr(link, "_reactor_fd", None)
        if fd is None or self._registered.get(fd) is not link:
            return
        del self._registered[fd]
        link._reactor_fd = None
        try:
            self._selector.unregister(fd)
        except (KeyError, ValueError, OSError):
            pass

    def link_count(self) -> int:
        return len(self._registered)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            os.write(self._wwake, b"\x00")
        except (BlockingIOError, OSError):
            pass

    def _loop(self) -> None:
        while not self._closed:
            while True:
                with self._lock:
                    if not self._pending:
                        break
                    fn = self._pending.popleft()
                try:
                    fn()
                except Exception:
                    pass
            timeout = None
            now = time.monotonic()
            due: list[Timer] = []
            with self._lock:
                while self._timers:
                    deadline, _seq, timer = self._timers[0]
                    if timer.cancelled:
                        heapq.heappop(self._timers)
                        continue
                    if deadline <= now:
                        heapq.heappop(self._timers)
                        due.append(timer)
                        continue
                    timeout = deadline - now
                    break
                if self._pending:
                    timeout = 0
            for timer in due:
                try:
                    timer.fn()
                except Exception:
                    pass
            try:
                events = self._selector.select(timeout)
            except OSError:
                continue
            for key, mask in events:
                if key.data is None:
                    try:
                        os.read(self._rwake, 4096)
                    except (BlockingIOError, OSError):
                        pass
                    continue
                link: Link = key.data
                try:
                    if mask & selectors.EVENT_READ:
                        link.on_readable()
                    if mask & selectors.EVENT_WRITE and \
                            getattr(link, "_reactor_fd", None) is not None:
                        link.on_writable()
                except Exception as exc:
                    self._fail_link(link, exc)

    def _reap_tick(self) -> None:
        """Fail links whose fd was closed (or recycled) under us."""
        dead = []
        for fd, link in self._registered.items():
            try:
                alive = link.fileno() == fd
            except Exception:
                alive = False
            if not alive:
                dead.append(link)
        for link in dead:
            self._fail_link(
                link,
                ConnectionResetError("socket closed under the reactor"),
            )
        if not self._closed:
            self.call_later(_REAP_INTERVAL, self._reap_tick)

    def _fail_link(self, link: Link, exc: Exception) -> None:
        self._unregister(link)
        handler = getattr(link, "on_error", None)
        try:
            if handler is not None:
                handler(exc)
            else:
                link.close()
        except Exception:
            pass

    def _worker(self) -> None:
        while True:
            fn = self._work.get()
            try:
                fn()
            except Exception:
                pass

    def thread_count(self) -> int:
        """Threads the reactor core owns (the idle-cost witness)."""
        return 1 + len(self._workers)


_global: Optional[Reactor] = None
_global_lock = threading.Lock()


def global_reactor() -> Reactor:
    """The process-wide reactor, started on first use."""
    global _global
    if _global is None:
        with _global_lock:
            if _global is None:
                _global = Reactor()
    return _global


# ----------------------------------------------------------------------
# Incremental decoders
# ----------------------------------------------------------------------
class FrameDecoder:
    """Incremental u32le length framing (TCPROS / bridge frames).

    ``feed(chunk)`` returns completed events:
    ``("frame", payload_bytearray, trace_id, stamp_ns)``.  In-band
    keepalive words are skipped (the caller's idle timer resets on any
    received bytes).  Traced streams carry the 16-byte observability
    prefix inside the frame.
    """

    __slots__ = ("traced", "max_frame", "_head", "_payload", "_filled",
                 "_trace_id", "_stamp_ns")

    def __init__(self, traced: bool = False,
                 max_frame: int = 64 * 1024 * 1024) -> None:
        self.traced = traced
        self.max_frame = max_frame
        self._head = bytearray()
        self._payload: Optional[bytearray] = None
        self._filled = 0
        self._trace_id = 0
        self._stamp_ns = 0

    def feed(self, data) -> list:
        from repro.ros.exceptions import ConnectionHandshakeError

        events: list = []
        view = memoryview(data)
        pos = 0
        end = len(view)
        head_need = 20 if self.traced else 4
        while pos < end:
            if self._payload is None:
                take = min(head_need - len(self._head), end - pos)
                self._head += view[pos : pos + take]
                pos += take
                if len(self._head) < 4:
                    break
                (length,) = _LEN.unpack_from(self._head, 0)
                if length == 0xFFFFFFFF:  # keepalive word
                    del self._head[:4]
                    continue
                if length > self.max_frame:
                    raise ConnectionHandshakeError(
                        f"frame length {length} exceeds limit"
                    )
                if self.traced:
                    if length < _TRACE.size:
                        raise ConnectionHandshakeError(
                            f"traced frame of {length} bytes cannot carry "
                            f"its prefix"
                        )
                    if len(self._head) < head_need:
                        continue
                    self._trace_id, self._stamp_ns = _TRACE.unpack_from(
                        self._head, 4
                    )
                    length -= _TRACE.size
                else:
                    self._trace_id = self._stamp_ns = 0
                del self._head[:]
                self._payload = bytearray(length)
                self._filled = 0
            need = len(self._payload) - self._filled
            take = min(need, end - pos)
            if take:
                self._payload[self._filled : self._filled + take] = \
                    view[pos : pos + take]
                self._filled += take
                pos += take
            if self._filled == len(self._payload):
                events.append(
                    ("frame", self._payload, self._trace_id, self._stamp_ns)
                )
                self._payload = None
        return events


class RawDecoder:
    """Passthrough: every received chunk is one ``("data", bytes)`` event
    (the RouteD channel pump's framing-free inner byte stream)."""

    __slots__ = ()

    def feed(self, data) -> list:
        return [("data", bytes(data))]


# ----------------------------------------------------------------------
# StreamLink: the reusable socket-on-the-reactor building block
# ----------------------------------------------------------------------
class StreamLink(Link):
    """One non-blocking socket scheduled by the reactor.

    Reads pull into a fixed buffer and feed an incremental ``decoder``;
    completed events go to ``on_events(events)`` **on the reactor
    thread** (wrap with a :class:`SerialQueue` push for worker-side
    callbacks).  Writes queue ``(parts, on_flushed)`` through a
    thread-safe buffer drained by ``on_writable``; ``on_flushed`` fires
    only after the message's last byte reached the kernel, which is
    what keeps SFM payload release (``_Outgoing.done``) correct under
    backpressure.  ``on_error(exc)`` fires once on EOF/reset/idle
    timeout; ``close()`` is idempotent and exception-free.
    """

    def __init__(self, sock, decoder, on_events,
                 on_error: Optional[Callable] = None,
                 reactor: Optional[Reactor] = None,
                 label: str = "", idle_timeout: float = 0.0) -> None:
        self.sock = sock
        self.decoder = decoder
        self.on_events_cb = on_events
        self.on_error_cb = on_error
        self.reactor = reactor or global_reactor()
        self.label = label
        self.link_state = "healthy"
        self._recv_buf = bytearray(_RECV_CHUNK)
        self._recv_view = memoryview(self._recv_buf)
        self._wlock = threading.Lock()
        self._wparts: deque = deque()
        self._wcallbacks: deque = deque()  # (end_offset, fn)
        self._wqueued = 0
        self._wflushed = 0
        self._want_write = False
        self._closed = False
        self._errored = False
        self._last_rx = time.monotonic()
        self._idle_timeout = idle_timeout
        self._idle_timer: Optional[Timer] = None
        self.rx_bytes = 0
        self.tx_bytes = 0
        try:
            sock.setblocking(False)
        except OSError:
            pass

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self.reactor.register(self, write=self._pending_write())
        if self._idle_timeout:
            self._arm_idle_timer()

    def _arm_idle_timer(self) -> None:
        interval = max(self._idle_timeout / 2.0, 0.05)
        self._idle_timer = self.reactor.call_later(interval, self._idle_tick)

    def _idle_tick(self) -> None:
        if self._closed:
            return
        if time.monotonic() - self._last_rx > self._idle_timeout:
            self.on_error(socket.timeout(
                f"link idle past {self._idle_timeout}s"
            ))
            return
        self._arm_idle_timer()

    def fileno(self) -> int:
        try:
            return self.sock.fileno()
        except (OSError, ValueError):
            return -1

    def stats(self) -> dict:
        with self._wlock:
            depth = self._wqueued - self._wflushed
        return {
            "label": self.label,
            "rx_bytes": self.rx_bytes,
            "tx_bytes": self.tx_bytes,
            "write_backlog": depth,
            "link_state": self.link_state,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.link_state = "dead"
        if self._idle_timer is not None:
            self._idle_timer.cancel()
        self.reactor.unregister(self)
        with self._wlock:
            self._wparts.clear()
            callbacks = [fn for _end, fn in self._wcallbacks]
            self._wcallbacks.clear()
        for fn in callbacks:
            try:
                fn()
            except Exception:
                pass
        try:
            self.sock.close()
        except Exception:
            pass

    def on_error(self, exc: Exception) -> None:
        if self._errored or self._closed:
            self.close()
            return
        self._errored = True
        self.link_state = "dead"
        handler = self.on_error_cb
        if handler is not None:
            try:
                handler(exc)
                return
            except Exception:
                pass
        self.close()

    # -- reading --------------------------------------------------------
    def on_readable(self) -> None:
        for _ in range(_READS_PER_TICK):
            if self._closed:
                return
            try:
                count = self.sock.recv_into(self._recv_buf)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self.on_error(exc)
                return
            if count == 0:
                self.on_error(ConnectionError("peer closed the connection"))
                return
            self._last_rx = time.monotonic()
            self.rx_bytes += count
            try:
                events = self.decoder.feed(self._recv_view[:count])
            except Exception as exc:
                self.on_error(exc)
                return
            if events:
                try:
                    self.on_events_cb(events)
                except Exception as exc:
                    self.on_error(exc)
                    return
            if count < _RECV_CHUNK:
                return

    # -- writing --------------------------------------------------------
    def write(self, parts: list, on_flushed: Optional[Callable] = None) -> None:
        """Queue ``parts`` (bytes-like) for transmission.  Thread-safe."""
        total = 0
        with self._wlock:
            if self._closed:
                if on_flushed is not None:
                    parts = ()
                else:
                    return
            for part in parts:
                if isinstance(part, memoryview) and part.itemsize != 1:
                    part = part.cast("B")
                size = len(part)
                if not size:
                    continue
                self._wparts.append(
                    part if isinstance(part, (bytes, memoryview))
                    else memoryview(part)
                )
                total += size
            self._wqueued += total
            if on_flushed is not None:
                self._wcallbacks.append((self._wqueued, on_flushed))
            closed = self._closed
        if closed:
            # Closed while queuing: fire the release hook, drop the bytes.
            if on_flushed is not None:
                try:
                    on_flushed()
                except Exception:
                    pass
            return
        if not self._want_write:
            self._want_write = True
            self.reactor.want_write(self, True)

    def _pending_write(self) -> bool:
        with self._wlock:
            return bool(self._wparts or self._wcallbacks)

    def on_writable(self) -> None:
        fired: list = []
        with self._wlock:
            while self._wparts:
                batch = list(
                    itertools.islice(iter(self._wparts), _MAX_IOV)
                )
                try:
                    if len(batch) == 1 or not hasattr(self.sock, "sendmsg"):
                        sent = self.sock.send(batch[0])
                    else:
                        sent = self.sock.sendmsg(batch)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError as exc:
                    self._wparts.clear()
                    fired = [fn for _end, fn in self._wcallbacks]
                    self._wcallbacks.clear()
                    self._fail_after_unlock = exc
                    break
                self._wflushed += sent
                self.tx_bytes += sent
                # Drop fully-sent parts, slice the partial one.
                while sent and self._wparts:
                    head = self._wparts[0]
                    if sent >= len(head):
                        sent -= len(head)
                        self._wparts.popleft()
                    else:
                        view = head if isinstance(head, memoryview) \
                            else memoryview(head)
                        self._wparts[0] = view[sent:]
                        sent = 0
            while self._wcallbacks and \
                    self._wcallbacks[0][0] <= self._wflushed:
                fired.append(self._wcallbacks.popleft()[1])
            drained = not self._wparts
        for fn in fired:
            try:
                fn()
            except Exception:
                pass
        exc = getattr(self, "_fail_after_unlock", None)
        if exc is not None:
            self._fail_after_unlock = None
            self.on_error(exc)
            return
        if drained and self._want_write:
            self._want_write = False
            self.reactor.want_write(self, False)

    _fail_after_unlock: Optional[Exception] = None


class AcceptorLink(Link):
    """A listening socket on the reactor: ``on_readable`` accepts every
    pending connection and hands each to ``on_accept(sock, addr)`` (which
    must not block -- spawn_blocking any handshake)."""

    def __init__(self, listener, on_accept,
                 reactor: Optional[Reactor] = None, label: str = "") -> None:
        self.listener = listener
        self.on_accept = on_accept
        self.reactor = reactor or global_reactor()
        self.label = label
        self.link_state = "healthy"
        self._closed = False
        try:
            listener.setblocking(False)
        except OSError:
            pass

    def start(self) -> None:
        self.reactor.register(self)

    def fileno(self) -> int:
        try:
            return self.listener.fileno()
        except (OSError, ValueError):
            return -1

    def on_readable(self) -> None:
        while not self._closed:
            try:
                sock, addr = self.listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self.close()
                return
            try:
                self.on_accept(sock, addr)
            except Exception:
                try:
                    sock.close()
                except OSError:
                    pass

    def stats(self) -> dict:
        return {"label": self.label, "listening": not self._closed}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.link_state = "dead"
        self.reactor.unregister(self)
        try:
            self.listener.close()
        except Exception:
            pass
