"""Retry/backoff policy shared by the self-healing layers.

One policy object answers three questions for a reconnect loop:

- *how long to wait* before attempt ``n`` (exponential backoff with
  bounded, optionally seeded jitter -- deterministic under a seeded RNG
  so chaos scenarios replay exactly);
- *whether to keep trying* (a ``max_retries`` cap and a wall-clock
  ``deadline`` measured from the first failure);
- *when to downgrade* the transport (after ``shm_failures`` consecutive
  shared-memory failures the next attempt negotiates plain TCPROS).

Used by the subscriber's per-link reconnect, the node's master watchdog
(with ``max_retries=None``: a node never gives up on its master) and the
chaos soak harness.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``max_retries=None`` retries forever; ``deadline=None`` removes the
    wall-clock bound.  ``jitter`` is the +/- fraction applied to each
    delay; pass a seeded ``rng`` for reproducible schedules.
    """

    base_delay: float = 0.05
    max_delay: float = 2.0
    factor: float = 2.0
    jitter: float = 0.2
    max_retries: Optional[int] = 8
    deadline: Optional[float] = 30.0
    #: Consecutive SHMROS failures before the next attempt negotiates
    #: plain TCPROS (the SHM -> TCPROS downgrade of the failover ladder).
    shm_failures: int = 1
    rng: Optional[random.Random] = None

    def delay(self, attempt: int) -> float:
        """Backoff before attempt ``attempt`` (1-based)."""
        if attempt < 1:
            attempt = 1
        raw = min(self.max_delay,
                  self.base_delay * (self.factor ** (attempt - 1)))
        if self.jitter:
            rng = self.rng if self.rng is not None else random
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    def gives_up(self, attempt: int, started: float,
                 now: Optional[float] = None) -> bool:
        """Whether attempt ``attempt`` (1-based) should not run at all."""
        if self.max_retries is not None and attempt > self.max_retries:
            return True
        if self.deadline is not None:
            if (now if now is not None else time.monotonic()) \
                    - started > self.deadline:
                return True
        return False

    def seeded(self, seed) -> "RetryPolicy":
        """A copy of this policy with a private seeded RNG (deterministic
        jitter for chaos scenarios)."""
        return RetryPolicy(
            base_delay=self.base_delay, max_delay=self.max_delay,
            factor=self.factor, jitter=self.jitter,
            max_retries=self.max_retries, deadline=self.deadline,
            shm_failures=self.shm_failures, rng=random.Random(seed),
        )


#: Defaults used when a node/subscriber is not given an explicit policy.
DEFAULT_LINK_RETRY = RetryPolicy()
DEFAULT_MASTER_RETRY = RetryPolicy(max_retries=None, deadline=None,
                                   base_delay=0.1, max_delay=2.0)
#: Candidate-sweep backoff for graph-plane failover proxies: short and
#: shallow, because the window it must ride out (replica promotion) is a
#: few probe intervals, and every sweep already tried every candidate.
DEFAULT_FAILOVER_RETRY = RetryPolicy(base_delay=0.025, max_delay=0.2,
                                     factor=1.5, jitter=0.25,
                                     max_retries=None, deadline=2.0)


@dataclass
class RetryState:
    """Mutable bookkeeping for one reconnect target (one publisher URI)."""

    attempts: int = 0
    started: float = field(default_factory=time.monotonic)
    #: Consecutive failures whose transport was (or was negotiating)
    #: shared memory -- drives the SHM -> TCPROS downgrade.
    shm_failures: int = 0
    exhausted: bool = False

    def allow_shm(self, policy: RetryPolicy) -> bool:
        return self.shm_failures < policy.shm_failures


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01,
               desc: str = "condition"):
    """Poll ``predicate`` until truthy; the condition-based wait used by
    every chaos test (no bare sleeps).  Returns the truthy value, raises
    ``TimeoutError`` with ``desc`` otherwise."""
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out after {timeout}s waiting for {desc}")
        time.sleep(interval)


class CancellableTimer:
    """A one-shot timer whose callback checks liveness itself; thin
    wrapper so retry schedulers can cancel pending attempts on shutdown."""

    def __init__(self, delay: float, callback) -> None:
        self._timer = threading.Timer(delay, callback)
        self._timer.daemon = True
        self._timer.start()

    def cancel(self) -> None:
        self._timer.cancel()
