"""ROS time primitives.

ROS serializes ``time`` and ``duration`` as two 32-bit words
(seconds, nanoseconds).  :class:`Time` and :class:`Duration` are
2-iterables so they interoperate with the serializers' ``(secs, nsecs)``
tuples, while offering the usual arithmetic and conversion helpers.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

_NSECS_PER_SEC = 1_000_000_000


def _normalize(secs: int, nsecs: int) -> tuple[int, int]:
    extra, nsecs = divmod(nsecs, _NSECS_PER_SEC)
    return secs + extra, nsecs


@dataclass(frozen=True, order=True)
class Duration:
    """A signed span of time with nanosecond resolution."""

    secs: int = 0
    nsecs: int = 0

    def __post_init__(self):
        secs, nsecs = _normalize(self.secs, self.nsecs)
        object.__setattr__(self, "secs", secs)
        object.__setattr__(self, "nsecs", nsecs)

    @classmethod
    def from_sec(cls, seconds: float) -> "Duration":
        """Build a Duration from fractional seconds."""
        secs = int(seconds)
        nsecs = int(round((seconds - secs) * _NSECS_PER_SEC))
        return cls(secs, nsecs)

    def to_sec(self) -> float:
        """This span as fractional seconds."""
        return self.secs + self.nsecs / _NSECS_PER_SEC

    def to_nsec(self) -> int:
        """This span as integer nanoseconds."""
        return self.secs * _NSECS_PER_SEC + self.nsecs

    def __iter__(self):
        return iter((self.secs, self.nsecs))

    def __add__(self, other: "Duration") -> "Duration":
        return Duration(self.secs + other.secs, self.nsecs + other.nsecs)

    def __sub__(self, other: "Duration") -> "Duration":
        return Duration(self.secs - other.secs, self.nsecs - other.nsecs)

    def __neg__(self) -> "Duration":
        return Duration(-self.secs, -self.nsecs)

    def __bool__(self) -> bool:
        return bool(self.secs or self.nsecs)


@dataclass(frozen=True, order=True)
class Time:
    """A point in time (non-negative), wall-clock based."""

    secs: int = 0
    nsecs: int = 0

    def __post_init__(self):
        secs, nsecs = _normalize(self.secs, self.nsecs)
        if secs < 0:
            raise ValueError("Time cannot be negative")
        object.__setattr__(self, "secs", secs)
        object.__setattr__(self, "nsecs", nsecs)

    @classmethod
    def now(cls) -> "Time":
        """The current wall-clock time."""
        nanos = _time.time_ns()
        return cls(nanos // _NSECS_PER_SEC, nanos % _NSECS_PER_SEC)

    @classmethod
    def from_sec(cls, seconds: float) -> "Time":
        """Build a Time from fractional seconds since the epoch."""
        secs = int(seconds)
        nsecs = int(round((seconds - secs) * _NSECS_PER_SEC))
        return cls(secs, nsecs)

    def to_sec(self) -> float:
        """This instant as fractional seconds since the epoch."""
        return self.secs + self.nsecs / _NSECS_PER_SEC

    def to_nsec(self) -> int:
        """This instant as integer nanoseconds since the epoch."""
        return self.secs * _NSECS_PER_SEC + self.nsecs

    def __iter__(self):
        return iter((self.secs, self.nsecs))

    def __add__(self, other: Duration) -> "Time":
        return Time(self.secs + other.secs, self.nsecs + other.nsecs)

    def __sub__(self, other):
        if isinstance(other, Time):
            return Duration(self.secs - other.secs, self.nsecs - other.nsecs)
        if isinstance(other, Duration):
            return Time(self.secs - other.secs, self.nsecs - other.nsecs)
        return NotImplemented


def stamp_to_tuple(stamp) -> tuple[int, int]:
    """Normalize a Time/Duration/tuple to the wire ``(secs, nsecs)``."""
    secs, nsecs = stamp
    return int(secs), int(nsecs)
