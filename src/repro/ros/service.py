"""ROS services: request/reply over the TCPROS-style transport.

The wire protocol mirrors ROS1's service flavour of TCPROS:

- the client connects to the provider's ``rosrpc://host:port`` endpoint
  and sends a handshake header (``service``, ``md5sum``, ``callerid``,
  ``format``, ``persistent``);
- the server validates and replies with its header;
- each call is one request frame; each reply is a 1-byte ok flag followed
  by one frame (the response on success, an error string on failure).

Services use the same codec seam as topics, so a service whose
request/response classes are SFM-generated is serialization-free end to
end -- an extension beyond the paper's evaluation, but a direct corollary
of its design.
"""

from __future__ import annotations

import re
import socket
import threading
from typing import Callable, Optional

from repro.msg.srv import ServiceType
from repro.ros.codecs import codec_for_class
from repro.ros.exceptions import ConnectionHandshakeError, RosError
from repro.ros.transport import tcpros

_ROSRPC_RE = re.compile(r"^rosrpc://([^:/]+):(\d+)$")

OK_FLAG = b"\x01"
ERROR_FLAG = b"\x00"


class ServiceError(RosError):
    """The service handler failed; carries the server-reported reason."""


class ServiceServer:
    """One advertised service endpoint."""

    def __init__(self, node, name: str, srv_type: ServiceType,
                 handler: Callable) -> None:
        self.node = node
        self.name = name
        self.srv_type = srv_type
        self.handler = handler
        self.request_codec = codec_for_class(srv_type.request_class)
        self.response_codec = codec_for_class(srv_type.response_class)
        self.call_count = 0
        self._shutdown = False
        self._active_lock = threading.Lock()
        self._active_socks: set[socket.socket] = set()

    @property
    def uri(self) -> str:
        server = self.node._data_server
        return f"rosrpc://{server.host}:{server.port}"

    # Called by the node's data server dispatcher.
    def _accept(self, sock: socket.socket, header: dict[str, str]) -> None:
        their_md5 = header.get("md5sum", "*")
        if their_md5 not in ("*", self.srv_type.md5sum):
            tcpros.reject_connection(sock, f"md5sum mismatch for {self.name}")
            return
        their_format = header.get("format", "ros")
        if their_format != self.request_codec.format_name:
            tcpros.reject_connection(
                sock,
                f"wire format mismatch: client sends {their_format}, "
                f"server expects {self.request_codec.format_name}",
            )
            return
        reply = {
            "callerid": self.node.name,
            "service": self.name,
            "md5sum": self.srv_type.md5sum,
            "type": self.srv_type.spec.full_name,
            "format": self.request_codec.format_name,
        }
        try:
            tcpros.write_frame(sock, tcpros.encode_header(reply))
        except OSError:
            sock.close()
            return
        threading.Thread(
            target=self._serve_loop, args=(sock,), daemon=True,
            name=f"srv:{self.name}",
        ).start()

    def _serve_loop(self, sock: socket.socket) -> None:
        with self._active_lock:
            if self._shutdown:
                sock.close()
                return
            self._active_socks.add(sock)
        try:
            while not self._shutdown:
                frame = tcpros.read_frame(sock)
                self.call_count += 1
                try:
                    request = self.request_codec.decode(frame)
                    response = self.handler(request)
                    if not isinstance(
                        response, self.srv_type.response_class
                    ):
                        raise TypeError(
                            f"handler returned {type(response).__name__}, "
                            f"expected "
                            f"{self.srv_type.response_class.__name__}"
                        )
                    payload, release = self.response_codec.encode(response)
                    try:
                        sock.sendall(OK_FLAG)
                        tcpros.write_frame(sock, payload)
                    finally:
                        if release is not None:
                            release()
                except Exception as exc:  # handler errors go to the client
                    reason = f"{type(exc).__name__}: {exc}".encode("utf-8")
                    try:
                        sock.sendall(ERROR_FLAG)
                        tcpros.write_frame(sock, reason)
                    except OSError:
                        return
        except (ConnectionError, OSError):
            pass
        finally:
            with self._active_lock:
                self._active_socks.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        with self._active_lock:
            active = list(self._active_socks)
            self._active_socks.clear()
        for sock in active:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.node._unadvertise_service(self)


class ServiceProxy:
    """A callable client handle for one service."""

    def __init__(self, node, name: str, srv_type: ServiceType,
                 timeout: float = 10.0) -> None:
        self.node = node
        self.name = name
        self.srv_type = srv_type
        self.timeout = timeout
        self.request_codec = codec_for_class(srv_type.request_class)
        self.response_codec = codec_for_class(srv_type.response_class)
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        uri = self.node.master.lookup_service(self.node.name, self.name)
        match = _ROSRPC_RE.match(uri)
        if not match:
            raise ConnectionHandshakeError(f"bad service uri {uri!r}")
        host, port = match.group(1), int(match.group(2))
        header = {
            "callerid": self.node.name,
            "service": self.name,
            "md5sum": self.srv_type.md5sum,
            "format": self.request_codec.format_name,
            "persistent": "1",
        }
        sock, _reply = tcpros.connect_subscriber(
            host, port, header, timeout=self.timeout
        )
        return sock

    def __call__(self, request=None, **kwargs):
        """Invoke the service; returns the response message.

        Pass a request message, or field values as keyword arguments
        (``proxy(a=1, b=2)``).
        """
        if request is None:
            request = self.srv_type.request_class(**kwargs)
        elif kwargs:
            raise TypeError("pass a request message or kwargs, not both")
        payload, release = self.request_codec.encode(request)
        with self._lock:
            if self._sock is None:
                self._sock = self._connect()
            try:
                try:
                    tcpros.write_frame(self._sock, payload)
                finally:
                    if release is not None:
                        release()
                flag = tcpros.read_exact(self._sock, 1)
                frame = tcpros.read_frame(self._sock)
            except (ConnectionError, OSError):
                self.close_connection()
                raise
        if bytes(flag) == ERROR_FLAG:
            raise ServiceError(bytes(frame).decode("utf-8", "replace"))
        return self.response_codec.decode(frame)

    def close_connection(self) -> None:
        # Callers either hold self._lock already (failure path inside a
        # call) or are tearing the proxy down; plain swap is sufficient.
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
