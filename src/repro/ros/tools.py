"""Command-line tools: the rostopic/rosparam/rosbag-style CLI.

Usage::

    python -m repro.ros.tools topic list  --master http://127.0.0.1:PORT/
    python -m repro.ros.tools topic info  --master URI /camera/image
    python -m repro.ros.tools topic hz    --master URI /camera/image TYPE
    python -m repro.ros.tools topic echo  --master URI /camera/image TYPE -n 3
    python -m repro.ros.tools param get|set|list --master URI [KEY [VALUE]]
    python -m repro.ros.tools bag info PATH.bag
    python -m repro.ros.tools bag record /chatter=std_msgs/String \
        --master URI --out out.bag --duration 5
    python -m repro.ros.tools bag play out.bag --master URI --rate 1.0
    python -m repro.ros.tools top --master URI --interval 1.0
    python -m repro.ros.tools check FILE.py [FILE2.py ...]   # ROS-SF Converter
    python -m repro.ros.tools msg show sensor_msgs/Image
    python -m repro.ros.tools sfm stats
    python -m repro.ros.tools bridge --master URI --port 9090 --metrics-port 9091
    python -m repro.ros.tools graph launch --shards 2
    python -m repro.ros.tools graph dump --master SPEC [/name]
    python -m repro.ros.tools graph lag --master SPEC
    python -m repro.ros.tools graph routes --routed ADMIN_URI

Message types are given as full names (``sensor_msgs/Image``); append
``@sfm`` to subscribe with the serialization-free class
(``sensor_msgs/Image@sfm``).
"""

from __future__ import annotations

import argparse
import json
import sys

import repro.msg.library  # noqa: F401  (registers the standard library)
from repro.msg.registry import default_registry


def _resolve_class(spelling: str):
    from repro.bridge.server import resolve_msg_class

    try:
        return resolve_msg_class(spelling, default_registry)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _make_node(master_uri: str):
    from repro.ros.node import NodeHandle

    return NodeHandle("rossf_tools", master_uri)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_topic(args) -> int:
    from repro.ros import introspection

    if args.action == "list":
        for topic, type_name in introspection.list_topics(args.master):
            print(f"{topic} [{type_name}]")
        return 0
    if args.action == "info":
        info = introspection.topic_info(args.master, args.topic)
        print(f"Type: {info.type_name or '<unknown>'}")
        print("Publishers:")
        for node in info.publishers:
            print(f"  {node}")
        print("Subscribers:")
        for node in info.subscribers:
            print(f"  {node}")
        _print_link_errors(info.link_errors)
        return 0
    node = _make_node(args.master)
    link_errors: dict = {}
    try:
        msg_class = _resolve_class(args.type)
        if args.action == "hz":
            hz = introspection.measure_hz(
                node, args.topic, msg_class, window=args.count,
                timeout=args.timeout, errors=link_errors,
            )
            _print_link_errors(link_errors)
            print(f"average rate: {hz:.2f} Hz over {args.count} messages")
            return 0
        if args.action == "echo":
            messages = introspection.echo(
                node, args.topic, msg_class, count=args.count,
                timeout=args.timeout, errors=link_errors,
            )
            _print_link_errors(link_errors)
            for msg in messages:
                print(repr(msg))
                print("---")
            return 0 if messages else 1
    finally:
        # The node (slave server, data server, any remaining
        # subscriptions) must go down on every exit path -- early count
        # completion, timeout and Ctrl-C alike.
        node.shutdown()
    raise SystemExit(f"unknown topic action {args.action!r}")


def _print_link_errors(link_errors: dict) -> None:
    """Surface per-publisher handshake failures on stderr."""
    for uri, error in sorted(link_errors.items()):
        print(f"warning: connection to {uri} failed: {error}",
              file=sys.stderr)


def cmd_param(args) -> int:
    from repro.ros.master import MasterProxy

    proxy = MasterProxy(args.master)
    if args.action == "list":
        for key in proxy.get_param_names("/rossf_tools"):
            print(key)
        return 0
    if args.action == "get":
        print(json.dumps(proxy.get_param("/rossf_tools", args.key)))
        return 0
    if args.action == "set":
        try:
            value = json.loads(args.value)
        except json.JSONDecodeError:
            value = args.value
        proxy.set_param("/rossf_tools", args.key, value)
        return 0
    raise SystemExit(f"unknown param action {args.action!r}")


def cmd_bag_info(args) -> int:
    from repro.ros.bag import BagReader

    reader = BagReader(args.path)
    print(f"path:     {args.path}")
    print(f"messages: {len(reader)}")
    print(f"topics:   {len(reader.topics())}")
    for topic, connection in sorted(reader.topics().items()):
        count = len(reader.messages(topic))
        print(f"  {topic:<30} {count:>6} msgs  {connection.type_name} "
              f"[{connection.format_name}] md5={connection.md5sum[:8]}")
    return 0


def _parse_topic_specs(specs: list) -> list:
    """``TOPIC=TYPE`` pairs -> ``[(topic, msg_class), ...]``."""
    out = []
    for spec in specs:
        topic, sep, spelling = spec.partition("=")
        if not sep or not topic or not spelling:
            raise SystemExit(
                f"bad topic spec {spec!r} (expected TOPIC=TYPE, e.g. "
                "/camera/image=sensor_msgs/Image@sfm)"
            )
        out.append((topic, _resolve_class(spelling)))
    return out


def cmd_bag_record(args) -> int:
    import time

    from repro.ros.bag import BagRecorder, BagWriter

    subscriptions = _parse_topic_specs(args.topics)
    node = _make_node(args.master)
    writer = BagWriter(args.out)
    recorder = BagRecorder(node, writer)
    try:
        for topic, msg_class in subscriptions:
            recorder.record(topic, msg_class)
        print(f"recording {len(subscriptions)} topic(s) to {args.out} "
              f"for {args.duration:.1f}s", flush=True)
        time.sleep(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        recorder.stop()
        writer.close()
        node.shutdown()
    print(f"recorded {writer.message_count} message(s)")
    return 0


def cmd_bag_play(args) -> int:
    import time

    from repro.ros.bag import BagReader, play

    reader = BagReader(args.path)
    node = _make_node(args.master)
    try:
        published = play(
            reader, node, rate=args.rate,
            wait_for_subscribers=args.wait_subs,
        )
        # Let the per-link send queues drain before tearing the node
        # down, or the tail of a fast (rate=0) replay never hits the
        # wire.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            depth = sum(
                stats["queue_depth"]
                for stats in node.topic_stats()["publishers"]
            )
            if depth == 0:
                break
            time.sleep(0.02)
    finally:
        node.shutdown()
    print(f"played {published} message(s) from {args.path}")
    return 0


def cmd_top(args) -> int:
    """Live per-topic rate/bandwidth table plus SFM manager state."""
    from repro.obs.top import TopMonitor

    with TopMonitor(args.master, bridge=args.bridge) as monitor:
        monitor.run(iterations=args.count, interval=args.interval)
    return 0


def cmd_check(args) -> int:
    """The ROS-SF Converter front end: analyze sources, print guidance."""
    from repro.converter import analyze_source, conversion_guidance

    total_violations = 0
    for path in args.files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        report = analyze_source(source, path=path)
        print(conversion_guidance(report))
        total_violations += len(report.violations)
    return 1 if total_violations else 0


def cmd_msg(args) -> int:
    if args.action == "list":
        for name in default_registry.names():
            print(name)
        return 0
    if args.action == "show":
        spec = default_registry.get(args.type)
        print(f"# {spec.full_name}  md5={default_registry.md5sum(spec.full_name)}")
        for const in spec.constants:
            print(f"{const.type.name} {const.name}={const.raw_value}")
        for field in spec.fields:
            optional = "optional " if field.optional else ""
            print(f"{optional}{field.type.name} {field.name}")
        if spec.sfm_capacity:
            print(f"# sfm_capacity: {spec.sfm_capacity}")
        return 0
    raise SystemExit(f"unknown msg action {args.action!r}")


def cmd_sfm(args) -> int:
    from repro.rossf.diagnostics import report

    print(report().render())
    return 0


def cmd_config(args) -> int:
    """Dump every REPRO_* switch resolved against this environment."""
    from repro import config

    rows = config.describe()
    if getattr(args, "json", False):
        print(json.dumps(rows, indent=2))
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        value = "on " if row["value"] else "off"
        source = (
            f"env={row['env']!r}" if row["env"]
            else f"default={'1' if row['default'] else '0'}"
        )
        pinned = "  [read]" if row["pinned"] else ""
        print(f"{row['name']:<{width}}  {value}  ({source}){pinned}  "
              f"{row['description']}")
    return 0


def cmd_graph(args) -> int:
    """Graph-plane operations: launch, per-shard dump, replication lag,
    RouteD route tables."""
    import xmlrpc.client

    from repro.graphplane import parse_spec, shard_for

    if args.action == "launch":
        import time

        from repro.graphplane import GraphPlane

        plane = GraphPlane(shards=args.shards, replicas=not args.no_replicas)
        print(f"graph plane up: {plane.shard_count} shard(s)"
              f"{'' if args.no_replicas else ' + replicas'}", flush=True)
        print(f"spec: {plane.spec}", flush=True)
        routed = None
        if args.routed:
            from repro.graphplane import RouteD

            routed = RouteD(name=args.routed_name)
            print(f"routed '{routed.name}' listening on "
                  f"{routed.listen_addr[0]}:{routed.listen_addr[1]} "
                  f"(admin {routed.admin_uri})", flush=True)
        try:
            while True:
                time.sleep(0.5)
        except KeyboardInterrupt:
            return 0
        finally:
            if routed is not None:
                routed.shutdown()
            plane.shutdown()
    if args.action in ("dump", "lag") and not args.master:
        raise SystemExit(f"graph {args.action} requires --master SPEC")
    if args.action == "routes" and not args.routed:
        raise SystemExit("graph routes requires --routed ADMIN_URI")
    if args.action == "dump":
        shards = parse_spec(args.master)
        for index, candidates in enumerate(shards):
            info = None
            for uri in candidates:
                try:
                    proxy = xmlrpc.client.ServerProxy(uri, allow_none=True)
                    code, _status, info = proxy.getShardInfo("/rossf_tools")
                    if code == 1:
                        break
                except OSError:
                    info = None
            if info is None:
                print(f"shard {index}: unreachable ({'|'.join(candidates)})")
                continue
            print(f"shard {index}: {info.get('role')} at {info.get('uri')}")
            for key in ("epoch", "log_seq", "applied_seq", "replica_uri",
                        "replica_acked", "replication_lag", "topics"):
                if key in info:
                    print(f"  {key}: {info[key]}")
        if args.name:
            owner = shard_for(args.name, len(shards))
            print(f"{args.name} -> shard {owner}")
        return 0
    if args.action == "lag":
        shards = parse_spec(args.master)
        worst = 0
        for index, candidates in enumerate(shards):
            lag = "?"
            try:
                proxy = xmlrpc.client.ServerProxy(
                    candidates[0], allow_none=True)
                code, _status, info = proxy.getShardInfo("/rossf_tools")
                if code == 1:
                    lag = info.get("replication_lag", 0)
                    worst = max(worst, int(lag))
            except OSError:
                pass
            print(f"shard {index}: replication lag {lag} record(s)")
        return 0 if worst == 0 else 1
    if args.action == "routes":
        proxy = xmlrpc.client.ServerProxy(args.routed, allow_none=True)
        status = proxy.getStatus()
        print(f"routed '{status['name']}' listening on {status['listen']}")
        print("routes:")
        for target, peer in sorted(status.get("routes", {}).items()):
            print(f"  {target} via {peer}")
        print("mux links:")
        for link in status.get("mux_links", []):
            channels = link.get("channels", [])
            print(f"  peer {link.get('peer')}: {len(channels)} channel(s) "
                  f"{channels}")
        return 0
    raise SystemExit(f"unknown graph action {args.action!r}")


def cmd_bridge(args) -> int:
    """Run the external-client gateway until interrupted."""
    import time

    from repro.bridge.server import BridgeServer

    server = BridgeServer(
        args.master, host=args.host, port=args.port, node_name=args.name
    )
    if args.ws_port is not None:
        frontend = server.enable_ws(
            host=args.host, port=args.ws_port,
            auth_tokens=args.auth_token,
        )
        print(f"websocket front door at {frontend.url} "
              f"(SSE fallback on /sse"
              f"{', token auth on' if args.auth_token else ''})",
              flush=True)
    metrics = None
    if args.metrics_port is not None:
        from repro.obs.export import MetricsServer

        metrics = MetricsServer(host=args.host, port=args.metrics_port)
        print(f"metrics at {metrics.url}/metrics", flush=True)
    print(f"bridge listening on {server.host}:{server.port} "
          f"(graph master {args.master})", flush=True)
    try:
        while True:
            if args.stats_interval:
                from repro.obs.top import render_bridge_clients

                time.sleep(args.stats_interval)
                print(render_bridge_clients(server.stats_snapshot()),
                      flush=True)
            else:
                time.sleep(0.5)
    except KeyboardInterrupt:
        return 0
    finally:
        if metrics is not None:
            metrics.close()
        server.shutdown()


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.ros.tools", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topic = sub.add_parser("topic", help="topic introspection")
    topic.add_argument("action", choices=["list", "info", "hz", "echo"])
    topic.add_argument("topic", nargs="?", help="topic name")
    topic.add_argument("type", nargs="?", help="message type (for hz/echo)")
    topic.add_argument("--master", required=True)
    topic.add_argument("-n", "--count", type=int, default=10)
    topic.add_argument("--timeout", type=float, default=10.0)
    topic.set_defaults(func=cmd_topic)

    param = sub.add_parser("param", help="parameter server access")
    param.add_argument("action", choices=["get", "set", "list"])
    param.add_argument("key", nargs="?")
    param.add_argument("value", nargs="?")
    param.add_argument("--master", required=True)
    param.set_defaults(func=cmd_param)

    bag = sub.add_parser("bag", help="bag recording, playback, inspection")
    bag_sub = bag.add_subparsers(dest="action", required=True)

    bag_info = bag_sub.add_parser("info", help="summarize a bag file")
    bag_info.add_argument("path")
    bag_info.set_defaults(func=cmd_bag_info)

    bag_record = bag_sub.add_parser(
        "record", help="subscribe and record topics to a bag"
    )
    bag_record.add_argument(
        "topics", nargs="+", metavar="TOPIC=TYPE",
        help="e.g. /camera/image=sensor_msgs/Image@sfm",
    )
    bag_record.add_argument("--master", required=True)
    bag_record.add_argument("--out", "-o", required=True, help="bag path")
    bag_record.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds to record before stopping",
    )
    bag_record.set_defaults(func=cmd_bag_record)

    bag_play = bag_sub.add_parser(
        "play", help="republish a bag into a live graph"
    )
    bag_play.add_argument("path")
    bag_play.add_argument("--master", required=True)
    bag_play.add_argument(
        "--rate", type=float, default=1.0,
        help="time scale (0 = as fast as possible)",
    )
    bag_play.add_argument(
        "--wait-subs", type=float, default=0.0,
        help="seconds to wait for one subscriber per topic",
    )
    bag_play.set_defaults(func=cmd_bag_play)

    top = sub.add_parser(
        "top", help="live per-topic rate/bandwidth monitor (repro.obs)"
    )
    top.add_argument("--master", required=True)
    top.add_argument(
        "-n", "--count", type=int, default=0,
        help="iterations before exiting (0 = run until interrupted)",
    )
    top.add_argument("--interval", type=float, default=1.0)
    top.add_argument(
        "--bridge", default=None, metavar="HOST:PORT",
        help="also show the per-client table of this bridge gateway",
    )
    top.set_defaults(func=cmd_top)

    check = sub.add_parser(
        "check", help="ROS-SF Converter: check sources for the three "
        "assumptions",
    )
    check.add_argument("files", nargs="+")
    check.set_defaults(func=cmd_check)

    msg = sub.add_parser("msg", help="message definitions")
    msg.add_argument("action", choices=["list", "show"])
    msg.add_argument("type", nargs="?")
    msg.set_defaults(func=cmd_msg)

    sfm = sub.add_parser("sfm", help="ROS-SF runtime diagnostics")
    sfm.add_argument("action", choices=["stats"])
    sfm.set_defaults(func=cmd_sfm)

    config_p = sub.add_parser(
        "config", help="dump every REPRO_* switch (repro.config)"
    )
    config_p.add_argument("--json", action="store_true",
                          help="machine-readable output")
    config_p.set_defaults(func=cmd_config)

    graph = sub.add_parser(
        "graph", help="graph-plane operations (repro.graphplane)"
    )
    graph.add_argument("action",
                       choices=["launch", "dump", "lag", "routes"])
    graph.add_argument(
        "name", nargs="?",
        help="for dump: also print which shard owns this graph name",
    )
    graph.add_argument(
        "--master", default=None,
        help="graph-plane spec (shards separated by ',', failover "
        "candidates by '|')",
    )
    graph.add_argument("--shards", type=int, default=2,
                       help="for launch: shard count")
    graph.add_argument("--no-replicas", action="store_true",
                       help="for launch: leaders only, no failover")
    graph.add_argument("--routed", nargs="?", const="start", default=None,
                       help="for launch: also start a RouteD daemon "
                       "(no value needed); for routes: the daemon's "
                       "admin URI")
    graph.add_argument("--routed-name", default="routed",
                       help="for launch: the RouteD daemon's name")
    graph.set_defaults(func=cmd_graph)

    bridge = sub.add_parser(
        "bridge", help="run the external-client gateway (repro.bridge)"
    )
    bridge.add_argument("--master", required=True)
    bridge.add_argument("--host", default="127.0.0.1")
    bridge.add_argument("--port", type=int, default=9090)
    bridge.add_argument("--name", default="rossf_bridge")
    bridge.add_argument(
        "--metrics-port", type=int, default=None,
        help="also serve Prometheus /metrics on this port",
    )
    bridge.add_argument(
        "--ws-port", type=int, default=None,
        help="open the WebSocket/SSE front door on this port",
    )
    bridge.add_argument(
        "--auth-token", action="append", default=None, metavar="TOKEN",
        help="require one of these tokens on ws/SSE connections "
        "(repeatable)",
    )
    bridge.add_argument(
        "--stats-interval", type=float, default=0.0,
        help="print the per-client table every N seconds",
    )
    bridge.set_defaults(func=cmd_bridge)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
