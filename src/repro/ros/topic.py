"""Publisher and Subscriber: the topic layer.

The user-facing API mirrors roscpp/rospy:

- ``pub = nh.advertise(topic, MsgClass)`` then ``pub.publish(msg)``;
- ``nh.subscribe(topic, MsgClass, callback)`` and the callback receives
  the message object.

Internally the publisher keeps one outbound link (socket + bounded queue +
sender thread) per connected subscriber; the subscriber keeps one inbound
link per discovered publisher.  Payload encoding happens **once per
publish** regardless of fan-out, and the payload's release hook (the SFM
buffer pointer) fires only after every link has sent or dropped it --
reproducing the reference counting of the paper's Fig. 8.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
import warnings
import xmlrpc.client
from collections import deque
from typing import Callable, Optional

from repro.obs import instrument as obs_instrument
from repro.obs import trace as obs_trace
from repro.obs.metrics import global_registry as obs_registry
from repro.obs.trace import tracer
from repro.ros import reactor as reactor_mod
from repro.ros.codecs import codec_for_class, type_info_for_class
from repro.ros.exceptions import TopicTypeMismatch
from repro.ros.retry import CancellableTimer, DEFAULT_LINK_RETRY, RetryState
from repro.ros.transport import shm, tcpros, tzc
from repro.ros.transport.intraprocess import local_bus
from repro.sfm.manager import MessageState


class _DrainDecoder:
    """Outbound data sockets are one-way after the handshake: inbound
    bytes are discarded, only EOF/reset (surfaced by the reactor's read)
    matters."""

    __slots__ = ()

    def feed(self, data) -> list:
        return []


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (the unified Link protocol)",
        DeprecationWarning,
        stacklevel=3,
    )


class _Outgoing:
    """One encoded payload shared by all links; releases the codec's
    payload hook when every link is done with it.

    ``trace_id``/``pub_ns`` are the message's observability identity:
    zero when untraced, otherwise carried on the wire by traced links so
    the subscriber can stamp receive-side spans and the latency
    histogram against the publish instant.
    """

    __slots__ = ("payload", "trace_id", "pub_ns", "tzc_parts", "_remaining",
                 "_release", "_lock")

    def __init__(self, payload, fanout: int, release,
                 trace_id: int = 0, pub_ns: int = 0) -> None:
        self.payload = payload
        self.trace_id = trace_id
        self.pub_ns = pub_ns
        #: Precomputed TZC split (control + bulk iovecs), set once per
        #: publish when any link negotiated TZC framing, so the split --
        #: like the encode -- happens once regardless of fan-out.
        self.tzc_parts = None
        self._remaining = fanout
        self._release = release
        self._lock = threading.Lock()

    def done(self) -> None:
        with self._lock:
            self._remaining -= 1
            finished = self._remaining == 0
        if finished and self._release is not None:
            self._release()


class _OutboundLink:
    """Publisher-side connection to one subscriber."""

    is_shm = False

    def __init__(
        self, publisher: "Publisher", sock, subscriber_id: str,
        traced: bool = False, tzc_mode: bool = False,
    ) -> None:
        self.publisher = publisher
        self.sock = sock
        self.subscriber_id = subscriber_id
        #: Both ends negotiated ``trace=1``: every frame carries the
        #: 16-byte observability prefix (zeros for untraced messages).
        self.traced = traced
        #: Both ends negotiated ``tzc=1``: messages travel as a compact
        #: control frame plus a bulk frame of arena-sliced iovecs instead
        #: of one monolithic payload frame (partial serialization).
        self.tzc = tzc_mode
        self._queue: deque[_Outgoing] = deque()
        self._condition = threading.Condition()
        self._closed = False
        self.dropped = 0
        self.sent_count = 0
        self.sent_bytes = 0
        self._thread = None
        self._monitor = None
        self._rlink = None
        self._ka_timer = None
        self._pump_scheduled = False
        self._reactor = reactor_mod.reactor_enabled()
        if self._reactor:
            # Reactor mode: EOF detection, sends and keepalives all ride
            # the shared loop -- this link owns zero threads.
            loop = reactor_mod.global_reactor()
            self._loop = loop
            self._last_activity = time.monotonic()
            self._rlink = reactor_mod.StreamLink(
                sock,
                _DrainDecoder(),
                on_events=lambda events: None,
                on_error=lambda exc: self._shutdown_from_error(),
                reactor=loop,
                label=f"pub:{publisher.topic}->{subscriber_id}",
            )
            self._rlink.start()
            keepalive = getattr(publisher.node, "link_keepalive", 2.0)
            if keepalive:
                self._ka_timer = loop.call_later(
                    keepalive, self._keepalive_tick
                )
        else:
            self._thread = threading.Thread(
                target=self._send_loop,
                daemon=True,
                name=f"pub:{publisher.topic}->{subscriber_id}",
            )
            self._thread.start()
            # The subscriber never speaks on a TCPROS data socket after
            # the handshake, so a blocking read resolves only when the
            # link dies: EOF (or reset) here detects a vanished
            # subscriber without waiting for the next send to fail.
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                daemon=True,
                name=f"pubmon:{publisher.topic}->{subscriber_id}",
            )
            self._monitor.start()

    def enqueue(self, outgoing: _Outgoing) -> None:
        schedule = False
        with self._condition:
            if self._closed:
                outgoing.done()
                return
            if (
                self.publisher.queue_size
                and len(self._queue) >= self.publisher.queue_size
            ):
                oldest = self._queue.popleft()
                oldest.done()
                self.dropped += 1
                self.publisher.dropped_count += 1
            self._queue.append(outgoing)
            if self._reactor and not self._pump_scheduled:
                self._pump_scheduled = True
                schedule = True
            self._condition.notify()
        if schedule:
            self._loop.call_soon(self._pump)

    def queue_depth(self) -> int:
        _deprecated("link.queue_depth()", 'link.stats()["queue_depth"]')
        return self._depth()

    def _depth(self) -> int:
        with self._condition:
            return len(self._queue)

    # -- unified Link protocol -----------------------------------------
    @property
    def link_state(self) -> str:
        return "dead" if self._closed else "healthy"

    def fileno(self) -> int:
        try:
            return self.sock.fileno()
        except (OSError, ValueError, AttributeError):
            return -1

    def on_readable(self) -> None:
        if self._rlink is not None:
            self._rlink.on_readable()

    def on_writable(self) -> None:
        if self._rlink is not None:
            self._rlink.on_writable()

    def stats(self) -> dict:
        return {
            "transport": "TZC" if self.tzc else "TCPROS",
            "subscriber": self.subscriber_id,
            "sent": self.sent_count,
            "bytes": self.sent_bytes,
            "dropped": self.dropped,
            "queue_depth": self._depth(),
            "traced": self.traced,
            "link_state": self.link_state,
        }

    # -- reactor send path ---------------------------------------------
    def _pump(self) -> None:
        """Drain the queue onto the reactor link's write buffer (loop
        thread).  Batching watermarks match the threaded ``_send_loop``;
        completion (``_Outgoing.done``) fires from the flush callback so
        SFM payloads stay alive until their bytes leave the process."""
        with self._condition:
            self._pump_scheduled = False
        max_frames = (
            tcpros.BATCH_MAX_FRAMES if tcpros.batching_enabled() else 1
        )
        while True:
            batch: list[_Outgoing] = []
            with self._condition:
                nbytes = 0
                while (
                    self._queue
                    and len(batch) < max_frames
                    and nbytes <= tcpros.BATCH_MAX_BYTES
                ):
                    outgoing = self._queue.popleft()
                    batch.append(outgoing)
                    nbytes += len(outgoing.payload)
            if not batch:
                return
            traced = self.traced
            if self.tzc:
                parts = tzc.split_batch_parts(
                    [(out.tzc_parts or self.publisher._tzc_split(out.payload),
                      out.trace_id, out.pub_ns)
                     for out in batch],
                    traced=traced,
                )
            elif traced:
                parts = tcpros.traced_frame_parts(
                    [(out.payload, out.trace_id, out.pub_ns)
                     for out in batch]
                )
            else:
                parts = tcpros.frame_parts([out.payload for out in batch])
            start_ns = (
                time.monotonic_ns()
                if traced and any(out.trace_id for out in batch)
                else 0
            )
            self._last_activity = time.monotonic()
            self._rlink.write(
                parts,
                on_flushed=lambda batch=batch, start_ns=start_ns:
                    self._batch_flushed(batch, start_ns),
            )

    def _batch_flushed(self, batch: list, start_ns: int) -> None:
        end_ns = time.monotonic_ns() if start_ns else 0
        transport_label = "TZC" if self.tzc else "TCPROS"
        closed = self._closed
        for out in batch:
            size = len(out.payload)
            if not closed:
                if self.traced and out.trace_id:
                    tracer.record(
                        "send", out.trace_id, start_ns, end_ns,
                        topic=self.publisher.topic,
                        transport=transport_label, bytes=size,
                    )
                self.sent_count += 1
                self.sent_bytes += size
            out.done()

    def _keepalive_tick(self) -> None:
        if self._closed:
            return
        keepalive = getattr(self.publisher.node, "link_keepalive", 2.0)
        if not keepalive:
            return
        idle_for = time.monotonic() - self._last_activity
        if idle_for >= keepalive and not self._depth() \
                and not self._rlink._pending_write():
            self._rlink.write([tcpros.KEEPALIVE_FRAME])
            self._last_activity = time.monotonic()
        self._ka_timer = self._loop.call_later(
            keepalive, self._keepalive_tick
        )

    def _send_loop(self) -> None:
        keepalive = getattr(self.publisher.node, "link_keepalive", 2.0) or None
        # Coalescing: flush everything already queued (up to the frame and
        # byte watermarks) as one vectored write.  A lone publish flushes
        # immediately -- the batch only grows from messages that were
        # queued behind it, so latency is never traded for throughput.
        max_frames = (
            tcpros.BATCH_MAX_FRAMES if tcpros.batching_enabled() else 1
        )
        while True:
            idle = False
            batch: list[_Outgoing] = []
            with self._condition:
                while not self._queue and not self._closed:
                    if not self._condition.wait(timeout=keepalive):
                        idle = True
                        break
                if self._closed and not self._queue:
                    return
                nbytes = 0
                while (
                    self._queue
                    and len(batch) < max_frames
                    and nbytes <= tcpros.BATCH_MAX_BYTES
                ):
                    outgoing = self._queue.popleft()
                    batch.append(outgoing)
                    nbytes += len(outgoing.payload)
            if not batch:
                if idle:
                    # Quiet topic: an in-band keepalive keeps the
                    # subscriber's idle timer from declaring us half-open.
                    # ``Exception``, not ``OSError``: a close() racing
                    # interpreter shutdown can surface arbitrary teardown
                    # errors, and this loop must exit quietly either way.
                    try:
                        tcpros.write_keepalive(self.sock)
                    except Exception:
                        self._shutdown_from_error()
                        return
                continue
            traced = self.traced
            start_ns = (
                time.monotonic_ns()
                if traced and any(out.trace_id for out in batch)
                else 0
            )
            try:
                if self.tzc:
                    tzc.send_split_batch(
                        self.sock,
                        [(out.tzc_parts or self.publisher._tzc_split(
                            out.payload),
                          out.trace_id, out.pub_ns)
                         for out in batch],
                        traced=traced,
                    )
                elif traced:
                    tcpros.write_traced_frames(
                        self.sock,
                        [(out.payload, out.trace_id, out.pub_ns)
                         for out in batch],
                    )
                else:
                    tcpros.write_frames(
                        self.sock, [out.payload for out in batch]
                    )
            except Exception:
                for out in batch:
                    out.done()
                self._shutdown_from_error()
                return
            end_ns = time.monotonic_ns() if start_ns else 0
            transport_label = "TZC" if self.tzc else "TCPROS"
            for out in batch:
                size = len(out.payload)
                if traced and out.trace_id:
                    tracer.record(
                        "send", out.trace_id, start_ns, end_ns,
                        topic=self.publisher.topic,
                        transport=transport_label, bytes=size,
                    )
                out.done()
                self.sent_count += 1
                self.sent_bytes += size

    def _monitor_loop(self) -> None:
        try:
            while not self._closed:
                if not self.sock.recv(4096):
                    break
        except Exception:
            pass
        if not self._closed:
            self._shutdown_from_error()

    def _shutdown_from_error(self) -> None:
        self.close()
        self.publisher._remove_link(self)

    def close(self) -> None:
        with self._condition:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._condition.notify_all()
        for outgoing in pending:
            outgoing.done()
        if self._ka_timer is not None:
            self._ka_timer.cancel()
        if self._rlink is not None:
            self._rlink.close()
        tcpros.quiet_close(self.sock)


class _ShmOutboundLink:
    """Publisher-side SHMROS connection to one subscriber.

    The socket that carried the handshake becomes the *doorbell*: the
    send loop writes tiny control frames (slot notifications, ring
    reseg notices, or inline payloads when shared memory cannot serve),
    and the ack loop reads slot acknowledgements so ring slots can be
    reused.  Queue overflow drops the oldest droppable entry and releases
    its slot -- the same slow-subscriber policy as ``_OutboundLink``.
    """

    is_shm = True

    def __init__(
        self, publisher: "Publisher", sock, subscriber_id: str, ring=None
    ) -> None:
        self.publisher = publisher
        self.sock = sock
        self.subscriber_id = subscriber_id
        #: The ring this link's subscriber is currently attached to; when
        #: the publisher grows the ring, a reseg notice is queued before
        #: the first slot frame of the new ring (per-link frame order).
        self.ring = ring if ring is not None else publisher._shm_ring
        self._queue: deque[tuple] = deque()
        #: Non-reseg entries in ``_queue``, maintained incrementally so
        #: the bound check in ``_enqueue`` is O(1) per publish instead of
        #: a scan of the (possibly deep) backlog.
        self._droppable = 0
        self._condition = threading.Condition()
        self._closed = False
        self.dropped = 0
        self.sent_count = 0
        self.sent_bytes = 0
        self._send_thread = None
        self._ack_thread = None
        self._rlink = None
        self._ka_timer = None
        self._pump_scheduled = False
        self._reactor = reactor_mod.reactor_enabled()
        if self._reactor:
            # Reactor mode: the doorbell socket's acks are decoded on the
            # loop; sends and keepalives ride its write buffer.
            loop = reactor_mod.global_reactor()
            self._loop = loop
            self._last_activity = time.monotonic()
            self._rlink = reactor_mod.StreamLink(
                sock,
                shm.DoorbellDecoder(),
                on_events=self._on_ack_events,
                on_error=lambda exc: self._shutdown_from_error(),
                reactor=loop,
                label=f"shmpub:{publisher.topic}->{subscriber_id}",
            )
            self._rlink.start()
            keepalive = getattr(publisher.node, "link_keepalive", 2.0)
            if keepalive:
                self._ka_timer = loop.call_later(
                    keepalive, self._keepalive_tick
                )
        else:
            self._send_thread = threading.Thread(
                target=self._send_loop,
                daemon=True,
                name=f"shmpub:{publisher.topic}->{subscriber_id}",
            )
            self._ack_thread = threading.Thread(
                target=self._ack_loop,
                daemon=True,
                name=f"shmack:{publisher.topic}->{subscriber_id}",
            )
            self._send_thread.start()
            self._ack_thread.start()

    def _on_ack_events(self, events: list) -> None:
        for frame in events:
            if frame[0] == "ack":
                _kind, slot, seq = frame
                self.publisher._shm_ack(slot, seq, self)

    # ------------------------------------------------------------------
    # Enqueueing (publisher thread)
    # ------------------------------------------------------------------
    def enqueue(self, outgoing: _Outgoing) -> None:
        """Inline fallback (and latched replay): the payload itself rides
        the doorbell socket, TCPROS-framed inside a control frame."""
        self._enqueue(("inline", outgoing))

    def enqueue_slot(
        self, ring, slot: int, seq: int, size: int,
        trace_id: int = 0, pub_ns: int = 0,
    ) -> None:
        self._enqueue(("slot", ring, slot, seq, size, trace_id, pub_ns))

    def enqueue_reseg(self, ring) -> None:
        self._enqueue(("reseg", ring))

    def _enqueue(self, item: tuple) -> None:
        with self._condition:
            if self._closed:
                self._discard(item)
                return
            queue_size = self.publisher.queue_size
            if (
                queue_size
                and item[0] != "reseg"
                and self._droppable >= queue_size
            ):
                # Drop the oldest droppable entry; reseg notices are
                # control-plane and must never be dropped.
                for index, candidate in enumerate(self._queue):
                    if candidate[0] != "reseg":
                        del self._queue[index]
                        self._droppable -= 1
                        self._discard(candidate)
                        self.dropped += 1
                        self.publisher.dropped_count += 1
                        break
            self._queue.append(item)
            if item[0] != "reseg":
                self._droppable += 1
            schedule = self._reactor and not self._pump_scheduled
            if schedule:
                self._pump_scheduled = True
            self._condition.notify()
        if schedule:
            self._loop.call_soon(self._pump)

    def queue_depth(self) -> int:
        _deprecated("link.queue_depth()", 'link.stats()["queue_depth"]')
        return self._depth()

    def _depth(self) -> int:
        with self._condition:
            return len(self._queue)

    # -- unified Link protocol -----------------------------------------
    @property
    def link_state(self) -> str:
        return "dead" if self._closed else "healthy"

    def fileno(self) -> int:
        try:
            return self.sock.fileno()
        except (OSError, ValueError, AttributeError):
            return -1

    def on_readable(self) -> None:
        if self._rlink is not None:
            self._rlink.on_readable()

    def on_writable(self) -> None:
        if self._rlink is not None:
            self._rlink.on_writable()

    def stats(self) -> dict:
        return {
            "transport": "SHMROS",
            "subscriber": self.subscriber_id,
            "sent": self.sent_count,
            "bytes": self.sent_bytes,
            "dropped": self.dropped,
            "queue_depth": self._depth(),
            "link_state": self.link_state,
        }

    # -- reactor send path ---------------------------------------------
    def _pump(self) -> None:
        """Drain the doorbell queue onto the reactor link (loop thread).
        Frame building and the per-frame chaos gate match the threaded
        ``_send_loop``; inline payload release fires from the flush
        callback."""
        with self._condition:
            self._pump_scheduled = False
        max_frames = (
            tcpros.BATCH_MAX_FRAMES if tcpros.batching_enabled() else 1
        )
        while True:
            batch: list[tuple] = []
            with self._condition:
                nbytes = 0
                while (
                    self._queue
                    and len(batch) < max_frames
                    and nbytes <= tcpros.BATCH_MAX_BYTES
                ):
                    item = self._queue.popleft()
                    if item[0] != "reseg":
                        self._droppable -= 1
                    batch.append(item)
                    if item[0] == "inline":
                        nbytes += len(item[1].payload)
            if not batch:
                return
            frames, any_trace = self._batch_frames(batch)
            start_ns = time.monotonic_ns() if any_trace else 0
            parts = shm.frames_to_parts(self.sock, frames)
            self._last_activity = time.monotonic()
            flush = (
                lambda batch=batch, start_ns=start_ns:
                    self._batch_flushed(batch, start_ns)
            )
            if parts:
                self._rlink.write(parts, on_flushed=flush)
            else:
                # The chaos gate swallowed every frame: the payloads are
                # still spent (matching the threaded path's accounting).
                flush()

    def _batch_frames(self, batch: list) -> tuple[list, bool]:
        frames: list[tuple] = []
        any_trace = False
        for item in batch:
            if item[0] == "slot":
                _kind, _ring, slot, seq, size, trace_id, pub_ns = item
                frames.append(("slot", slot, seq, size, trace_id, pub_ns))
                any_trace = any_trace or bool(trace_id)
            elif item[0] == "inline":
                outgoing = item[1]
                frames.append((
                    "inline", outgoing.payload, outgoing.trace_id,
                    outgoing.pub_ns,
                ))
                any_trace = any_trace or bool(outgoing.trace_id)
            else:  # reseg
                ring = item[1]
                frames.append((
                    "reseg", ring.name, ring.slot_count, ring.slot_bytes
                ))
        return frames, any_trace

    def _batch_flushed(self, batch: list, start_ns: int) -> None:
        end_ns = time.monotonic_ns() if start_ns else 0
        closed = self._closed
        for item in batch:
            if item[0] == "slot":
                _kind, _ring, slot, seq, size, trace_id, pub_ns = item
                if closed:
                    continue
                if trace_id:
                    tracer.record(
                        "send", trace_id, start_ns, end_ns,
                        topic=self.publisher.topic, transport="SHMROS",
                        bytes=size,
                    )
                self.sent_count += 1
                self.sent_bytes += size
            elif item[0] == "inline":
                outgoing = item[1]
                size = len(outgoing.payload)
                if not closed:
                    if outgoing.trace_id:
                        tracer.record(
                            "send", outgoing.trace_id, start_ns, end_ns,
                            topic=self.publisher.topic,
                            transport="SHMROS-inline", bytes=size,
                        )
                    self.sent_count += 1
                    self.sent_bytes += size
                outgoing.done()

    def _keepalive_tick(self) -> None:
        if self._closed:
            return
        keepalive = getattr(self.publisher.node, "link_keepalive", 2.0)
        if not keepalive:
            return
        idle_for = time.monotonic() - self._last_activity
        if idle_for >= keepalive and not self._depth() \
                and not self._rlink._pending_write():
            parts = shm.frames_to_parts(self.sock, [("keepalive",)])
            if parts:
                self._rlink.write(parts)
            self._last_activity = time.monotonic()
        self._ka_timer = self._loop.call_later(
            keepalive, self._keepalive_tick
        )

    def _discard(self, item: tuple) -> None:
        """Release whatever the queued entry was holding."""
        if item[0] == "slot":
            ring, slot, seq = item[1], item[2], item[3]
            ring.release(slot, seq, self)
        elif item[0] == "inline":
            item[1].done()

    def _note_reclaimed(self) -> None:
        """The ring forcibly reclaimed a slot this subscriber had not yet
        acknowledged (ring full, subscriber too slow)."""
        self.dropped += 1
        self.publisher.dropped_count += 1

    # ------------------------------------------------------------------
    # Doorbell I/O
    # ------------------------------------------------------------------
    def _send_loop(self) -> None:
        keepalive = getattr(self.publisher.node, "link_keepalive", 2.0) or None
        # Doorbell coalescing: every slot announcement is a 37-byte
        # control frame, so a burst of small publishes is syscall-bound on
        # the doorbell.  Flushing the drained queue as one vectored send
        # packs N announcements per syscall; a lone publish still flushes
        # immediately (zero time watermark).
        max_frames = (
            tcpros.BATCH_MAX_FRAMES if tcpros.batching_enabled() else 1
        )
        while True:
            idle = False
            batch: list[tuple] = []
            with self._condition:
                while not self._queue and not self._closed:
                    if not self._condition.wait(timeout=keepalive):
                        idle = True
                        break
                if self._closed and not self._queue:
                    return
                nbytes = 0
                while (
                    self._queue
                    and len(batch) < max_frames
                    and nbytes <= tcpros.BATCH_MAX_BYTES
                ):
                    item = self._queue.popleft()
                    if item[0] != "reseg":
                        self._droppable -= 1
                    batch.append(item)
                    if item[0] == "inline":
                        nbytes += len(item[1].payload)
            if not batch:
                if idle:
                    # ``Exception``: teardown must be exception-free even
                    # against interpreter-shutdown races (satellite of
                    # the reactor PR; previously only OSError was caught
                    # and late shutdowns spewed stack traces).
                    try:
                        shm.send_keepalive(self.sock)
                    except Exception:
                        self._shutdown_from_error()
                        return
                continue
            frames: list[tuple] = []
            any_trace = False
            for item in batch:
                if item[0] == "slot":
                    _kind, _ring, slot, seq, size, trace_id, pub_ns = item
                    frames.append(("slot", slot, seq, size, trace_id, pub_ns))
                    any_trace = any_trace or bool(trace_id)
                elif item[0] == "inline":
                    outgoing = item[1]
                    frames.append((
                        "inline", outgoing.payload, outgoing.trace_id,
                        outgoing.pub_ns,
                    ))
                    any_trace = any_trace or bool(outgoing.trace_id)
                else:  # reseg
                    ring = item[1]
                    frames.append((
                        "reseg", ring.name, ring.slot_count, ring.slot_bytes
                    ))
            start_ns = time.monotonic_ns() if any_trace else 0
            try:
                shm.send_frames(self.sock, frames)
            except Exception:
                for item in batch:
                    self._discard(item)
                self._shutdown_from_error()
                return
            end_ns = time.monotonic_ns() if any_trace else 0
            for item in batch:
                if item[0] == "slot":
                    _kind, _ring, slot, seq, size, trace_id, pub_ns = item
                    if trace_id:
                        tracer.record(
                            "send", trace_id, start_ns, end_ns,
                            topic=self.publisher.topic, transport="SHMROS",
                            bytes=size,
                        )
                    self.sent_count += 1
                    self.sent_bytes += size
                elif item[0] == "inline":
                    outgoing = item[1]
                    size = len(outgoing.payload)
                    if outgoing.trace_id:
                        tracer.record(
                            "send", outgoing.trace_id, start_ns, end_ns,
                            topic=self.publisher.topic,
                            transport="SHMROS-inline", bytes=size,
                        )
                    outgoing.done()
                    self.sent_count += 1
                    self.sent_bytes += size

    def _ack_loop(self) -> None:
        try:
            while not self._closed:
                frame = shm.read_control_frame(self.sock)
                if frame[0] == "ack":
                    _kind, slot, seq = frame
                    self.publisher._shm_ack(slot, seq, self)
        except Exception:
            self._shutdown_from_error()

    def _shutdown_from_error(self) -> None:
        self.close()
        self.publisher._remove_link(self)

    def close(self) -> None:
        with self._condition:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._droppable = 0
            self._condition.notify_all()
        for item in pending:
            self._discard(item)
        self.publisher._shm_drop_reader(self)
        if self._ka_timer is not None:
            self._ka_timer.cancel()
        if self._rlink is not None:
            self._rlink.close()
        tcpros.quiet_close(self.sock)


class Publisher:
    """A handle for publishing messages on one topic."""

    def __init__(
        self,
        node,
        topic: str,
        msg_class: type,
        queue_size: int = 100,
        intraprocess: bool = False,
        latch: bool = False,
        shm_slots: Optional[int] = None,
        shm_slot_bytes: Optional[int] = None,
    ) -> None:
        self.node = node
        self.topic = topic
        self.msg_class = msg_class
        self.queue_size = queue_size
        self.intraprocess = intraprocess
        self.latch = latch
        self.codec = codec_for_class(msg_class)
        self.type_name, self.md5sum = type_info_for_class(msg_class)
        self._links: list[_OutboundLink] = []
        self._links_lock = threading.Lock()
        self._link_event = threading.Event()
        #: Last published payload, kept when latching so late subscribers
        #: receive it on connect (map_server-style semantics).
        self._latched_payload: bytes | None = None
        self.published_count = 0
        self.bytes_published = 0
        #: Lifetime deliveries dropped on this topic (queue overflow and
        #: forced slot reclaims), kept here so the total survives link
        #: disconnects.
        self.dropped_count = 0
        # --- SHMROS state -------------------------------------------------
        self._shm_enabled = (
            getattr(node, "shmros", True)
            and shm.shm_available()
            and not shm.env_disabled()
        )
        self._shm_slots = shm_slots or shm.DEFAULT_SLOT_COUNT
        self._shm_slot_bytes = shm_slot_bytes or shm.DEFAULT_SLOT_BYTES
        self._shm_lock = threading.Lock()
        self._shm_ring: Optional[shm.ShmRingWriter] = None
        #: Rings superseded by a reseg, kept mapped until their in-flight
        #: slots are acknowledged.
        self._shm_retired: list[shm.ShmRingWriter] = []
        self._shm_seq = itertools.count(1).__next__
        if intraprocess:
            local_bus.register_publisher(self)
        obs_instrument.track_publisher(self)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, msg) -> None:
        """Publish ``msg`` to every connected subscriber.

        For plain classes this runs the generated serializer; for SFM
        classes it takes a buffer pointer (no serialization) -- the same
        call site either way, which is the transparency the paper claims.
        """
        self.published_count += 1
        if self.intraprocess:
            local_bus.deliver(self, msg)
        with self._links_lock:
            links = list(self._links)
        if not links and not self.latch:
            return
        # Observability identity: a trace id when a trace window is open
        # (one attribute check otherwise) and the publish instant, read
        # only when someone will consume it -- traced links forward it
        # for the publish-to-callback latency histogram.
        trace_id = tracer.new_trace_id()
        pub_ns = (
            time.monotonic_ns() if (trace_id or obs_registry.enabled) else 0
        )
        payload, release = self.codec.encode(msg)
        self.bytes_published += len(payload)
        if self.latch:
            # Keep a private copy: the original payload (e.g. an SFM
            # buffer) is released once every link has sent it.  Already-
            # immutable bytes need no defensive copy.
            self._latched_payload = (
                payload if isinstance(payload, bytes) else bytes(payload)
            )
        if not links:
            if release is not None:
                release()
            return
        shm_links = [link for link in links if link.is_shm]
        tcp_links = [link for link in links if not link.is_shm]
        # Slab-backed SFM records carry delta bookkeeping (dirty floor /
        # clean owner): the ring write can then skip re-copying the
        # byte-stable prefix of a republished grown message.
        record = (
            getattr(msg, "_record", None)
            if self.codec.format_name == "sfm"
            else None
        )
        ticket = (
            self._shm_write(payload, shm_links, record)
            if shm_links else None
        )
        # The payload is referenced once per TCP link plus once for the
        # whole shared-memory fan-out: the ring write above already copied
        # the bytes into the slot shared by every SHM subscriber.
        fanout = len(tcp_links) + (
            1 if ticket is not None else len(shm_links)
        )
        outgoing = _Outgoing(payload, fanout, release, trace_id, pub_ns)
        if any(getattr(link, "tzc", False) for link in tcp_links):
            # Split once here (like the encode) so every TZC link in the
            # fan-out shares the same control segment and bulk iovecs.
            outgoing.tzc_parts = self._tzc_split(payload)
        if shm_links:
            if ticket is not None:
                ring, slot, seq, size = ticket
                for link in shm_links:
                    if link.ring is not ring:
                        link.enqueue_reseg(ring)
                        link.ring = ring
                    link.enqueue_slot(ring, slot, seq, size, trace_id, pub_ns)
                outgoing.done()  # the SHM fan-out's shared reference
            else:
                # Shared memory unavailable (or the write failed): the
                # payload travels inline over each doorbell socket.
                for link in shm_links:
                    link.enqueue(outgoing)
        for link in tcp_links:
            link.enqueue(outgoing)
        if trace_id:
            tracer.record(
                "publish", trace_id, pub_ns, time.monotonic_ns(),
                topic=self.topic, bytes=len(payload), fanout=len(links),
            )

    # ------------------------------------------------------------------
    # Connection management (called by the node's data server)
    # ------------------------------------------------------------------
    def _accept(self, sock, header: dict[str, str]) -> None:
        error = self._validate_header(header)
        if error:
            tcpros.reject_connection(sock, error)
            return
        reply = {
            "callerid": self.node.name,
            "topic": self.topic,
            "type": self.type_name,
            "md5sum": self.md5sum,
            "format": self.codec.format_name,
            "latching": "1" if self.latch else "0",
        }
        # The subscriber *requests* shared memory with ``shmros=1``; the
        # reply grants it by naming the segment.  If the ring cannot be
        # served the reply omits the fields and the connection degrades to
        # plain TCPROS on the same socket -- fallback without a round trip.
        ring = self._ensure_shm_ring() if header.get("shmros") == "1" else None
        if ring is not None:
            reply["shm_segment"] = ring.name
            reply["shm_slots"] = str(ring.slot_count)
            reply["shm_slot_bytes"] = str(ring.slot_bytes)
        # Trace negotiation: the subscriber asks with ``trace=1``; the
        # confirmation commits this connection to the 16-byte framed
        # prefix.  SHMROS doorbell frames carry the fields natively, so
        # only the plain-TCPROS link changes its framing.
        traced = header.get("trace") == "1" and obs_trace.wire_enabled()
        if traced:
            reply["trace"] = "1"
        # TZC negotiation: only meaningful for remote (non-SHM) SFM links
        # -- a subscriber that got a ring never sees payload frames, and a
        # non-SFM codec has no skeleton to split on.  The ``format``
        # header field is untouched, so either side lacking the code
        # falls back to classic framing automatically.
        grant_tzc = (
            ring is None
            and header.get("tzc") == "1"
            and self.codec.format_name == "sfm"
            and tzc.tzc_enabled()
        )
        if grant_tzc:
            reply["tzc"] = "1"
        try:
            tcpros.write_frame(sock, tcpros.encode_header(reply))
        except OSError:
            sock.close()
            return
        if ring is not None:
            link = _ShmOutboundLink(
                self, sock, header.get("callerid", "?"), ring=ring
            )
        else:
            link = _OutboundLink(
                self, sock, header.get("callerid", "?"), traced=traced,
                tzc_mode=grant_tzc,
            )
        # Reconnect dedupe: a handshake carrying the same (callerid,
        # link_instance) as a live link is the *same subscription*
        # re-dialing -- typically a watchdog replay against a master that
        # never lost this registration.  The fresh socket replaces the
        # old one instead of double-streaming every message.  Clients
        # that omit ``link_instance`` (bridges, old peers) keep the old
        # accept-everything behaviour.
        instance = header.get("link_instance", "")
        link.link_key = (
            (header.get("callerid", "?"), instance) if instance else None
        )
        stale: list = []
        with self._links_lock:
            if link.link_key is not None:
                stale = [
                    existing for existing in self._links
                    if getattr(existing, "link_key", None) == link.link_key
                ]
                for existing in stale:
                    self._links.remove(existing)
            self._links.append(link)
            latched = self._latched_payload
        for existing in stale:
            existing.close()
        if latched is not None:
            link.enqueue(_Outgoing(latched, 1, None))
        self._link_event.set()

    def _validate_header(self, header: dict[str, str]) -> Optional[str]:
        if header.get("topic") != self.topic:
            return f"topic mismatch: {header.get('topic')} != {self.topic}"
        their_type = header.get("type")
        if their_type not in ("*", self.type_name):
            return f"type mismatch: {their_type} != {self.type_name}"
        their_md5 = header.get("md5sum")
        if their_md5 not in ("*", self.md5sum):
            return f"md5sum mismatch for {self.type_name}"
        their_format = header.get("format", "ros")
        if their_format != self.codec.format_name:
            return (
                f"wire format mismatch: subscriber expects {their_format}, "
                f"publisher sends {self.codec.format_name}"
            )
        return None

    def _remove_link(self, link) -> None:
        with self._links_lock:
            if link in self._links:
                self._links.remove(link)

    # ------------------------------------------------------------------
    # SHMROS ring management
    # ------------------------------------------------------------------
    def _offer_shm(self, peer_machine: str) -> Optional[shm.ShmRingWriter]:
        """Transport negotiation: a ring to advertise in ``requestTopic``,
        or None when SHMROS cannot serve this subscriber (different
        machine, disabled, or segment creation failure)."""
        if not self._shm_enabled or peer_machine != shm.machine_id():
            return None
        return self._ensure_shm_ring()

    def _ensure_shm_ring(self) -> Optional[shm.ShmRingWriter]:
        if not self._shm_enabled:
            return None
        with self._shm_lock:
            if self._shm_ring is None:
                try:
                    self._shm_ring = shm.ShmRingWriter(
                        slot_count=self._shm_slots,
                        slot_bytes=self._shm_slot_bytes,
                        seq_source=self._shm_seq,
                        on_reclaim=lambda link: link._note_reclaimed(),
                    )
                except (OSError, shm.ShmTransportError):
                    # No shared memory on this host: disable for good so
                    # every future subscriber negotiates plain TCPROS.
                    self._shm_enabled = False
                    return None
            return self._shm_ring

    def _tzc_split(self, payload) -> "tzc.TzcParts":
        """Split an encoded SFM payload into control + bulk iovecs."""
        return tzc.split_message(
            self.codec.msg_class._layout, payload, len(payload)
        )

    def _shm_write(self, payload, readers, record=None) -> Optional[tuple]:
        """Copy ``payload`` once into a ring slot shared by all SHM
        subscribers; returns ``(ring, slot, seq, size)`` or None when the
        payload must travel inline instead.

        ``record`` (a slab-backed SFM record, when the publisher knows
        it) unlocks the sticky-slot delta path: a republish of the same
        record reuses its previous slot and copies only the skeleton plus
        the bytes written since the last publish.  The delta is sound
        because the record's size is monotonic under growth, in-class
        slab growth never moves bytes, and a promotion copies the prefix
        byte-identically -- so ``[skeleton_size, dirty_floor)`` is
        byte-stable since ``mark_clean`` unless an untracked write
        capability escaped (``record.delta_unsafe``)."""
        with self._shm_lock:
            ring = self._shm_ring
            if ring is None:
                return None
            if len(payload) > ring.slot_bytes:
                try:
                    grown = shm.ShmRingWriter(
                        slot_count=ring.slot_count,
                        slot_bytes=shm.next_slot_bytes(
                            ring.slot_bytes, len(payload)
                        ),
                        seq_source=self._shm_seq,
                        on_reclaim=lambda link: link._note_reclaimed(),
                    )
                except (OSError, shm.ShmTransportError):
                    return None
                self._shm_retired.append(ring)
                self._shm_ring = ring = grown
            try:
                if record is not None and record.slab is not None:
                    key = record._extra.get("sticky")
                    if key is None:
                        key = record._extra["sticky"] = object()
                    prefix = record.skeleton_size
                    stable = (
                        prefix
                        if (record.delta_unsafe
                            or record.clean_owner is not self)
                        else record.dirty_floor
                    )
                    written = ring.write_update(
                        payload, readers, key, prefix, stable
                    )
                    if written is not None:
                        record.mark_clean(self)
                else:
                    written = ring.write(payload, readers)
            except shm.ShmTransportError:
                return None
            # A full ring (every slot awaiting acks) degrades to inline
            # delivery: backlog depth stays governed by queue_size and no
            # in-flight slot is yanked from under a reader.
            return None if written is None else (ring,) + written

    def _shm_ack(self, slot: int, seq: int, link) -> None:
        """Route a subscriber acknowledgement to the owning ring (the
        sequence counter is shared across rings, so a (slot, seq) pair is
        unambiguous even across a reseg)."""
        with self._shm_lock:
            rings = (
                [self._shm_ring] if self._shm_ring is not None else []
            ) + self._shm_retired
        for ring in rings:
            if ring.release(slot, seq, link):
                break
        self._gc_retired_rings()

    def _shm_drop_reader(self, link) -> None:
        with self._shm_lock:
            rings = (
                [self._shm_ring] if self._shm_ring is not None else []
            ) + self._shm_retired
        for ring in rings:
            ring.drop_reader(link)
        self._gc_retired_rings()

    def _gc_retired_rings(self) -> None:
        """Unmap superseded rings once their last slot is acknowledged."""
        with self._shm_lock:
            drained = [ring for ring in self._shm_retired if ring.idle()]
            self._shm_retired = [
                ring for ring in self._shm_retired if not ring.idle()
            ]
        for ring in drained:
            ring.close()

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    def get_num_connections(self) -> int:
        """Number of connected subscriber links."""
        with self._links_lock:
            return len(self._links)

    def links(self) -> list:
        """Live outbound links, each speaking the unified Link protocol
        (``fileno``/``stats``/``link_state``/``close``) regardless of
        transport -- the supported replacement for poking per-transport
        attributes."""
        with self._links_lock:
            return list(self._links)

    def stats(self) -> dict:
        """A point-in-time counter snapshot (the observability layer's
        public window onto this publisher)."""
        with self._links_lock:
            links = list(self._links)
        return {
            "topic": self.topic,
            "type": self.type_name,
            "format": self.codec.format_name,
            "messages": self.published_count,
            "bytes": self.bytes_published,
            "drops": self.dropped_count,
            "connections": len(links),
            "queue_depth": sum(link._depth() for link in links),
            "latched": self.latch,
            # A publisher heals passively (subscribers redial it); its
            # link health therefore mirrors the node's master link.
            "link_state": getattr(self.node, "master_state", "healthy"),
        }

    def wait_for_subscribers(self, count: int = 1, timeout: float = 10.0) -> bool:
        """Block until at least ``count`` subscribers are connected."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.get_num_connections() >= count:
                return True
            self._link_event.clear()
            self._link_event.wait(timeout=0.05)
        return self.get_num_connections() >= count

    def unadvertise(self) -> None:
        """Close every link and unregister from the master."""
        if self.intraprocess:
            local_bus.unregister_publisher(self)
        with self._links_lock:
            links = list(self._links)
            self._links.clear()
        for link in links:
            link.close()
        with self._shm_lock:
            rings = (
                [self._shm_ring] if self._shm_ring is not None else []
            ) + self._shm_retired
            self._shm_ring = None
            self._shm_retired = []
        for ring in rings:
            ring.close()
        self.node._unadvertise(self)

    def __enter__(self) -> "Publisher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unadvertise()


class _InboundLink:
    """Subscriber-side connection to one publisher.

    Transport preference: SHMROS when both ends share a machine and allow
    it, TCPROS otherwise.  Fallback is transparent at two levels -- the
    publisher can decline shared memory in the handshake reply (the same
    socket then carries plain TCPROS frames), and a subscriber-side
    attach failure reconnects with SHMROS off.
    """

    def __init__(
        self,
        subscriber: "Subscriber",
        publisher_uri: str,
        allow_shm: Optional[bool] = None,
        downgraded: bool = False,
        planned_reason: str = "",
    ) -> None:
        self.subscriber = subscriber
        self.publisher_uri = publisher_uri
        self.sock = None
        self.error: Optional[Exception] = None
        #: "SHMROS" or "TCPROS" once connected (None before/after).
        self.transport: Optional[str] = None
        #: The retry scheduler forced this link off shared memory
        #: (SHM -> TCPROS downgrade); surfaces as ``link_state=degraded``.
        self.downgraded = downgraded
        #: Why the transport planner dialed this link the way it did
        #: ("" for links the planner did not touch).  A planned flip is a
        #: *choice*, not a failure, so it never marks the link degraded.
        self.planned_reason = planned_reason
        #: None: decide from node/env.  False: the reconnect path already
        #: burned its SHM attempts for this publisher.
        self._allow_shm = allow_shm
        #: The publisher confirmed ``trace=1``: frames carry the
        #: observability prefix.
        self.traced = False
        #: The publisher confirmed ``tzc=1``: messages arrive as a
        #: control + bulk frame pair (partial serialization).  Reported
        #: as transport "TCPROS" -- the planner's ladder reasons about
        #: SHMROS vs TCPROS, and TZC is a framing of the latter.
        self.tzc = False
        #: Slot notifications skipped because the publisher had already
        #: reclaimed the slot by the time this subscriber got to it.
        self.stale_drops = 0
        self._closed = False
        self._rlink = None
        self._serial = None
        self._shm_reader = None
        self._finalized = False
        self._finalize_lock = threading.Lock()
        self._thread = None
        if reactor_mod.reactor_enabled():
            # Reactor mode: the (legitimately blocking) dial + handshake
            # rides a transient spawn; once connected the socket joins
            # the shared loop and this link owns zero threads.
            reactor_mod.global_reactor().spawn_blocking(
                self._run_reactor,
                name=f"sub-dial:{subscriber.topic}<-{publisher_uri}",
            )
        else:
            self._thread = threading.Thread(
                target=self._run,
                daemon=True,
                name=f"sub:{subscriber.topic}<-{publisher_uri}",
            )
            self._thread.start()

    def _run(self) -> None:
        subscriber = self.subscriber
        allow_shm = self._allow_shm
        if allow_shm is None:
            allow_shm = (
                getattr(subscriber.node, "shmros", True)
                and shm.shm_available()
                and not shm.env_disabled()
            )
        try:
            try:
                self._connect_and_stream(allow_shm)
            except shm.ShmAttachError:
                # The publisher granted a segment we cannot map (stale
                # name, exhausted /dev/shm, ...): renegotiate pure TCPROS.
                if not self._closed:
                    self._reset_socket()
                    self._connect_and_stream(False)
        except (ConnectionError, OSError) as exc:
            # An intentional close() tears the socket down under the
            # reader; only an unexpected failure is worth recording.
            if not self._closed:
                self.error = exc
        except (tcpros.ConnectionHandshakeError, TopicTypeMismatch) as exc:
            # The publisher refused us (type/md5/format mismatch); record
            # why so wait_for_publishers debugging can surface it.
            self.error = exc
        except shm.ShmTransportError as exc:
            self.error = exc
        finally:
            self.close()
            subscriber._link_closed(self)

    def _run_reactor(self) -> None:
        """The connect phase on a transient spawn: negotiate, register
        the socket with the reactor, exit.  Streaming errors arrive later
        through :meth:`_stream_error`; this method only owns the dial."""
        subscriber = self.subscriber
        allow_shm = self._allow_shm
        if allow_shm is None:
            allow_shm = (
                getattr(subscriber.node, "shmros", True)
                and shm.shm_available()
                and not shm.env_disabled()
            )
        try:
            try:
                connected = self._connect_reactor(allow_shm)
            except shm.ShmAttachError:
                # Same renegotiate as the threaded path: the grant was
                # unmappable, redial pure TCPROS while still on the
                # blocking spawn.
                connected = False
                if not self._closed:
                    self._reset_socket()
                    connected = self._connect_reactor(False)
        except (ConnectionError, OSError) as exc:
            if not self._closed:
                self.error = exc
            self._finalize()
        except (tcpros.ConnectionHandshakeError, TopicTypeMismatch) as exc:
            self.error = exc
            self._finalize()
        except shm.ShmTransportError as exc:
            self.error = exc
            self._finalize()
        except Exception as exc:  # defensive: never leak a silent dial
            if not self._closed:
                self.error = exc
            self._finalize()
        else:
            if not connected or self._closed:
                # Publisher declined (requestTopic != 1) or we were
                # closed mid-dial: report the link closed, like the
                # threaded finally-block does.
                self._finalize()

    def _finalize(self) -> None:
        """Exactly-once teardown notification (the reactor-mode stand-in
        for the threaded reader's ``finally`` block)."""
        with self._finalize_lock:
            if self._finalized:
                return
            self._finalized = True
        self.close()
        self.subscriber._link_closed(self)

    def _stream_error(self, exc: Exception) -> None:
        """Streaming failed after registration (socket error, idle
        timeout, decode error, callback exception).  Classification
        mirrors the threaded ``_run`` except-ladder."""
        if isinstance(
            exc,
            (tcpros.ConnectionHandshakeError, TopicTypeMismatch,
             shm.ShmTransportError),
        ):
            self.error = exc
        elif not self._closed:
            # An intentional close() tears the socket down under the
            # reactor; only an unexpected failure is worth recording.
            self.error = exc
        self._finalize()

    def _connect_and_stream(self, allow_shm: bool) -> None:
        reply = self._negotiate(allow_shm)
        if reply is None:
            return
        if reply.get("shm_segment"):
            self._stream_shm(reply)
        elif reply.get("tzc") == "1":
            self._stream_tzc()
        else:
            self._stream_tcpros()

    def _negotiate(self, allow_shm: bool) -> Optional[dict]:
        """requestTopic + TCPROS handshake; returns the publisher's reply
        header (None when the publisher declined the topic) with
        ``self.sock``/``self.traced`` set.  Shared by the threaded and
        reactor connect paths."""
        subscriber = self.subscriber
        protocols = (
            [["SHMROS", shm.machine_id()], ["TCPROS"]]
            if allow_shm
            else [["TCPROS"]]
        )
        proxy = xmlrpc.client.ServerProxy(self.publisher_uri, allow_none=True)
        code, _status, protocol = proxy.requestTopic(
            subscriber.node.name, subscriber.topic, protocols
        )
        if code != 1 or not protocol or protocol[0] not in ("TCPROS", "SHMROS"):
            return None
        host, port = protocol[1], protocol[2]
        header = {
            "callerid": subscriber.node.name,
            "topic": subscriber.topic,
            "type": subscriber.type_name,
            "md5sum": subscriber.md5sum,
            "format": subscriber.codec.format_name,
            "tcp_nodelay": "1",
            "link_instance": subscriber.instance_id,
        }
        if protocol[0] == "SHMROS":
            header["shmros"] = "1"
        if obs_trace.wire_enabled():
            header["trace"] = "1"
        if subscriber.codec.format_name == "sfm" and tzc.tzc_enabled():
            # Capability, not a demand: the publisher only grants TZC
            # framing when this link ends up on plain TCP.
            header["tzc"] = "1"
        self.sock, reply = tcpros.connect_subscriber(host, port, header)
        their_format = reply.get("format", "ros")
        if their_format != subscriber.codec.format_name:
            raise TopicTypeMismatch(
                f"publisher sends {their_format}, expected "
                f"{subscriber.codec.format_name}"
            )
        self.traced = reply.get("trace") == "1"
        return reply

    def _connect_reactor(self, allow_shm: bool) -> bool:
        """Negotiate, pick the decoder for the granted transport, and
        register the data socket with the shared loop.  Returns False
        when the publisher declined the topic.  Raises exactly what the
        threaded connect raises (``ShmAttachError`` included -- the
        ring attach happens here, still on the blocking spawn, so the
        caller's renegotiate-without-SHM path works unchanged)."""
        subscriber = self.subscriber
        reply = self._negotiate(allow_shm)
        if reply is None:
            return False
        loop = reactor_mod.global_reactor()
        self._serial = loop.serial_queue(on_error=self._stream_error)
        if reply.get("shm_segment"):
            self._shm_reader = shm.ShmRingReader(
                reply["shm_segment"],
                int(reply["shm_slots"]),
                int(reply["shm_slot_bytes"]),
            )
            self.transport = "SHMROS"
            decoder = shm.DoorbellDecoder()
            handler = self._handle_shm_events
        elif reply.get("tzc") == "1":
            self.transport = "TCPROS"
            self.tzc = True
            decoder = tzc.SplitDecoder(tzc.BulkBudget(), traced=self.traced)
            handler = self._handle_tzc_events
        else:
            self.transport = "TCPROS"
            decoder = reactor_mod.FrameDecoder(traced=self.traced)
            handler = self._handle_tcp_events
        idle = getattr(subscriber.node, "link_idle_timeout", 15.0)
        self._rlink = reactor_mod.StreamLink(
            self.sock,
            decoder,
            on_events=lambda events, _h=handler: self._serial.push(
                lambda: _h(events)
            ),
            on_error=self._stream_error,
            reactor=loop,
            label=f"sub:{subscriber.topic}<-{self.publisher_uri}",
            idle_timeout=idle or 0.0,
        )
        subscriber._link_connected(self)
        self._rlink.start()
        return True

    # -- reactor event handlers (run on the worker pool, serialized) ----
    def _handle_tcp_events(self, events: list) -> None:
        subscriber = self.subscriber
        for _kind, payload, trace_id, pub_ns in events:
            if self._closed:
                return
            if trace_id:
                tracer.record(
                    "recv", trace_id, pub_ns, time.monotonic_ns(),
                    topic=subscriber.topic, transport="TCPROS",
                    bytes=len(payload),
                )
            self._deliver_frame(payload, trace_id, pub_ns)

    def _handle_tzc_events(self, events: list) -> None:
        subscriber = self.subscriber
        for _kind, buffer, order, trace_id, pub_ns in events:
            if self._closed:
                return
            if trace_id:
                tracer.record(
                    "recv", trace_id, pub_ns, time.monotonic_ns(),
                    topic=subscriber.topic, transport="TZC",
                    bytes=len(buffer),
                )
            subscriber.received_bytes += len(buffer)
            if subscriber.raw:
                subscriber._dispatch(bytes(buffer), trace_id, pub_ns)
                continue
            if trace_id:
                start_ns = time.monotonic_ns()
                msg = subscriber.codec.decode_adopted(buffer, order)
                tracer.record(
                    "decode", trace_id, start_ns, time.monotonic_ns(),
                    topic=subscriber.topic,
                )
            else:
                msg = subscriber.codec.decode_adopted(buffer, order)
            subscriber._dispatch(msg, trace_id, pub_ns)

    def _handle_shm_events(self, events: list) -> None:
        subscriber = self.subscriber
        for frame in events:
            if self._closed:
                return
            kind = frame[0]
            if kind == "keepalive":
                continue
            if kind == "slot":
                _kind, slot, seq, size, trace_id, pub_ns = frame
                if trace_id:
                    tracer.record(
                        "recv", trace_id, pub_ns, time.monotonic_ns(),
                        topic=subscriber.topic, transport="SHMROS",
                        bytes=size,
                    )
                reader = self._shm_reader
                if reader is None or reader.slot_seq(slot) != seq:
                    self.stale_drops += 1
                    subscriber.stale_drops += 1
                    continue
                self._dispatch_slot(reader, slot, seq, size,
                                    trace_id, pub_ns)
            elif kind == "inline":
                _kind, payload, trace_id, pub_ns = frame
                if trace_id:
                    tracer.record(
                        "recv", trace_id, pub_ns, time.monotonic_ns(),
                        topic=subscriber.topic,
                        transport="SHMROS-inline", bytes=len(payload),
                    )
                self._deliver_frame(payload, trace_id, pub_ns)
            elif kind == "reseg":
                _kind, name, slot_count, slot_bytes = frame
                old = self._shm_reader
                # Attach the grown ring before dropping the old one; an
                # attach failure routes through the serial queue's
                # on_error like any other stream failure.
                self._shm_reader = shm.ShmRingReader(
                    name, slot_count, slot_bytes
                )
                if old is not None:
                    old.close()

    def _send_ack(self, slot: int, seq: int) -> None:
        """Slot acknowledgement on either path: non-blocking through the
        reactor link, blocking ``send_ack`` on the reader thread."""
        if self._rlink is not None:
            self._rlink.write([shm.ack_bytes(slot, seq)])
        else:
            shm.send_ack(self.sock, slot, seq)

    # -- Link protocol --------------------------------------------------
    @property
    def link_state(self) -> str:
        if self._closed or self.error is not None:
            return "dead"
        if self.transport is None:
            return "reconnecting"
        return "degraded" if self.downgraded else "healthy"

    def fileno(self) -> int:
        return -1 if self._rlink is None else self._rlink.fileno()

    def on_readable(self) -> None:
        if self._rlink is not None:
            self._rlink.on_readable()

    def on_writable(self) -> None:
        if self._rlink is not None:
            self._rlink.on_writable()

    def stats(self) -> dict:
        counters = self._rlink.stats() if self._rlink is not None else {}
        return {
            "transport": "TZC" if self.tzc else (self.transport or "-"),
            "publisher": self.publisher_uri,
            "stale_drops": self.stale_drops,
            "rx_bytes": counters.get("rx_bytes", 0),
            "traced": self.traced,
            "link_state": self.link_state,
        }

    def _reset_socket(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def _arm_idle_timeout(self) -> None:
        """Half-open detection: publishers keepalive idle links, so total
        silence past ``link_idle_timeout`` means the link is dead even
        though the socket never errored.  The resulting ``timeout``
        surfaces through the normal error path and triggers a retry."""
        idle = getattr(self.subscriber.node, "link_idle_timeout", 15.0)
        if idle:
            try:
                self.sock.settimeout(idle)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # TCPROS streaming (length-framed messages on the data socket)
    # ------------------------------------------------------------------
    def _stream_tcpros(self) -> None:
        subscriber = self.subscriber
        self.transport = "TCPROS"
        self._arm_idle_timeout()
        subscriber._link_connected(self)
        if self.traced:
            while not self._closed:
                frame, trace_id, pub_ns = tcpros.read_traced_frame(self.sock)
                if trace_id:
                    tracer.record(
                        "recv", trace_id, pub_ns, time.monotonic_ns(),
                        topic=subscriber.topic, transport="TCPROS",
                        bytes=len(frame),
                    )
                self._deliver_frame(frame, trace_id, pub_ns)
        else:
            while not self._closed:
                self._deliver_frame(tcpros.read_frame(self.sock), 0, 0)

    def _deliver_frame(self, frame, trace_id: int, pub_ns: int) -> None:
        """Decode (span-wrapped when traced) and dispatch one frame."""
        subscriber = self.subscriber
        subscriber.received_bytes += len(frame)
        if subscriber.raw:
            subscriber._dispatch(bytes(frame), trace_id, pub_ns)
            return
        if trace_id:
            start_ns = time.monotonic_ns()
            msg = subscriber.codec.decode(frame)
            tracer.record(
                "decode", trace_id, start_ns, time.monotonic_ns(),
                topic=subscriber.topic,
            )
        else:
            msg = subscriber.codec.decode(frame)
        subscriber._dispatch(msg, trace_id, pub_ns)

    # ------------------------------------------------------------------
    # TZC streaming (control + bulk frame pairs, reassembled in place)
    # ------------------------------------------------------------------
    def _stream_tzc(self) -> None:
        subscriber = self.subscriber
        self.transport = "TCPROS"
        self.tzc = True
        self._arm_idle_timeout()
        subscriber._link_connected(self)
        budget = tzc.BulkBudget()
        while not self._closed:
            buffer, order, trace_id, pub_ns = tzc.read_split(
                self.sock, budget, traced=self.traced
            )
            if trace_id:
                tracer.record(
                    "recv", trace_id, pub_ns, time.monotonic_ns(),
                    topic=subscriber.topic, transport="TZC",
                    bytes=len(buffer),
                )
            subscriber.received_bytes += len(buffer)
            if subscriber.raw:
                subscriber._dispatch(bytes(buffer), trace_id, pub_ns)
                continue
            if trace_id:
                start_ns = time.monotonic_ns()
                msg = subscriber.codec.decode_adopted(buffer, order)
                tracer.record(
                    "decode", trace_id, start_ns, time.monotonic_ns(),
                    topic=subscriber.topic,
                )
            else:
                msg = subscriber.codec.decode_adopted(buffer, order)
            subscriber._dispatch(msg, trace_id, pub_ns)

    # ------------------------------------------------------------------
    # SHMROS streaming (doorbell frames + shared-memory slots)
    # ------------------------------------------------------------------
    def _stream_shm(self, reply: dict[str, str]) -> None:
        subscriber = self.subscriber
        reader = shm.ShmRingReader(
            reply["shm_segment"],
            int(reply["shm_slots"]),
            int(reply["shm_slot_bytes"]),
        )
        self.transport = "SHMROS"
        self._arm_idle_timeout()
        subscriber._link_connected(self)
        # Buffered reader: one recv pulls a publisher's whole coalesced
        # doorbell flush; later frames parse without a syscall.
        doorbell = shm.DoorbellReader(self.sock)
        try:
            while not self._closed:
                frame = doorbell.read_frame()
                kind = frame[0]
                if kind == "keepalive":
                    continue
                if kind == "slot":
                    _kind, slot, seq, size, trace_id, pub_ns = frame
                    if trace_id:
                        tracer.record(
                            "recv", trace_id, pub_ns, time.monotonic_ns(),
                            topic=subscriber.topic, transport="SHMROS",
                            bytes=size,
                        )
                    if reader.slot_seq(slot) != seq:
                        # The publisher reclaimed the slot before we got
                        # here (we were too slow); it already counted the
                        # drop on its side.
                        self.stale_drops += 1
                        subscriber.stale_drops += 1
                        continue
                    self._dispatch_slot(reader, slot, seq, size,
                                        trace_id, pub_ns)
                elif kind == "inline":
                    _kind, payload, trace_id, pub_ns = frame
                    if trace_id:
                        tracer.record(
                            "recv", trace_id, pub_ns, time.monotonic_ns(),
                            topic=subscriber.topic,
                            transport="SHMROS-inline", bytes=len(payload),
                        )
                    self._deliver_frame(payload, trace_id, pub_ns)
                elif kind == "reseg":
                    _kind, name, slot_count, slot_bytes = frame
                    reader.close()
                    reader = shm.ShmRingReader(name, slot_count, slot_bytes)
        finally:
            reader.close()

    def _dispatch_slot(
        self, reader, slot: int, seq: int, size: int,
        trace_id: int = 0, pub_ns: int = 0,
    ) -> None:
        """One zero-copy delivery: adopt the slot in place, run the
        callback, detach if the user kept the message, acknowledge."""
        subscriber = self.subscriber
        subscriber.received_bytes += size
        view = reader.payload_view(slot, size)
        if subscriber.raw:
            # Raw delivery must copy out of the slot: the bytes object is
            # the callback's to keep, the slot goes back to the publisher.
            try:
                subscriber._dispatch(bytes(view), trace_id, pub_ns)
            finally:
                del view
                self._send_ack(slot, seq)
            return
        if trace_id:
            start_ns = time.monotonic_ns()
            msg = subscriber.codec.decode_external(view)
            tracer.record(
                "decode", trace_id, start_ns, time.monotonic_ns(),
                topic=subscriber.topic,
            )
        else:
            msg = subscriber.codec.decode_external(view)
        # SFM messages borrow the slot memory itself; remember the record
        # so we can copy it out *after* the callback if it is still alive.
        record = getattr(msg, "_record", None)
        try:
            subscriber._dispatch(msg, trace_id, pub_ns)
        finally:
            del msg, view
            if (
                record is not None
                and record.external
                and record.state is not MessageState.DESTRUCTED
            ):
                # The callback kept a reference: detach it from the slot
                # so the publisher can reclaim the memory.
                record.materialize()
            self._send_ack(slot, seq)

    def close(self) -> None:
        self._closed = True
        rlink = self._rlink
        if rlink is not None:
            rlink.close()
        reader = self._shm_reader
        if reader is not None:
            self._shm_reader = None
            try:
                reader.close()
            except Exception:
                pass
        if self.sock is not None:
            tcpros.quiet_close(self.sock)
        if rlink is not None and not self._finalized:
            # Reactor links have no reader thread whose finally-block
            # reports the closure; schedule the notification off-thread
            # (callers may hold the subscriber lock).
            reactor_mod.global_reactor().submit(self._finalize)


class Subscriber:
    """A subscription delivering messages to a callback."""

    def __init__(
        self,
        node,
        topic: str,
        msg_class: type,
        callback: Callable,
        intraprocess: bool = False,
        raw: bool = False,
    ) -> None:
        self.node = node
        self.topic = topic
        self.msg_class = msg_class
        self.callback = callback
        self.intraprocess = intraprocess
        #: Raw subscriptions hand the callback the undecoded payload bytes
        #: of every message (the exact frame that travelled the wire or
        #: shared-memory slot).  The handshake still negotiates type,
        #: md5sum and wire format from ``msg_class``, so a raw subscriber
        #: is type-checked without paying for decoding -- the gateway's
        #: forward-without-deserializing path.
        self.raw = raw
        self.codec = codec_for_class(msg_class)
        self.type_name, self.md5sum = type_info_for_class(msg_class)
        #: Unique identity of this Subscriber object, sent in the
        #: connection header as ``link_instance``.  The publisher uses
        #: (callerid, link_instance) to recognise a *reconnect of the
        #: same subscription* -- a watchdog replay against a master that
        #: never lost state re-dials existing links, and without this
        #: the publisher would stream every message twice.  Two distinct
        #: Subscriber objects on one topic in one node get different
        #: instances, so legitimate duplicates still work.
        self.instance_id = uuid.uuid4().hex[:16]
        self._links: dict[str, _InboundLink] = {}
        self._connected: set[_InboundLink] = set()
        #: Last connection failure per publisher URI (type/md5/format
        #: mismatches land here), for wait_for_publishers debugging.
        self.link_errors: dict[str, Exception] = {}
        self._lock = threading.Lock()
        self._connect_event = threading.Event()
        self.received_count = 0
        #: Payload bytes received over socket transports (SHM slots and
        #: TCPROS/inline frames).  Intra-process deliveries hand over the
        #: object itself, so they contribute no bytes here.  The transport
        #: planner divides this by ``received_count`` for the observed
        #: message size.
        self.received_bytes = 0
        #: Messages announced by a SHMROS doorbell whose slot had already
        #: been reclaimed by the time we looked (we were too slow).
        self.stale_drops = 0
        # --- self-healing state -------------------------------------------
        #: Publisher URIs the master currently lists for this topic.
        self._wanted: set[str] = set()
        #: Connected links the master stopped listing: a freshly
        #: restarted (amnesiac) master forgets live publishers, so a
        #: working data link is never closed on the master's say-so alone
        #: -- it is merely *suspect* until the socket itself dies.
        self._suspect: set[str] = set()
        self._retry: dict[str, RetryState] = {}
        self._timers: dict[str, CancellableTimer] = {}
        self._retry_policy = getattr(node, "link_retry", DEFAULT_LINK_RETRY)
        #: Lifetime reconnect attempts (the obs counter behind
        #: ``miniros_link_retries_total``).
        self.retries = 0
        #: Exhausted every transport for an in-process publisher and fell
        #: back to direct local-bus delivery (the ladder's last rung).
        self._intraprocess_fallback = False
        self._state = "healthy"
        self._state_history: deque[str] = deque(["healthy"], maxlen=64)
        self._latency = obs_instrument.latency_child(topic)
        self._shutdown = False
        if intraprocess:
            local_bus.register_subscriber(self)
        obs_instrument.track_subscriber(self)

    # ------------------------------------------------------------------
    # Publisher discovery
    # ------------------------------------------------------------------
    def update_publishers(self, publisher_uris: list[str]) -> None:
        """React to the master's current publisher list for the topic.

        A URI that disappears from the list is closed only if its link is
        not (yet) connected; a *connected* link is kept and marked
        suspect instead, because a master that just restarted with an
        empty registry reports publishers it merely forgot.  Truly dead
        links are reaped by socket errors and the idle timeout.
        """
        local_uris = (
            local_bus.local_publisher_uris(self.node.master_uri, self.topic)
            if self.intraprocess
            else set()
        )
        with self._lock:
            if self._shutdown:
                return
            known = set(self._links)
            wanted = {
                uri for uri in publisher_uris
                if uri != "" and uri not in local_uris
            }
            self._wanted = wanted
            self._suspect -= wanted
            for uri in wanted - known:
                self._retry.pop(uri, None)
                self._cancel_timer(uri)
                self._links[uri] = _InboundLink(self, uri)
            for uri in known - wanted:
                link = self._links[uri]
                if link in self._connected:
                    self._suspect.add(uri)
                    continue
                del self._links[uri]
                link.close()
            for uri in list(self._retry):
                if uri not in wanted:
                    self._retry.pop(uri)
                    self._cancel_timer(uri)
            self._refresh_state()

    def _link_connected(self, link: _InboundLink) -> None:
        with self._lock:
            self._connected.add(link)
            self._retry.pop(link.publisher_uri, None)
            self._refresh_state()
        self._connect_event.set()

    def _link_closed(self, link: _InboundLink) -> None:
        uri = link.publisher_uri
        with self._lock:
            self._connected.discard(link)
            was_current = self._links.get(uri) is link
            if was_current:
                del self._links[uri]
            self._suspect.discard(uri)
            if link.error is not None:
                self.link_errors[uri] = link.error
            if (
                not self._shutdown
                and was_current
                and uri in self._wanted
                and uri not in self._timers
            ):
                self._schedule_retry(uri, link)
            self._refresh_state()

    # ------------------------------------------------------------------
    # Per-link retry (self-healing)
    # ------------------------------------------------------------------
    def _schedule_retry(self, uri: str, link: _InboundLink) -> None:
        """Called under ``self._lock`` when a wanted link died."""
        state = self._retry.setdefault(uri, RetryState())
        state.attempts += 1
        if link.transport == "SHMROS":
            state.shm_failures += 1
        permanent = link.transport is None and isinstance(
            link.error, (tcpros.ConnectionHandshakeError, TopicTypeMismatch)
        )
        policy = self._retry_policy
        if permanent or policy.gives_up(state.attempts + 1, state.started):
            state.exhausted = True
            self._exhausted(uri)
            return
        self._timers[uri] = CancellableTimer(
            policy.delay(state.attempts), lambda: self._retry_connect(uri)
        )

    def _retry_connect(self, uri: str) -> None:
        with self._lock:
            self._timers.pop(uri, None)
            if self._shutdown or uri not in self._wanted or uri in self._links:
                return
            state = self._retry.get(uri)
            downgraded = (
                state is not None
                and not state.allow_shm(self._retry_policy)
            )
            self.retries += 1
            self._links[uri] = _InboundLink(
                self, uri,
                allow_shm=False if downgraded else None,
                downgraded=downgraded,
            )
            self._refresh_state()

    def _exhausted(self, uri: str) -> None:
        """Retry budget spent.  Last rung of the failover ladder: if the
        unreachable publisher lives in this very process, deliver through
        the local bus instead of a socket."""
        if self._intraprocess_fallback or self.intraprocess:
            return
        if uri in local_bus.local_publisher_uris(
            self.node.master_uri, self.topic
        ):
            self._intraprocess_fallback = True
            local_bus.register_subscriber(self)

    def _cancel_timer(self, uri: str) -> None:
        timer = self._timers.pop(uri, None)
        if timer is not None:
            timer.cancel()

    # ------------------------------------------------------------------
    # Transport planning
    # ------------------------------------------------------------------
    def set_transport_preference(
        self, uri: str, transport: str, reason: str = ""
    ) -> bool:
        """Re-dial the link to ``uri`` with the given transport ("SHMROS"
        or "TCPROS") -- the planner's flip primitive.

        The replacement link is installed *before* the old one is closed:
        ``_link_closed`` then sees the dying link is no longer current and
        schedules no retry, so a flip is one reconnect, not a reconnect
        plus a spurious self-heal.  Returns True when a flip was started.
        """
        if transport not in ("SHMROS", "TCPROS"):
            raise ValueError(f"unknown transport {transport!r}")
        with self._lock:
            if self._shutdown or uri not in self._links:
                return False
            old = self._links[uri]
            if old.transport is None or old.transport == transport:
                # Still connecting, or already where the planner wants it.
                return False
            self._links[uri] = _InboundLink(
                self, uri,
                allow_shm=(transport == "SHMROS"),
                planned_reason=reason,
            )
            self._refresh_state()
        old.close()
        return True

    def transports(self) -> dict[str, int]:
        """Connected link count per transport name (deprecated: aggregate
        ``link.stats()["transport"]`` over :meth:`links` instead)."""
        _deprecated(
            "Subscriber.transports()",
            'link.stats()["transport"] over sub.links()',
        )
        return self._transport_counts()

    def _transport_counts(self) -> dict[str, int]:
        with self._lock:
            links = list(self._connected)
        counts: dict[str, int] = {}
        for link in links:
            if link.transport:
                counts[link.transport] = counts.get(link.transport, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # link_state (healthy / degraded / reconnecting / dead)
    # ------------------------------------------------------------------
    def _refresh_state(self) -> None:
        """Recompute ``link_state`` (caller holds ``self._lock``)."""
        state = self._compute_state()
        if state != self._state:
            self._state = state
            self._state_history.append(state)

    def _compute_state(self) -> str:
        pending = [
            uri for uri, st in self._retry.items()
            if uri in self._wanted and not st.exhausted
        ]
        exhausted = [
            uri for uri, st in self._retry.items()
            if uri in self._wanted and st.exhausted
        ]
        degraded = any(link.downgraded for link in self._connected)
        if not self._connected:
            if exhausted and not pending:
                return "dead" if not self._intraprocess_fallback else "degraded"
            if pending:
                return "reconnecting"
            return "healthy"
        if pending or exhausted or degraded:
            return "degraded"
        return "healthy"

    def get_num_connections(self) -> int:
        with self._lock:
            count = len(self._connected)
        if self.intraprocess or self._intraprocess_fallback:
            count += len(
                local_bus.local_publisher_uris(self.node.master_uri, self.topic)
            )
        return count

    def links(self) -> list:
        """Inbound links (connected or dialing), each speaking the
        unified Link protocol -- the supported replacement for poking
        per-transport attributes."""
        with self._lock:
            return list(self._links.values())

    @property
    def link_state(self) -> str:
        """Aggregate health of this subscription's data links."""
        with self._lock:
            return self._state

    def state_history(self) -> list[str]:
        """The sequence of ``link_state`` values this subscription has
        been through (bounded; newest last) -- what chaos tests assert
        recovery against."""
        with self._lock:
            return list(self._state_history)

    def wait_for_publishers(self, count: int = 1, timeout: float = 10.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.get_num_connections() >= count:
                return True
            self._connect_event.clear()
            self._connect_event.wait(timeout=0.05)
        return self.get_num_connections() >= count

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _dispatch(self, msg, trace_id: int = 0, pub_ns: int = 0) -> None:
        self.received_count += 1
        if pub_ns:
            self._latency.observe((time.monotonic_ns() - pub_ns) / 1e9)
        if trace_id:
            start_ns = time.monotonic_ns()
            try:
                self.callback(msg)
            finally:
                tracer.record(
                    "callback", trace_id, start_ns, time.monotonic_ns(),
                    topic=self.topic,
                )
        else:
            self.callback(msg)

    def stats(self) -> dict:
        """Public snapshot for diagnostics/metrics collectors."""
        with self._lock:
            links = list(self._connected)
        transports: dict[str, int] = {}
        for link in links:
            transports[link.transport] = transports.get(link.transport, 0) + 1
        with self._lock:
            state = self._state
            history = list(self._state_history)
            retries = self.retries
        return {
            "topic": self.topic,
            "type": self.type_name,
            "messages": self.received_count,
            "bytes": self.received_bytes,
            "connections": self.get_num_connections(),
            "stale_drops": self.stale_drops,
            "transports": transports,
            "link_state": state,
            "state_history": history,
            "retries": retries,
        }

    def _deliver_local(self, msg) -> None:
        """Intra-process delivery: the message object itself, by
        reference (const-ptr convention)."""
        if self.raw:
            # Raw subscribers always see payload bytes, even from the
            # local bus, so the callback contract stays uniform.
            payload, release = self.codec.encode(msg)
            try:
                self._dispatch(bytes(payload))
            finally:
                if release is not None:
                    release()
            return
        self.received_count += 1
        self.callback(msg)

    def unsubscribe(self) -> None:
        """Disconnect from every publisher and unregister."""
        with self._lock:
            self._shutdown = True
            links = list(self._links.values())
            self._links.clear()
            timers = list(self._timers.values())
            self._timers.clear()
            self._retry.clear()
            self._wanted = set()
        for timer in timers:
            timer.cancel()
        if self.intraprocess or self._intraprocess_fallback:
            local_bus.unregister_subscriber(self)
        for link in links:
            link.close()
        self.node._unsubscribe(self)

    def __enter__(self) -> "Subscriber":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unsubscribe()
