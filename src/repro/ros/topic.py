"""Publisher and Subscriber: the topic layer.

The user-facing API mirrors roscpp/rospy:

- ``pub = nh.advertise(topic, MsgClass)`` then ``pub.publish(msg)``;
- ``nh.subscribe(topic, MsgClass, callback)`` and the callback receives
  the message object.

Internally the publisher keeps one outbound link (socket + bounded queue +
sender thread) per connected subscriber; the subscriber keeps one inbound
link per discovered publisher.  Payload encoding happens **once per
publish** regardless of fan-out, and the payload's release hook (the SFM
buffer pointer) fires only after every link has sent or dropped it --
reproducing the reference counting of the paper's Fig. 8.
"""

from __future__ import annotations

import threading
import time
import xmlrpc.client
from collections import deque
from typing import Callable, Optional

from repro.ros.codecs import codec_for_class, type_info_for_class
from repro.ros.exceptions import TopicTypeMismatch
from repro.ros.transport import tcpros
from repro.ros.transport.intraprocess import local_bus


class _Outgoing:
    """One encoded payload shared by all links; releases the codec's
    payload hook when every link is done with it."""

    __slots__ = ("payload", "_remaining", "_release", "_lock")

    def __init__(self, payload, fanout: int, release) -> None:
        self.payload = payload
        self._remaining = fanout
        self._release = release
        self._lock = threading.Lock()

    def done(self) -> None:
        with self._lock:
            self._remaining -= 1
            finished = self._remaining == 0
        if finished and self._release is not None:
            self._release()


class _OutboundLink:
    """Publisher-side connection to one subscriber."""

    def __init__(self, publisher: "Publisher", sock, subscriber_id: str) -> None:
        self.publisher = publisher
        self.sock = sock
        self.subscriber_id = subscriber_id
        self._queue: deque[_Outgoing] = deque()
        self._condition = threading.Condition()
        self._closed = False
        self.dropped = 0
        self._thread = threading.Thread(
            target=self._send_loop,
            daemon=True,
            name=f"pub:{publisher.topic}->{subscriber_id}",
        )
        self._thread.start()

    def enqueue(self, outgoing: _Outgoing) -> None:
        with self._condition:
            if self._closed:
                outgoing.done()
                return
            if (
                self.publisher.queue_size
                and len(self._queue) >= self.publisher.queue_size
            ):
                oldest = self._queue.popleft()
                oldest.done()
                self.dropped += 1
            self._queue.append(outgoing)
            self._condition.notify()

    def _send_loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._closed:
                    self._condition.wait()
                if self._closed and not self._queue:
                    return
                outgoing = self._queue.popleft()
            try:
                tcpros.write_frame(self.sock, outgoing.payload)
            except OSError:
                outgoing.done()
                self._shutdown_from_error()
                return
            finally:
                pass
            outgoing.done()

    def _shutdown_from_error(self) -> None:
        self.close()
        self.publisher._remove_link(self)

    def close(self) -> None:
        with self._condition:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
            self._condition.notify_all()
        for outgoing in pending:
            outgoing.done()
        try:
            self.sock.close()
        except OSError:
            pass


class Publisher:
    """A handle for publishing messages on one topic."""

    def __init__(
        self,
        node,
        topic: str,
        msg_class: type,
        queue_size: int = 100,
        intraprocess: bool = False,
        latch: bool = False,
    ) -> None:
        self.node = node
        self.topic = topic
        self.msg_class = msg_class
        self.queue_size = queue_size
        self.intraprocess = intraprocess
        self.latch = latch
        self.codec = codec_for_class(msg_class)
        self.type_name, self.md5sum = type_info_for_class(msg_class)
        self._links: list[_OutboundLink] = []
        self._links_lock = threading.Lock()
        self._link_event = threading.Event()
        #: Last published payload, kept when latching so late subscribers
        #: receive it on connect (map_server-style semantics).
        self._latched_payload: bytes | None = None
        self.published_count = 0
        if intraprocess:
            local_bus.register_publisher(self)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, msg) -> None:
        """Publish ``msg`` to every connected subscriber.

        For plain classes this runs the generated serializer; for SFM
        classes it takes a buffer pointer (no serialization) -- the same
        call site either way, which is the transparency the paper claims.
        """
        self.published_count += 1
        if self.intraprocess:
            local_bus.deliver(self, msg)
        with self._links_lock:
            links = list(self._links)
        if not links and not self.latch:
            return
        payload, release = self.codec.encode(msg)
        if self.latch:
            # Keep a private copy: the original payload (e.g. an SFM
            # buffer) is released once every link has sent it.
            self._latched_payload = bytes(payload)
        if not links:
            if release is not None:
                release()
            return
        outgoing = _Outgoing(payload, len(links), release)
        for link in links:
            link.enqueue(outgoing)

    # ------------------------------------------------------------------
    # Connection management (called by the node's data server)
    # ------------------------------------------------------------------
    def _accept(self, sock, header: dict[str, str]) -> None:
        error = self._validate_header(header)
        if error:
            tcpros.reject_connection(sock, error)
            return
        reply = {
            "callerid": self.node.name,
            "topic": self.topic,
            "type": self.type_name,
            "md5sum": self.md5sum,
            "format": self.codec.format_name,
            "latching": "1" if self.latch else "0",
        }
        try:
            tcpros.write_frame(sock, tcpros.encode_header(reply))
        except OSError:
            sock.close()
            return
        link = _OutboundLink(self, sock, header.get("callerid", "?"))
        with self._links_lock:
            self._links.append(link)
            latched = self._latched_payload
        if latched is not None:
            link.enqueue(_Outgoing(latched, 1, None))
        self._link_event.set()

    def _validate_header(self, header: dict[str, str]) -> Optional[str]:
        if header.get("topic") != self.topic:
            return f"topic mismatch: {header.get('topic')} != {self.topic}"
        their_type = header.get("type")
        if their_type not in ("*", self.type_name):
            return f"type mismatch: {their_type} != {self.type_name}"
        their_md5 = header.get("md5sum")
        if their_md5 not in ("*", self.md5sum):
            return f"md5sum mismatch for {self.type_name}"
        their_format = header.get("format", "ros")
        if their_format != self.codec.format_name:
            return (
                f"wire format mismatch: subscriber expects {their_format}, "
                f"publisher sends {self.codec.format_name}"
            )
        return None

    def _remove_link(self, link: _OutboundLink) -> None:
        with self._links_lock:
            if link in self._links:
                self._links.remove(link)

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    def get_num_connections(self) -> int:
        """Number of connected subscriber links."""
        with self._links_lock:
            return len(self._links)

    def wait_for_subscribers(self, count: int = 1, timeout: float = 10.0) -> bool:
        """Block until at least ``count`` subscribers are connected."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.get_num_connections() >= count:
                return True
            self._link_event.clear()
            self._link_event.wait(timeout=0.05)
        return self.get_num_connections() >= count

    def unadvertise(self) -> None:
        """Close every link and unregister from the master."""
        if self.intraprocess:
            local_bus.unregister_publisher(self)
        with self._links_lock:
            links = list(self._links)
            self._links.clear()
        for link in links:
            link.close()
        self.node._unadvertise(self)


class _InboundLink:
    """Subscriber-side connection to one publisher."""

    def __init__(self, subscriber: "Subscriber", publisher_uri: str) -> None:
        self.subscriber = subscriber
        self.publisher_uri = publisher_uri
        self.sock = None
        self.error: Optional[Exception] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run,
            daemon=True,
            name=f"sub:{subscriber.topic}<-{publisher_uri}",
        )
        self._thread.start()

    def _run(self) -> None:
        subscriber = self.subscriber
        try:
            proxy = xmlrpc.client.ServerProxy(self.publisher_uri, allow_none=True)
            code, _status, protocol = proxy.requestTopic(
                subscriber.node.name, subscriber.topic, [["TCPROS"]]
            )
            if code != 1 or not protocol or protocol[0] != "TCPROS":
                return
            _proto, host, port = protocol
            header = {
                "callerid": subscriber.node.name,
                "topic": subscriber.topic,
                "type": subscriber.type_name,
                "md5sum": subscriber.md5sum,
                "format": subscriber.codec.format_name,
                "tcp_nodelay": "1",
            }
            self.sock, reply = tcpros.connect_subscriber(host, port, header)
            their_format = reply.get("format", "ros")
            if their_format != subscriber.codec.format_name:
                raise TopicTypeMismatch(
                    f"publisher sends {their_format}, expected "
                    f"{subscriber.codec.format_name}"
                )
            subscriber._link_connected(self)
            while not self._closed:
                frame = tcpros.read_frame(self.sock)
                msg = subscriber.codec.decode(frame)
                subscriber._dispatch(msg)
        except (ConnectionError, OSError) as exc:
            self.error = exc
        except (tcpros.ConnectionHandshakeError, TopicTypeMismatch) as exc:
            # The publisher refused us (type/md5/format mismatch); record
            # why so wait_for_publishers debugging can surface it.
            self.error = exc
        finally:
            self.close()
            subscriber._link_closed(self)

    def close(self) -> None:
        self._closed = True
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass


class Subscriber:
    """A subscription delivering messages to a callback."""

    def __init__(
        self,
        node,
        topic: str,
        msg_class: type,
        callback: Callable,
        intraprocess: bool = False,
    ) -> None:
        self.node = node
        self.topic = topic
        self.msg_class = msg_class
        self.callback = callback
        self.intraprocess = intraprocess
        self.codec = codec_for_class(msg_class)
        self.type_name, self.md5sum = type_info_for_class(msg_class)
        self._links: dict[str, _InboundLink] = {}
        self._connected: set[_InboundLink] = set()
        self._lock = threading.Lock()
        self._connect_event = threading.Event()
        self.received_count = 0
        self._shutdown = False
        if intraprocess:
            local_bus.register_subscriber(self)

    # ------------------------------------------------------------------
    # Publisher discovery
    # ------------------------------------------------------------------
    def update_publishers(self, publisher_uris: list[str]) -> None:
        """React to the master's current publisher list for the topic."""
        local_uris = (
            local_bus.local_publisher_uris(self.node.master_uri, self.topic)
            if self.intraprocess
            else set()
        )
        with self._lock:
            if self._shutdown:
                return
            known = set(self._links)
            wanted = {
                uri for uri in publisher_uris
                if uri != "" and uri not in local_uris
            }
            for uri in wanted - known:
                self._links[uri] = _InboundLink(self, uri)
            for uri in known - wanted:
                link = self._links.pop(uri)
                link.close()

    def _link_connected(self, link: _InboundLink) -> None:
        with self._lock:
            self._connected.add(link)
        self._connect_event.set()

    def _link_closed(self, link: _InboundLink) -> None:
        with self._lock:
            self._connected.discard(link)
            self._links.pop(link.publisher_uri, None)

    def get_num_connections(self) -> int:
        with self._lock:
            count = len(self._connected)
        if self.intraprocess:
            count += len(
                local_bus.local_publisher_uris(self.node.master_uri, self.topic)
            )
        return count

    def wait_for_publishers(self, count: int = 1, timeout: float = 10.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.get_num_connections() >= count:
                return True
            self._connect_event.clear()
            self._connect_event.wait(timeout=0.05)
        return self.get_num_connections() >= count

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _dispatch(self, msg) -> None:
        self.received_count += 1
        self.callback(msg)

    def _deliver_local(self, msg) -> None:
        """Intra-process delivery: the message object itself, by
        reference (const-ptr convention)."""
        self.received_count += 1
        self.callback(msg)

    def unsubscribe(self) -> None:
        """Disconnect from every publisher and unregister."""
        with self._lock:
            self._shutdown = True
            links = list(self._links.values())
            self._links.clear()
        if self.intraprocess:
            local_bus.unregister_subscriber(self)
        for link in links:
            link.close()
        self.node._unsubscribe(self)
