"""Transports: TCPROS-style sockets and the intra-process fast path."""

from repro.ros.transport.tcpros import (
    TcpRosServer,
    connect_subscriber,
    decode_header,
    encode_header,
    read_frame,
    write_frame,
)

__all__ = [
    "TcpRosServer",
    "connect_subscriber",
    "decode_header",
    "encode_header",
    "read_frame",
    "write_frame",
]
