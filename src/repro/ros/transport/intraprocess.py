"""Intra-process topic bus: zero-copy delivery inside one process.

ROS1 reaches this with nodelets (and the paper cites shared-memory systems
for the intra-machine case); miniros offers an opt-in equivalent: when a
publisher and a subscriber in the same process both pass
``intraprocess=True``, messages are handed over by reference -- no
serialization, no sockets.  Subscribers must treat delivered messages as
const (the ``ConstPtr`` convention).

The bus also lets subscribers recognize which publisher URIs are local so
they can skip the redundant TCP connection.
"""

from __future__ import annotations

import threading
from collections import defaultdict

from repro.obs.instrument import intraprocess_deliveries

#: Cached unlabelled cell: the per-delivery path is one flag check + add.
_DELIVERIES = intraprocess_deliveries.labels()


class LocalBus:
    """Process-wide registry of intra-process publishers/subscribers,
    keyed by (master_uri, topic) so independent graphs do not mix."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._publishers: dict[tuple[str, str], set] = defaultdict(set)
        self._subscribers: dict[tuple[str, str], set] = defaultdict(set)

    def register_publisher(self, publisher) -> None:
        key = (publisher.node.master_uri, publisher.topic)
        with self._lock:
            self._publishers[key].add(publisher)

    def unregister_publisher(self, publisher) -> None:
        key = (publisher.node.master_uri, publisher.topic)
        with self._lock:
            self._publishers[key].discard(publisher)

    def register_subscriber(self, subscriber) -> None:
        key = (subscriber.node.master_uri, subscriber.topic)
        with self._lock:
            self._subscribers[key].add(subscriber)

    def unregister_subscriber(self, subscriber) -> None:
        key = (subscriber.node.master_uri, subscriber.topic)
        with self._lock:
            self._subscribers[key].discard(subscriber)

    def local_publisher_uris(self, master_uri: str, topic: str) -> set[str]:
        """Slave API URIs of local intra-process publishers of ``topic``."""
        with self._lock:
            return {
                publisher.node.uri
                for publisher in self._publishers[(master_uri, topic)]
            }

    def deliver(self, publisher, msg) -> int:
        """Hand ``msg`` by reference to every local subscriber; returns
        the number of deliveries."""
        key = (publisher.node.master_uri, publisher.topic)
        with self._lock:
            subscribers = list(self._subscribers[key])
        for subscriber in subscribers:
            subscriber._deliver_local(msg)
        if subscribers:
            _DELIVERIES.inc(len(subscribers))
        return len(subscribers)


#: The process-wide bus instance.
local_bus = LocalBus()
