"""SHMROS: zero-copy shared-memory transport for intra-machine pub/sub.

The paper's thesis is that serialization, not the wire, dominates
intra-machine message cost.  TCPROS over loopback still pays two kernel
copies plus socket syscalls per message; since an SFM message *is* its
buffer, a message written once into a shared segment can be adopted by
another process with zero further copies (the TZC / Agnocast design
lineage -- see PAPERS.md).

Architecture
------------

- Each publisher owns a **ring** of fixed-size slots inside one
  ``multiprocessing.shared_memory`` segment.  ``Publisher.publish`` copies
  the encoded payload into a free slot exactly once, shared by every
  shared-memory subscriber (fan-out without re-copy).
- A small TCP **doorbell** connection per subscriber (the same socket that
  carried the TCPROS-style handshake) wakes the subscriber with a tiny
  control frame naming the slot, its sequence number and payload size;
  the subscriber maps the segment and reads the payload in place, then
  acknowledges the slot so the publisher can reuse it.
- Slots carry a generation header (sequence + size) written after the
  payload, so a subscriber that arrives late -- or reads a slot the
  publisher was forced to reclaim -- detects staleness instead of
  decoding torn bytes.
- Payloads larger than the current slot size trigger a **reseg**: the
  publisher allocates a bigger ring and tells each subscriber (in frame
  order) to re-attach; payloads are never silently truncated, and if
  shared memory is unavailable the payload travels inline over the
  doorbell socket, TCPROS-framed.

Slot reclamation: a slot stays busy until every notified subscriber has
acknowledged it.  When the ring is full, new payloads degrade to inline
delivery over the doorbell socket, so backlog depth is governed by the
publisher's ordinary ``queue_size`` -- and when a slow subscriber's queue
overflows, dropping the queued notification releases its slot hold.  A
slow or killed subscriber can therefore never wedge the publisher; its
losses surface in the link's ``dropped`` counter.  ``write(force=True)``
additionally supports reclaiming the oldest busy slot outright (bumping
its generation so stragglers see staleness instead of torn bytes).
"""

from __future__ import annotations

import os
import socket
import struct
import threading
import uuid
from collections import deque
from typing import Callable, Iterable, Optional

from repro.ros.transport.tcpros import (
    batching_enabled,
    read_exact,
    send_parts,
)

try:  # pragma: no cover - exercised only where shm is unavailable
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Ring geometry defaults.  Slots grow adaptively (reseg) when a payload
#: does not fit, so the defaults only size the common case; untouched
#: slot pages are never committed by the kernel.
DEFAULT_SLOT_COUNT = 8
DEFAULT_SLOT_BYTES = 1 << 20

_MAGIC = 0x53484D52  # "SHMR"
_VERSION = 1
_RING_HEADER = struct.Struct("<IIIIQ")  # magic, version, slot_count, pad, slot_bytes
_RING_HEADER_SPACE = 64
_SLOT_HEADER = struct.Struct("<QQ")  # seq, size
_SLOT_HEADER_SPACE = 16
_PAGE = 4096

#: Doorbell control frames: a fixed header, optionally followed by a
#: body.  Every frame carries two trailing observability fields -- the
#: publisher's trace id (0 when untraced) and its publish timestamp in
#: monotonic nanoseconds -- so per-message tracing and the
#: publish-to-callback latency histogram need no extra round trip.
_FRAME = struct.Struct("<BIQQQQ")  # kind, a, b, c, trace_id, stamp_ns
KIND_SLOT = 1    # a=slot, b=seq, c=size
KIND_INLINE = 2  # c=size, followed by the payload bytes
KIND_RESEG = 3   # a=slot_count, b=len(name), c=slot_bytes, followed by name
KIND_ACK = 4     # a=slot, b=seq
KIND_KEEPALIVE = 5  # no operands; resets the reader's idle timer


# ----------------------------------------------------------------------
# Chaos seam: an installable interceptor for outgoing doorbell frames.
# ``hook(kind, sock, size) -> bool`` -- False swallows the frame (a
# stalled doorbell), True lets it through.  The transport never imports
# repro.chaos.
# ----------------------------------------------------------------------
_doorbell_hook = None


def install_doorbell_hook(hook) -> None:
    """Install (or with ``None`` remove) the doorbell send interceptor."""
    global _doorbell_hook
    _doorbell_hook = hook


def _doorbell_allows(kind: int, sock, size: int) -> bool:
    hook = _doorbell_hook
    if hook is None:
        return True
    return bool(hook(kind, sock, size))


class ShmTransportError(Exception):
    """Shared-memory transport failure (caller falls back to TCPROS)."""


class ShmAttachError(ShmTransportError):
    """The subscriber could not attach the publisher's segment."""


class SlotTooLarge(ShmTransportError):
    """Payload exceeds the ring's slot size (caller must reseg or inline)."""


def shm_available() -> bool:
    """Whether this interpreter/platform can serve shared memory."""
    return _shared_memory is not None


_machine_id: Optional[str] = None
_machine_id_lock = threading.Lock()


def machine_id() -> str:
    """A stable identifier for this machine, exchanged during transport
    negotiation so SHMROS is only offered to same-machine peers (a
    hostname alone is not unique across containers sharing a network)."""
    global _machine_id
    with _machine_id_lock:
        if _machine_id is None:
            boot = ""
            try:
                with open("/proc/sys/kernel/random/boot_id") as fh:
                    boot = fh.read().strip()
            except OSError:
                boot = f"{uuid.getnode():x}"
            _machine_id = f"{socket.gethostname()}:{boot}"
        return _machine_id


def _data_base(slot_count: int) -> int:
    """Offset of slot 0's payload area (page aligned past the headers)."""
    headers_end = _RING_HEADER_SPACE + slot_count * _SLOT_HEADER_SPACE
    return (headers_end + _PAGE - 1) // _PAGE * _PAGE


#: Segment names created by THIS process; attaching to one of these must
#: not unregister it from the resource tracker (the creator's unlink
#: performs the one matching unregister).
_local_segments: set[str] = set()


def _unregister_from_tracker(shm) -> None:
    """Detach an *attached* segment from the resource tracker: on
    CPython < 3.13 the tracker registers every ``SharedMemory`` and would
    unlink the publisher's segment when the subscriber exits."""
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _BusySlot:
    """Publisher-side bookkeeping for one in-flight slot."""

    __slots__ = ("seq", "readers")

    def __init__(self, seq: int, readers: set) -> None:
        self.seq = seq
        self.readers = readers


class _Sticky:
    """Bookkeeping for one sticky (delta-updatable) slot.

    A slab-backed growth message republishes mostly-unchanged bytes; a
    sticky slot keeps the previous payload resident so the next publish
    of the same message copies only the skeleton prefix and the dirty
    tail (the stable middle is already in shared memory).  ``written``
    is the byte length the slot currently holds."""

    __slots__ = ("slot", "seq", "written")

    def __init__(self, slot: int, seq: int, written: int) -> None:
        self.slot = slot
        self.seq = seq
        self.written = written


class ShmRingWriter:
    """The publisher side of one shared-memory ring."""

    def __init__(
        self,
        slot_count: int = DEFAULT_SLOT_COUNT,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        seq_source=None,
        on_reclaim: Optional[Callable[[object], None]] = None,
    ) -> None:
        if not shm_available():
            raise ShmTransportError("shared memory is unavailable")
        if slot_count < 1 or slot_bytes < 1:
            raise ValueError("ring needs at least one non-empty slot")
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self._data_base = _data_base(slot_count)
        size = self._data_base + slot_count * slot_bytes
        self._shm = _shared_memory.SharedMemory(create=True, size=size)
        self.name = self._shm.name
        _local_segments.add(self.name)
        self._buf = self._shm.buf
        _RING_HEADER.pack_into(
            self._buf, 0, _MAGIC, _VERSION, slot_count, 0, slot_bytes
        )
        for slot in range(slot_count):
            _SLOT_HEADER.pack_into(self._buf, self._slot_header_at(slot), 0, 0)
        self._lock = threading.Lock()
        self._free: deque[int] = deque(range(slot_count))
        self._busy: dict[int, _BusySlot] = {}
        self._seq = seq_source if seq_source is not None else iter(
            range(1, 1 << 62)
        ).__next__
        self._on_reclaim = on_reclaim
        self.forced_reclaims = 0
        #: key -> sticky record; insertion order doubles as LRU order.
        self._sticky: dict[object, _Sticky] = {}
        self._sticky_slots: set[int] = set()
        #: Sticky slots are excluded from the free list, so cap them to a
        #: quarter of the ring -- ordinary traffic keeps its slots.
        self._max_sticky = max(1, slot_count // 4)
        self.delta_writes = 0
        self.delta_bytes = 0
        self._closed = False

    def _slot_header_at(self, slot: int) -> int:
        return _RING_HEADER_SPACE + slot * _SLOT_HEADER_SPACE

    def _slot_data_at(self, slot: int) -> int:
        return self._data_base + slot * self.slot_bytes

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(
        self, payload, readers: Iterable[object], force: bool = False
    ) -> Optional[tuple[int, int, int]]:
        """Copy ``payload`` into a free slot; returns (slot, seq, size).

        ``readers`` are opaque tokens (one per subscriber link) that must
        each :meth:`release` the slot before it is reused.  When no slot
        is free the write returns ``None`` so the caller can fall back to
        inline delivery (preserving queue semantics) -- unless ``force``
        is set, in which case the oldest busy slot is reclaimed: its
        pending readers are reported through ``on_reclaim`` and counted
        in :attr:`forced_reclaims`, and stragglers reading the reused
        slot see a changed sequence number instead of torn bytes.
        """
        size = len(payload)
        if size > self.slot_bytes:
            raise SlotTooLarge(
                f"payload of {size} bytes exceeds {self.slot_bytes}-byte slots"
            )
        reclaimed: list[object] = []
        with self._lock:
            if self._closed:
                raise ShmTransportError("ring is closed")
            if not self._free:
                if not force:
                    return None
                # Prefer non-sticky victims: a sticky slot's resident
                # bytes are what make the next delta write possible.
                candidates = [
                    s for s in self._busy if s not in self._sticky_slots
                ] or list(self._busy)
                victim = min(candidates, key=lambda s: self._busy[s].seq)
                if victim in self._sticky_slots:
                    for k, st in list(self._sticky.items()):
                        if st.slot == victim:
                            del self._sticky[k]
                    self._sticky_slots.discard(victim)
                reclaimed = list(self._busy.pop(victim).readers)
                self._free.append(victim)
                self.forced_reclaims += 1
            slot = self._free.popleft()
            seq = self._seq()
            header_at = self._slot_header_at(slot)
            data_at = self._slot_data_at(slot)
            # Invalidate the header before touching the payload area so a
            # straggling reader never matches a half-written slot.
            _SLOT_HEADER.pack_into(self._buf, header_at, 0, 0)
            self._buf[data_at : data_at + size] = payload
            _SLOT_HEADER.pack_into(self._buf, header_at, seq, size)
            self._busy[slot] = _BusySlot(seq, set(readers))
        if reclaimed and self._on_reclaim is not None:
            for reader in reclaimed:
                self._on_reclaim(reader)
        return slot, seq, size

    def release(self, slot: int, seq: int, reader: object) -> bool:
        """Drop ``reader``'s hold on (slot, seq); True if it matched."""
        with self._lock:
            busy = self._busy.get(slot)
            if busy is None or busy.seq != seq:
                return False
            busy.readers.discard(reader)
            if not busy.readers:
                del self._busy[slot]
                if not self._closed and slot not in self._sticky_slots:
                    self._free.append(slot)
            return True

    def drop_reader(self, reader: object) -> None:
        """Release every slot ``reader`` still holds (link death)."""
        with self._lock:
            for slot in list(self._busy):
                busy = self._busy[slot]
                busy.readers.discard(reader)
                if not busy.readers:
                    del self._busy[slot]
                    if not self._closed and slot not in self._sticky_slots:
                        self._free.append(slot)

    # ------------------------------------------------------------------
    # Sticky (delta) writes
    # ------------------------------------------------------------------
    def write_update(
        self,
        payload,
        readers: Iterable[object],
        key: object,
        prefix: int,
        stable: int,
    ) -> Optional[tuple[int, int, int]]:
        """Republish ``key``'s message, copying only what changed.

        ``prefix`` bytes at the head (the SFM skeleton) are always
        rewritten; bytes in ``[prefix, stable)`` are guaranteed by the
        caller to be byte-identical to the previous publish of ``key``
        (the record's dirty floor), so when the key's sticky slot is
        fully acknowledged the write touches only the skeleton and the
        dirty tail in place.  A sticky slot still held by an unacked
        reader is never mutated: the payload goes to a fresh slot
        (copy-on-write) and stickiness moves there.  Returns
        ``(slot, seq, size)``, or ``None`` when the ring is full (same
        inline fallback contract as :meth:`write`).
        """
        size = len(payload)
        if size > self.slot_bytes:
            raise SlotTooLarge(
                f"payload of {size} bytes exceeds {self.slot_bytes}-byte slots"
            )
        with self._lock:
            if self._closed:
                raise ShmTransportError("ring is closed")
            st = self._sticky.get(key)
            if st is not None and st.slot not in self._busy:
                # In-place rewrite of the acknowledged sticky slot.  The
                # stable range the slot can actually supply is capped by
                # what it holds from the previous write.
                effective = max(prefix, min(stable, st.written, size))
                slot = st.slot
                seq = self._seq()
                header_at = self._slot_header_at(slot)
                data_at = self._slot_data_at(slot)
                _SLOT_HEADER.pack_into(self._buf, header_at, 0, 0)
                view = memoryview(payload)
                if effective > prefix:
                    self._buf[data_at : data_at + prefix] = view[:prefix]
                    if effective < size:
                        self._buf[data_at + effective : data_at + size] = view[
                            effective:size
                        ]
                    self.delta_writes += 1
                    self.delta_bytes += prefix + (size - effective)
                else:
                    self._buf[data_at : data_at + size] = view
                _SLOT_HEADER.pack_into(self._buf, header_at, seq, size)
                self._busy[slot] = _BusySlot(seq, set(readers))
                st.seq = seq
                st.written = size
                self._sticky.pop(key)
                self._sticky[key] = st  # refresh LRU position
                return slot, seq, size
        # COW / first publish: full write to a fresh slot, then stick it.
        result = self.write(payload, readers)
        if result is None:
            return None
        slot, seq, size = result
        with self._lock:
            if self._closed:
                return result
            old = self._sticky.pop(key, None)
            if old is not None:
                self._unstick_slot(old.slot)
            self._sticky[key] = _Sticky(slot, seq, size)
            self._sticky_slots.add(slot)
            while len(self._sticky) > self._max_sticky:
                lru_key = next(iter(self._sticky))
                lru = self._sticky.pop(lru_key)
                self._unstick_slot(lru.slot)
        return result

    def unstick(self, key: object) -> None:
        """Drop ``key``'s sticky reservation (link teardown, reseg)."""
        with self._lock:
            st = self._sticky.pop(key, None)
            if st is not None:
                self._unstick_slot(st.slot)

    def _unstick_slot(self, slot: int) -> None:
        # Lock held.  A sticky slot bypassed the free list on its last
        # release; return it now unless a reader still holds it.
        self._sticky_slots.discard(slot)
        if (
            not self._closed
            and slot not in self._busy
            and slot not in self._free
        ):
            self._free.append(slot)

    def sticky_count(self) -> int:
        with self._lock:
            return len(self._sticky)

    def idle(self) -> bool:
        with self._lock:
            return not self._busy

    def busy_count(self) -> int:
        with self._lock:
            return len(self._busy)

    def close(self, unlink: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._busy.clear()
            self._free.clear()
            self._sticky.clear()
            self._sticky_slots.clear()
        self._buf = None
        try:
            self._shm.close()
        except OSError:  # pragma: no cover
            pass
        if unlink:
            # A subscriber spawned from this process shares our resource
            # tracker, so its attach-time unregister already consumed the
            # tracker entry; re-register (idempotent) so the unregister
            # inside ``unlink`` always finds one and the tracker does not
            # spew KeyError tracebacks.
            try:  # pragma: no cover - depends on interpreter internals
                from multiprocessing import resource_tracker

                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:
                pass
            try:
                self._shm.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            _local_segments.discard(self.name)


class ShmRingReader:
    """The subscriber side: a read-only window onto a publisher's ring."""

    def __init__(self, name: str, slot_count: int, slot_bytes: int) -> None:
        if not shm_available():
            raise ShmAttachError("shared memory is unavailable")
        try:
            self._shm = _shared_memory.SharedMemory(name=name)
        except (OSError, ValueError, FileNotFoundError) as exc:
            raise ShmAttachError(f"cannot attach segment {name!r}: {exc}") from exc
        if name not in _local_segments:
            _unregister_from_tracker(self._shm)
        self._buf = self._shm.buf
        try:
            magic, version, count, _pad, nbytes = _RING_HEADER.unpack_from(
                self._buf, 0
            )
        except struct.error as exc:
            self.close()
            raise ShmAttachError(f"segment {name!r} too small") from exc
        if magic != _MAGIC or version != _VERSION:
            self.close()
            raise ShmAttachError(f"segment {name!r} is not a SHMROS ring")
        if count != slot_count or nbytes != slot_bytes:
            self.close()
            raise ShmAttachError(
                f"segment {name!r} geometry mismatch "
                f"({count}x{nbytes} != {slot_count}x{slot_bytes})"
            )
        self.name = name
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self._data_base = _data_base(slot_count)

    def slot_seq(self, slot: int) -> int:
        """The slot's current generation (0 while being rewritten)."""
        seq, _size = _SLOT_HEADER.unpack_from(
            self._buf, _RING_HEADER_SPACE + slot * _SLOT_HEADER_SPACE
        )
        return seq

    def payload_view(self, slot: int, size: int) -> memoryview:
        """Read-only zero-copy view of the slot's payload."""
        start = self._data_base + slot * self.slot_bytes
        return memoryview(self._buf)[start : start + size].toreadonly()

    def close(self) -> None:
        self._buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Doorbell control frames
# ----------------------------------------------------------------------
def send_slot_frame(
    sock: socket.socket, slot: int, seq: int, size: int,
    trace_id: int = 0, stamp_ns: int = 0,
) -> None:
    if not _doorbell_allows(KIND_SLOT, sock, size):
        return
    sock.sendall(_FRAME.pack(KIND_SLOT, slot, seq, size, trace_id, stamp_ns))


def send_inline_frame(
    sock: socket.socket, payload, trace_id: int = 0, stamp_ns: int = 0
) -> None:
    """Oversize/no-shm fallback: the payload rides the doorbell socket."""
    if not _doorbell_allows(KIND_INLINE, sock, len(payload)):
        return
    header = _FRAME.pack(KIND_INLINE, 0, 0, len(payload), trace_id, stamp_ns)
    if hasattr(sock, "sendmsg"):
        _sendmsg_all(sock, header, payload)
    else:  # pragma: no cover - non-POSIX
        sock.sendall(header)
        sock.sendall(payload)


def send_reseg_frame(
    sock: socket.socket, name: str, slot_count: int, slot_bytes: int
) -> None:
    encoded = name.encode("utf-8")
    if not _doorbell_allows(KIND_RESEG, sock, len(encoded)):
        return
    sock.sendall(
        _FRAME.pack(KIND_RESEG, slot_count, len(encoded), slot_bytes, 0, 0)
        + encoded
    )


def send_ack(sock: socket.socket, slot: int, seq: int) -> None:
    sock.sendall(_FRAME.pack(KIND_ACK, slot, seq, 0, 0, 0))


def send_keepalive(sock: socket.socket) -> None:
    """Doorbell keepalive: lets an idle SHM link prove it is not
    half-open (and lets a *stalled* doorbell be detected -- a wedged ring
    swallows keepalives too, so the reader's idle timer fires)."""
    if not _doorbell_allows(KIND_KEEPALIVE, sock, 0):
        return
    sock.sendall(_FRAME.pack(KIND_KEEPALIVE, 0, 0, 0, 0, 0))


def send_frames(sock: socket.socket, frames: list) -> None:
    """Coalesce several doorbell frames into one vectored send.

    ``frames`` are the same tuples :func:`read_control_frame` returns
    (``("slot", slot, seq, size, trace_id, stamp_ns)``,
    ``("inline", payload, trace_id, stamp_ns)``,
    ``("reseg", name, slot_count, slot_bytes)``, ``("ack", slot, seq)``,
    ``("keepalive",)``).  Each frame passes the chaos doorbell gate
    individually -- a fault plan that swallows slot announcements drops
    exactly the frames it would have dropped unbatched -- and the ones
    that pass travel in one syscall, in order.
    """
    parts = frames_to_parts(sock, frames)
    if parts:
        send_parts(sock, parts)


def frames_to_parts(sock, frames: list) -> list:
    """The encode half of :func:`send_frames`: the iovec list for a batch
    of doorbell frames (chaos gate applied per frame).  The reactor write
    path queues these on the link's outgoing buffer instead of sending
    inline."""
    parts: list = []
    pending = bytearray()
    for frame in frames:
        kind = frame[0]
        if kind == "slot":
            _k, slot, seq, size, trace_id, stamp_ns = frame
            if not _doorbell_allows(KIND_SLOT, sock, size):
                continue
            pending += _FRAME.pack(
                KIND_SLOT, slot, seq, size, trace_id, stamp_ns
            )
        elif kind == "inline":
            _k, payload, trace_id, stamp_ns = frame
            if not _doorbell_allows(KIND_INLINE, sock, len(payload)):
                continue
            pending += _FRAME.pack(
                KIND_INLINE, 0, 0, len(payload), trace_id, stamp_ns
            )
            if len(payload) <= 8192:
                pending += payload
            else:
                parts.append(bytes(pending))
                pending = bytearray()
                parts.append(memoryview(payload))
        elif kind == "reseg":
            _k, name, slot_count, slot_bytes = frame
            encoded = name.encode("utf-8")
            if not _doorbell_allows(KIND_RESEG, sock, len(encoded)):
                continue
            pending += _FRAME.pack(
                KIND_RESEG, slot_count, len(encoded), slot_bytes, 0, 0
            )
            pending += encoded
        elif kind == "ack":
            _k, slot, seq = frame
            pending += _FRAME.pack(KIND_ACK, slot, seq, 0, 0, 0)
        elif kind == "keepalive":
            if not _doorbell_allows(KIND_KEEPALIVE, sock, 0):
                continue
            pending += _FRAME.pack(KIND_KEEPALIVE, 0, 0, 0, 0, 0)
        else:  # pragma: no cover - caller bug
            raise ShmTransportError(f"cannot send frame kind {kind!r}")
    if pending:
        parts.append(bytes(pending))
    return parts


def ack_bytes(slot: int, seq: int) -> bytes:
    """The wire form of one ACK frame (the reactor path queues this on
    the link's write buffer instead of a blocking :func:`send_ack`)."""
    return _FRAME.pack(KIND_ACK, slot, seq, 0, 0, 0)


def read_control_frame(sock: socket.socket) -> tuple:
    """Read one doorbell frame; returns a ``(kind, ...)`` tuple:

    - ``("slot", slot, seq, size, trace_id, stamp_ns)``
    - ``("inline", payload_bytearray, trace_id, stamp_ns)``
    - ``("reseg", segment_name, slot_count, slot_bytes)``
    - ``("ack", slot, seq)``
    - ``("keepalive",)``
    """
    return _decode_frame(
        bytes(read_exact(sock, _FRAME.size)),
        lambda count: read_exact(sock, count),
    )


def _decode_frame(header: bytes, read_body) -> tuple:
    kind, a, b, c, trace_id, stamp_ns = _FRAME.unpack(header)
    if kind == KIND_SLOT:
        return ("slot", a, b, c, trace_id, stamp_ns)
    if kind == KIND_INLINE:
        return ("inline", read_body(c), trace_id, stamp_ns)
    if kind == KIND_RESEG:
        name = bytes(read_body(b)).decode("utf-8")
        return ("reseg", name, a, c)
    if kind == KIND_ACK:
        return ("ack", a, b)
    if kind == KIND_KEEPALIVE:
        return ("keepalive",)
    raise ShmTransportError(f"unknown doorbell frame kind {kind}")


class DoorbellReader:
    """Buffered doorbell-frame reader (the receive half of batching).

    A publisher flushing a backlog packs many 37-byte control frames into
    one segment; reading them with one ``recv`` syscall each would throw
    the batching win away on the other side of the wire.  One ``recv``
    here pulls whatever arrived -- often a whole batch -- and subsequent
    frames parse straight out of the buffer.
    """

    __slots__ = ("_sock", "_buf", "_start")

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()
        self._start = 0

    def _read(self, count: int) -> bytearray:
        buf = self._buf
        while len(buf) - self._start < count:
            if self._start:
                del buf[: self._start]
                self._start = 0
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError("peer closed the connection")
            buf += chunk
        start = self._start
        self._start = start + count
        out = buf[start : start + count]
        if self._start >= len(buf):
            del buf[:]
            self._start = 0
        return out

    def read_frame(self) -> tuple:
        """One frame, as :func:`read_control_frame` tuples."""
        return _decode_frame(bytes(self._read(_FRAME.size)), self._read)


class DoorbellDecoder:
    """Incremental doorbell decoder for the reactor's non-blocking reads.

    ``feed(chunk)`` returns every frame completed by the chunk, as the
    same tuples :func:`read_control_frame` yields.  Bodies (inline
    payloads, reseg names) spanning chunk boundaries are reassembled.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data) -> list:
        buf = self._buf
        buf += data
        events: list = []
        pos = 0
        while True:
            if len(buf) - pos < _FRAME.size:
                break
            kind, a, b, c, _tid, _ns = _FRAME.unpack_from(buf, pos)
            body_len = 0
            if kind == KIND_INLINE:
                body_len = c
            elif kind == KIND_RESEG:
                body_len = b
            total = _FRAME.size + body_len
            if len(buf) - pos < total:
                break
            header = bytes(buf[pos : pos + _FRAME.size])
            body = buf[pos + _FRAME.size : pos + total]
            events.append(_decode_frame(header, lambda _count: body))
            pos += total
        if pos:
            del buf[:pos]
        return events


def _sendmsg_all(sock: socket.socket, header: bytes, payload) -> None:
    """Vectored send of header+payload, finishing any partial write."""
    view = memoryview(payload)
    total = len(header) + len(view)
    sent = sock.sendmsg([header, view])
    while sent < total:
        if sent < len(header):
            sock.sendall(header[sent:])
            sent = len(header)
            continue
        sent += sock.send(view[sent - len(header) :])


def next_slot_bytes(current: int, payload_size: int) -> int:
    """The grown slot size after a payload overflow: the next power of
    two comfortably above the payload (headroom for jitter in sizes)."""
    needed = max(current * 2, payload_size + (payload_size >> 2) + 64)
    grown = 1
    while grown < needed:
        grown <<= 1
    return grown


def env_disabled() -> bool:
    """Global kill switch: ``REPRO_SHMROS=0`` disables SHMROS entirely."""
    from repro import config

    return not config.shmros()
