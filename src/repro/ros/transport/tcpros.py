"""TCPROS-style transport: handshake headers and length-framed messages.

Wire protocol (as in ROS1's TCPROS):

- A *connection header* is a 32-bit little-endian total length followed by
  fields, each a 32-bit little-endian length plus ``key=value`` bytes.
  The subscriber sends its header first (callerid, topic, type, md5sum,
  format); the publisher validates and answers with its own header, or
  with an ``error`` field.
- After the handshake, each message is a 32-bit little-endian length
  followed by the payload bytes.

``write_frame`` accepts any bytes-like payload including memoryviews, so
the SFM path sends the message buffer without an intermediate copy.
"""

from __future__ import annotations

import os
import socket
import struct
import threading
from typing import Callable, Optional

from repro.ros.exceptions import ConnectionHandshakeError

_LEN = struct.Struct("<I")

#: Upper bound on accepted frame/header sizes; guards against garbage
#: lengths from a confused peer (64 MiB covers a 6 MB image many times).
MAX_FRAME = 64 * 1024 * 1024

#: In-band keepalive marker: a length word no real frame can use (far
#: beyond MAX_FRAME).  A publisher whose send queue idles writes just
#: this word; readers skip it, resetting their idle timer -- which is how
#: a half-open link (peer vanished without FIN) is told apart from a
#: merely quiet topic.
KEEPALIVE_WORD = 0xFFFFFFFF
_KEEPALIVE = _LEN.pack(KEEPALIVE_WORD)
#: The keepalive marker's wire bytes (the reactor write path queues this
#: on a link's outgoing buffer instead of a blocking ``write_keepalive``).
KEEPALIVE_FRAME = _KEEPALIVE


# ----------------------------------------------------------------------
# Chaos seam: an installable factory wrapping every data socket.  The
# transport never imports repro.chaos; a FaultPlan installs its wrapper
# here and every TCPROS/bridge connection flows through it.
# ----------------------------------------------------------------------
_socket_hook = None


def install_socket_hook(hook) -> None:
    """Install (or with ``None`` remove) the global socket-wrapping hook:
    ``hook(sock, seam, context) -> socket-like``."""
    global _socket_hook
    _socket_hook = hook


def wrap_socket(sock, seam: str, **context):
    """Run ``sock`` through the installed hook (identity when absent)."""
    hook = _socket_hook
    if hook is None:
        return sock
    return hook(sock, seam, context)


# ----------------------------------------------------------------------
# Routing seam: an installable factory that *creates* outbound data
# connections.  Where the socket hook wraps a connection after dialing,
# the connect hook replaces the dial itself -- repro.graphplane.routed
# installs one to splice subscriber links through a per-host-pair
# multiplexed tunnel.  Returning None falls back to a direct dial.
# ----------------------------------------------------------------------
_connect_hook = None


def install_connect_hook(hook) -> None:
    """Install (or with ``None`` remove) the outbound-dial hook:
    ``hook(host, port, timeout) -> socket-like | None``."""
    global _connect_hook
    _connect_hook = hook


def open_connection(host: str, port: int, timeout: float) -> socket.socket:
    """Dial an outbound data connection through the routing seam."""
    hook = _connect_hook
    if hook is not None:
        sock = hook(host, port, timeout)
        if sock is not None:
            return sock
    return socket.create_connection((host, port), timeout=timeout)

#: Traced connections (both sides sent ``trace=1`` in the connection
#: header) prefix every frame's payload with (trace_id, stamp_ns): the
#: publisher's per-message trace id (0 when untraced) and its publish
#: time in monotonic nanoseconds.  The outer length covers prefix +
#: payload, so a traced stream is still well-formed length framing.
_TRACE = struct.Struct("<QQ")
TRACE_PREFIX = _TRACE.size


def encode_header(fields: dict[str, str]) -> bytes:
    """Encode a connection header (without the outer length prefix)."""
    out = bytearray()
    for key, value in fields.items():
        entry = f"{key}={value}".encode("utf-8")
        out += _LEN.pack(len(entry))
        out += entry
    return bytes(out)


def decode_header(data: bytes) -> dict[str, str]:
    """Decode a connection header body into a field dict."""
    fields: dict[str, str] = {}
    offset = 0
    view = memoryview(data)
    while offset < len(view):
        (length,) = _LEN.unpack_from(view, offset)
        offset += 4
        entry = bytes(view[offset : offset + length]).decode("utf-8")
        offset += length
        key, sep, value = entry.partition("=")
        if not sep:
            raise ConnectionHandshakeError(f"malformed header entry {entry!r}")
        fields[key] = value
    return fields


def read_exact(sock: socket.socket, count: int) -> bytearray:
    """Read exactly ``count`` bytes (raises ConnectionError on EOF)."""
    buffer = bytearray(count)
    view = memoryview(buffer)
    got = 0
    while got < count:
        read = sock.recv_into(view[got:], count - got)
        if read == 0:
            raise ConnectionError("peer closed the connection")
        got += read
    return buffer


def read_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from the socket (EOF raises).

    The receive half of zero-copy reassembly: a TZC bulk range lands
    directly in its final position inside the adopted message buffer,
    never staged through an intermediate bytearray."""
    count = len(view)
    got = 0
    while got < count:
        read = sock.recv_into(view[got:], count - got)
        if read == 0:
            raise ConnectionError("peer closed the connection")
        got += read


def read_frame(sock: socket.socket) -> bytearray:
    """Read one length-prefixed frame (silently skipping keepalives)."""
    while True:
        (length,) = _LEN.unpack(bytes(read_exact(sock, 4)))
        if length == KEEPALIVE_WORD:
            continue
        if length > MAX_FRAME:
            raise ConnectionHandshakeError(
                f"frame length {length} exceeds limit"
            )
        return read_exact(sock, length)


def write_keepalive(sock: socket.socket) -> None:
    """Write one in-band keepalive marker (no payload follows)."""
    sock.sendall(_KEEPALIVE)


#: Payloads at or below this ride in one coalesced buffer with their
#: length prefix (one small copy beats a second syscall); larger payloads
#: go out vectored via ``sendmsg`` so the payload is never copied.
SMALL_FRAME = 8192

_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")

#: Sender-side coalescing watermarks: a drained send queue is flushed as
#: one vectored write of up to this many frames / this many payload
#: bytes.  The *time* watermark is zero -- a lone publish never waits for
#: company; only messages that were already queued behind it share the
#: flush -- so single-message latency is untouched while a backlog
#: collapses N syscalls into one.
BATCH_MAX_FRAMES = 16
BATCH_MAX_BYTES = 64 * 1024


def batching_enabled() -> bool:
    """Send-side frame coalescing kill switch: ``REPRO_DOORBELL_BATCH=0``
    restores one syscall per frame (TCPROS data frames and SHMROS
    doorbell frames alike)."""
    from repro import config

    return config.doorbell_batch()


def send_parts(sock: socket.socket, parts: list) -> None:
    """One vectored send of ``parts`` (bytes-like), finishing any partial
    write.  Falls back to a joined ``sendall`` without ``sendmsg``."""
    if len(parts) == 1:
        sock.sendall(parts[0])
        return
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX
        sock.sendall(b"".join(bytes(part) for part in parts))
        return
    total = sum(len(part) for part in parts)
    sent = sock.sendmsg(parts)
    if sent >= total:
        return
    # Partial write under backpressure (rare): flatten the remainder.
    rest = b"".join(bytes(part) for part in parts)
    sock.sendall(memoryview(rest)[sent:])


def write_frame(sock: socket.socket, payload) -> None:
    """Write one length-prefixed frame (payload may be a memoryview).

    A single syscall per frame: small payloads are coalesced with the
    4-byte prefix, large ones use a vectored ``sendmsg([prefix, payload])``
    -- either way the prefix and payload never cost two ``sendall`` calls,
    which is benchmark-visible on small messages.
    """
    if isinstance(payload, memoryview) and payload.itemsize != 1:
        payload = payload.cast("B")
    size = len(payload)
    prefix = _LEN.pack(size)
    if size <= SMALL_FRAME:
        sock.sendall(prefix + bytes(payload))
        return
    if not _HAS_SENDMSG:  # pragma: no cover - non-POSIX fallback
        sock.sendall(prefix)
        sock.sendall(payload)
        return
    view = payload if isinstance(payload, memoryview) else memoryview(payload)
    total = len(prefix) + size
    sent = sock.sendmsg([prefix, view])
    # sendmsg on a stream socket may write partially under backpressure;
    # finish the remainder with ordinary sends.
    while sent < total:
        if sent < len(prefix):
            sock.sendall(prefix[sent:])
            sent = len(prefix)
            continue
        sent += sock.send(view[sent - len(prefix) :])


def write_traced_frame(
    sock: socket.socket, payload, trace_id: int = 0, stamp_ns: int = 0
) -> None:
    """``write_frame`` for a traced connection: the 16-byte observability
    prefix rides inside the frame, coalesced with the length word so the
    syscall pattern (and therefore the overhead) matches the untraced
    path."""
    if isinstance(payload, memoryview) and payload.itemsize != 1:
        payload = payload.cast("B")
    size = len(payload)
    head = _LEN.pack(size + TRACE_PREFIX) + _TRACE.pack(trace_id, stamp_ns)
    if size <= SMALL_FRAME:
        sock.sendall(head + bytes(payload))
        return
    if not _HAS_SENDMSG:  # pragma: no cover - non-POSIX fallback
        sock.sendall(head)
        sock.sendall(payload)
        return
    view = payload if isinstance(payload, memoryview) else memoryview(payload)
    total = len(head) + size
    sent = sock.sendmsg([head, view])
    while sent < total:
        if sent < len(head):
            sock.sendall(head[sent:])
            sent = len(head)
            continue
        sent += sock.send(view[sent - len(head) :])


def write_frames(sock: socket.socket, payloads: list) -> None:
    """Write several length-prefixed frames in one vectored send.

    The flush of a drained publisher queue: each payload keeps its own
    length prefix (the receiver's framing is unchanged -- batching is
    invisible on the wire), but N small messages cost one syscall instead
    of N.  Small payloads are coalesced with their prefix; large ones ride
    as separate iovecs so they are never copied.
    """
    parts: list = []
    pending = bytearray()
    for payload in payloads:
        if isinstance(payload, memoryview) and payload.itemsize != 1:
            payload = payload.cast("B")
        size = len(payload)
        if size <= SMALL_FRAME:
            pending += _LEN.pack(size)
            pending += payload
        else:
            if pending:
                parts.append(bytes(pending))
                pending = bytearray()
            parts.append(_LEN.pack(size))
            parts.append(
                payload if isinstance(payload, memoryview)
                else memoryview(payload)
            )
    if pending:
        parts.append(bytes(pending))
    if parts:
        send_parts(sock, parts)


def write_traced_frames(sock: socket.socket, entries: list) -> None:
    """``write_frames`` for a traced connection: ``entries`` are
    ``(payload, trace_id, stamp_ns)`` triples and every frame carries the
    16-byte observability prefix."""
    parts: list = []
    pending = bytearray()
    for payload, trace_id, stamp_ns in entries:
        if isinstance(payload, memoryview) and payload.itemsize != 1:
            payload = payload.cast("B")
        size = len(payload)
        head = _LEN.pack(size + TRACE_PREFIX) + _TRACE.pack(trace_id, stamp_ns)
        if size <= SMALL_FRAME:
            pending += head
            pending += payload
        else:
            if pending:
                parts.append(bytes(pending))
                pending = bytearray()
            parts.append(head)
            parts.append(
                payload if isinstance(payload, memoryview)
                else memoryview(payload)
            )
    if pending:
        parts.append(bytes(pending))
    if parts:
        send_parts(sock, parts)


def frame_parts(payloads: list) -> list:
    """The encode half of :func:`write_frames`: the iovec list for a
    batch of length-prefixed frames (small payloads coalesced with their
    prefixes, large ones zero-copy).  The reactor write path queues these
    on a link's outgoing buffer instead of sending inline."""
    parts: list = []
    pending = bytearray()
    for payload in payloads:
        if isinstance(payload, memoryview) and payload.itemsize != 1:
            payload = payload.cast("B")
        size = len(payload)
        if size <= SMALL_FRAME:
            pending += _LEN.pack(size)
            pending += payload
        else:
            if pending:
                parts.append(bytes(pending))
                pending = bytearray()
            parts.append(_LEN.pack(size))
            parts.append(
                payload if isinstance(payload, memoryview)
                else memoryview(payload)
            )
    if pending:
        parts.append(bytes(pending))
    return parts


def traced_frame_parts(entries: list) -> list:
    """:func:`frame_parts` for a traced connection (``(payload,
    trace_id, stamp_ns)`` triples, 16-byte prefix inside each frame)."""
    parts: list = []
    pending = bytearray()
    for payload, trace_id, stamp_ns in entries:
        if isinstance(payload, memoryview) and payload.itemsize != 1:
            payload = payload.cast("B")
        size = len(payload)
        head = _LEN.pack(size + TRACE_PREFIX) + _TRACE.pack(trace_id, stamp_ns)
        if size <= SMALL_FRAME:
            pending += head
            pending += payload
        else:
            if pending:
                parts.append(bytes(pending))
                pending = bytearray()
            parts.append(head)
            parts.append(
                payload if isinstance(payload, memoryview)
                else memoryview(payload)
            )
    if pending:
        parts.append(bytes(pending))
    return parts


def quiet_close(sock) -> None:
    """Close a socket absorbing every teardown error.

    Interpreter shutdown races (daemon send loops closing sockets while
    the socket module is being torn down) can surface odd exceptions from
    ``close``; link teardown must be idempotent and exception-free."""
    if sock is None:
        return
    try:
        sock.close()
    except Exception:
        pass


def read_traced_frame(sock: socket.socket) -> tuple[bytearray, int, int]:
    """Read one traced frame: ``(payload, trace_id, stamp_ns)``.

    The prefix is read separately so the payload lands in an exactly
    sized buffer -- no slicing copy on the hot receive path.
    """
    while True:
        (length,) = _LEN.unpack(bytes(read_exact(sock, 4)))
        if length != KEEPALIVE_WORD:
            break
    if length > MAX_FRAME:
        raise ConnectionHandshakeError(f"frame length {length} exceeds limit")
    if length < TRACE_PREFIX:
        raise ConnectionHandshakeError(
            f"traced frame of {length} bytes cannot carry its prefix"
        )
    trace_id, stamp_ns = _TRACE.unpack(bytes(read_exact(sock, TRACE_PREFIX)))
    return read_exact(sock, length - TRACE_PREFIX), trace_id, stamp_ns


def exchange_header_as_client(
    sock: socket.socket, fields: dict[str, str]
) -> dict[str, str]:
    """Subscriber side of the handshake: send ours, read the reply."""
    write_frame(sock, encode_header(fields))
    reply = decode_header(bytes(read_frame(sock)))
    if "error" in reply:
        raise ConnectionHandshakeError(reply["error"])
    return reply


def connect_subscriber(
    host: str, port: int, fields: dict[str, str], timeout: float = 10.0
) -> tuple[socket.socket, dict[str, str]]:
    """Open a data connection to a publisher and run the handshake."""
    sock = open_connection(host, port, timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    except OSError:
        # A routed (multiplexed) connection hands back a socketpair
        # endpoint; TCP options don't apply to it.
        pass
    sock = wrap_socket(sock, "tcpros", role="subscriber",
                       topic=fields.get("topic", ""))
    try:
        reply = exchange_header_as_client(sock, fields)
    except Exception:
        sock.close()
        raise
    sock.settimeout(None)
    return sock, reply


class TcpRosServer:
    """The publisher-side data server: accepts subscriber connections,
    reads their handshake header and hands the socket to a dispatcher."""

    def __init__(
        self,
        dispatcher: Callable[[socket.socket, dict[str, str]], None],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._dispatcher = dispatcher
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(256)
        self.host, self.port = self._listener.getsockname()
        self._closed = threading.Event()
        self._thread = None
        self._acceptor = None
        from repro.ros import reactor as _reactor

        if _reactor.reactor_enabled():
            loop = _reactor.global_reactor()
            self._acceptor = _reactor.AcceptorLink(
                self._listener,
                self._on_accept,
                reactor=loop,
                label=f"tcpros:{self.port}",
            )
            self._acceptor.start()
        else:
            self._thread = threading.Thread(
                target=self._accept_loop, daemon=True,
                name=f"tcpros:{self.port}"
            )
            self._thread.start()

    def _on_accept(self, sock: socket.socket, _addr) -> None:
        # Reactor path: the accept happened on the loop thread; the
        # handshake may block for seconds, so it rides a transient spawn.
        sock.setblocking(True)
        from repro.ros.reactor import global_reactor

        global_reactor().spawn_blocking(
            lambda: self._handshake(sock), name=f"tcpros-hs:{self.port}"
        )

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                break
            threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            ).start()

    def _handshake(self, sock: socket.socket) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
            sock.settimeout(10.0)
            header = decode_header(bytes(read_frame(sock)))
            sock.settimeout(None)
            sock = wrap_socket(sock, "tcpros", role="publisher",
                               topic=header.get("topic", ""))
            self._dispatcher(sock, header)
        except Exception:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            if self._acceptor is not None:
                self._acceptor.close()
            quiet_close(self._listener)
            if self._thread is not None:
                self._thread.join(timeout=2.0)


def reject_connection(sock: socket.socket, reason: str) -> None:
    """Answer a handshake with an error header and close."""
    try:
        write_frame(sock, encode_header({"error": reason}))
    except OSError:
        pass
    finally:
        try:
            sock.close()
        except OSError:
            pass
