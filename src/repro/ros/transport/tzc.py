"""TZC-mode partial serialization for remote SFM links.

TZC (Wang et al., PAPERS.md) observes that most of a big message is raw
content -- pixel rows, point buffers -- that a serializer copies byte for
byte anyway.  An SFM buffer makes the split trivial: every content
region is addressable through the same ``(length, offset)`` skeleton
pairs the bridge's field extraction proves out, so a remote link can
ship

- a compact **control segment**: a fixed header, a table of bulk ranges,
  and every byte *not* covered by a range (skeleton scalars, small
  strings, nested pair tables) concatenated in buffer order, and
- one **bulk frame**: the large content ranges sliced straight out of
  the arena as iovecs -- never staged through an intermediate buffer.

The receiver allocates the whole buffer once, replays the gap bytes,
and ``recv_into``\\ s each bulk range directly into its final position;
the reassembled buffer is byte-identical to the classic serialized wire
(``tests/test_tzc_wire_parity.py`` checks all registered types) and is
adopted as an external SFM record without a further copy.

Negotiated per link with a ``tzc=1`` capability flag alongside the
unchanged ``format=sfm`` header field, so either side lacking the code
falls back to classic framing.  ``REPRO_TZC=0`` is the kill switch.

Abuse bounds (the Reassembler lesson from the fragmentation layer): the
control segment's declared sizes are validated *before* any allocation,
the range table is capped, and a per-link :class:`BulkBudget` bounds the
bulk bytes a peer can keep in flight -- a garbage control frame raises
:class:`~repro.ros.exceptions.ConnectionHandshakeError` and tears the
link down through the ordinary downgrade ladder instead of wedging it.
"""

from __future__ import annotations

import os
import struct
from typing import Optional

from repro.ros.exceptions import ConnectionHandshakeError
from repro.ros.transport.tcpros import (
    KEEPALIVE_WORD,
    MAX_FRAME,
    TRACE_PREFIX,
    read_exact,
    read_exact_into,
    send_parts,
)
from repro.sfm.layout import SkeletonLayout, bulk_regions

_LEN = struct.Struct("<I")
_TRACE = struct.Struct("<QQ")

#: Control segment header: magic, byte order code, flags, range count,
#: whole-buffer size.  The range table (start:u32, len:u32 each) and the
#: gap bytes follow immediately.
CONTROL_MAGIC = 0x315A4354  # "TZC1" when read little-endian
_CONTROL = struct.Struct("<IBBHI")
_RANGE = struct.Struct("<II")

#: Content ranges below this ride in the control segment: a range costs
#: a table entry plus a scatter read, which only pays off in bulk.
MIN_BULK = 512

#: Hard cap on the range table (a 6 MB image has a handful of ranges; a
#: control frame claiming thousands is garbage, not a message).
MAX_RANGES = 4096

#: Default per-link bulk budget, mirroring the transport's frame cap.
MAX_PENDING_BULK = MAX_FRAME

_ORDER_CODE = {"<": 0, ">": 1}
_CODE_ORDER = {0: "<", 1: ">"}


def tzc_enabled() -> bool:
    """True unless ``REPRO_TZC=0`` (the kill switch)."""
    from repro import config

    return config.tzc()


class TzcParts:
    """One message split for the wire: control segment + bulk iovecs."""

    __slots__ = ("control", "bulk", "bulk_len")

    def __init__(self, control: bytes, bulk: list, bulk_len: int) -> None:
        self.control = control
        self.bulk = bulk
        self.bulk_len = bulk_len

    def __len__(self) -> int:
        """Total payload bytes (both frames), for batching accounting."""
        return len(self.control) + self.bulk_len


def split_message(
    layout: SkeletonLayout,
    buffer,
    whole_size: int,
    byte_order: str = "<",
    min_bulk: int = MIN_BULK,
) -> TzcParts:
    """Split an SFM buffer into control segment + bulk ranges.

    The bulk list holds zero-copy memoryviews into ``buffer``; callers
    must send (or copy) them before the buffer is reused.
    """
    if byte_order not in _ORDER_CODE:
        raise ValueError(f"unknown byte order {byte_order!r}")
    regions = bulk_regions(
        layout, buffer, whole_size, order=byte_order, min_bytes=min_bulk
    )
    if len(regions) > MAX_RANGES:
        # Degenerate layout: keep the largest ranges, fold the rest into
        # the control segment (correct either way).
        regions = sorted(
            sorted(regions, key=lambda r: r[0] - r[1])[:MAX_RANGES]
        )
    view = memoryview(buffer)
    control = bytearray(
        _CONTROL.pack(
            CONTROL_MAGIC,
            _ORDER_CODE[byte_order],
            0,
            len(regions),
            whole_size,
        )
    )
    for start, end in regions:
        control += _RANGE.pack(start, end - start)
    bulk: list = []
    bulk_len = 0
    cursor = 0
    for start, end in regions:
        if start > cursor:
            control += view[cursor:start]
        bulk.append(view[start:end])
        bulk_len += end - start
        cursor = end
    if cursor < whole_size:
        control += view[cursor:whole_size]
    return TzcParts(bytes(control), bulk, bulk_len)


def parse_control(
    control, max_whole: int = MAX_FRAME
) -> tuple[int, str, list[tuple[int, int]]]:
    """Validate a control segment; returns (whole_size, order, ranges).

    Every declared size is checked before the caller allocates anything:
    magic, byte-order code, range-table bounds (count cap, in-bounds,
    sorted, non-overlapping) and gap-byte arithmetic (the control length
    must equal header + table + exactly the uncovered bytes).
    """
    if len(control) < _CONTROL.size:
        raise ConnectionHandshakeError("tzc control segment truncated")
    magic, order_code, _flags, n_ranges, whole_size = _CONTROL.unpack_from(
        control, 0
    )
    if magic != CONTROL_MAGIC:
        raise ConnectionHandshakeError(
            f"bad tzc control magic {magic:#x}"
        )
    order = _CODE_ORDER.get(order_code)
    if order is None:
        raise ConnectionHandshakeError(
            f"unknown tzc byte-order code {order_code}"
        )
    if whole_size > max_whole:
        raise ConnectionHandshakeError(
            f"tzc message of {whole_size} bytes exceeds limit"
        )
    if n_ranges > MAX_RANGES:
        raise ConnectionHandshakeError(
            f"tzc range table of {n_ranges} entries exceeds limit"
        )
    table_end = _CONTROL.size + n_ranges * _RANGE.size
    if len(control) < table_end:
        raise ConnectionHandshakeError("tzc range table truncated")
    ranges: list[tuple[int, int]] = []
    bulk_len = 0
    cursor = 0
    for index in range(n_ranges):
        start, length = _RANGE.unpack_from(
            control, _CONTROL.size + index * _RANGE.size
        )
        if length == 0 or start < cursor or start + length > whole_size:
            raise ConnectionHandshakeError(
                f"tzc range [{start}, +{length}) is out of order or out "
                f"of bounds for a {whole_size}-byte message"
            )
        ranges.append((start, length))
        bulk_len += length
        cursor = start + length
    if len(control) - table_end != whole_size - bulk_len:
        raise ConnectionHandshakeError(
            f"tzc gap bytes mismatch: control carries "
            f"{len(control) - table_end}, layout needs "
            f"{whole_size - bulk_len}"
        )
    return whole_size, order, ranges


def begin_reassembly(
    control, ranges: list[tuple[int, int]], whole_size: int
) -> bytearray:
    """Allocate the destination buffer and replay the gap bytes; the
    caller then fills each range (``recv_into``) in place."""
    buffer = bytearray(whole_size)
    view = memoryview(buffer)
    gaps = memoryview(control)[_CONTROL.size + len(ranges) * _RANGE.size :]
    taken = 0
    cursor = 0
    for start, length in ranges:
        if start > cursor:
            gap = start - cursor
            view[cursor:start] = gaps[taken : taken + gap]
            taken += gap
        cursor = start + length
    if cursor < whole_size:
        view[cursor:whole_size] = gaps[taken:]
    return buffer


class BulkBudget:
    """Per-link bound on in-flight bulk bytes (the Reassembler lesson:
    never let a peer's declared sizes drive unbounded buffering)."""

    __slots__ = ("limit", "pending", "rejected")

    def __init__(self, limit: int = MAX_PENDING_BULK) -> None:
        self.limit = limit
        self.pending = 0
        self.rejected = 0

    def charge(self, nbytes: int) -> None:
        if self.pending + nbytes > self.limit:
            self.rejected += 1
            raise ConnectionHandshakeError(
                f"tzc bulk budget exceeded: {self.pending} pending + "
                f"{nbytes} requested > {self.limit} limit"
            )
        self.pending += nbytes

    def release(self, nbytes: int) -> None:
        self.pending = max(0, self.pending - nbytes)


# ----------------------------------------------------------------------
# Wire helpers (both frames are ordinary u32-length framing)
# ----------------------------------------------------------------------
def send_split(
    sock,
    parts: TzcParts,
    trace_id: int = 0,
    stamp_ns: int = 0,
    traced: bool = False,
) -> None:
    """Send one split message: control frame then bulk frame, one
    vectored syscall, the bulk ranges as iovecs (zero staging copy).
    Only the control frame carries the trace prefix on traced links."""
    iov: list = []
    if traced:
        iov.append(
            _LEN.pack(len(parts.control) + TRACE_PREFIX)
            + _TRACE.pack(trace_id, stamp_ns)
            + parts.control
        )
    else:
        iov.append(_LEN.pack(len(parts.control)) + parts.control)
    iov.append(_LEN.pack(parts.bulk_len))
    iov.extend(parts.bulk)
    send_parts(sock, iov)


def send_split_batch(sock, entries: list, traced: bool = False) -> None:
    """Flush several ``(parts, trace_id, stamp_ns)`` splits in one
    vectored send (the TZC face of doorbell batching)."""
    iov = split_batch_parts(entries, traced)
    if iov:
        send_parts(sock, iov)


def split_batch_parts(entries: list, traced: bool = False) -> list:
    """The encode half of :func:`send_split_batch`: the iovec list for a
    batch of ``(parts, trace_id, stamp_ns)`` splits.  The reactor write
    path queues these on the link's outgoing buffer.

    The bulk entries stay zero-copy views into the publisher's arena;
    the caller's flush callback must hold the payload alive until the
    bytes leave the process (``_Outgoing.done`` semantics)."""
    iov: list = []
    for parts, trace_id, stamp_ns in entries:
        if traced:
            iov.append(
                _LEN.pack(len(parts.control) + TRACE_PREFIX)
                + _TRACE.pack(trace_id, stamp_ns)
                + parts.control
            )
        else:
            iov.append(_LEN.pack(len(parts.control)) + parts.control)
        iov.append(_LEN.pack(parts.bulk_len))
        iov.extend(parts.bulk)
    return iov


def read_split(
    sock,
    budget: Optional[BulkBudget] = None,
    traced: bool = False,
) -> tuple[bytearray, str, int, int]:
    """Receive one split message; returns
    ``(buffer, byte_order, trace_id, stamp_ns)``.

    The buffer is freshly reassembled -- gap bytes from the control
    frame, bulk ranges received directly into place -- and safe for the
    caller to adopt as an SFM record without copying.
    """
    trace_id = stamp_ns = 0
    while True:
        (length,) = _LEN.unpack(bytes(read_exact(sock, 4)))
        if length != KEEPALIVE_WORD:
            break
    if length > MAX_FRAME:
        raise ConnectionHandshakeError(f"frame length {length} exceeds limit")
    if traced:
        if length < TRACE_PREFIX:
            raise ConnectionHandshakeError(
                "tzc control frame cannot carry its trace prefix"
            )
        trace_id, stamp_ns = _TRACE.unpack(
            bytes(read_exact(sock, TRACE_PREFIX))
        )
        length -= TRACE_PREFIX
    control = read_exact(sock, length)
    whole_size, order, ranges = parse_control(control)
    bulk_len = sum(length for _start, length in ranges)
    if budget is not None:
        budget.charge(bulk_len)
    try:
        while True:
            (declared,) = _LEN.unpack(bytes(read_exact(sock, 4)))
            if declared != KEEPALIVE_WORD:
                break
        if declared != bulk_len:
            raise ConnectionHandshakeError(
                f"tzc bulk frame of {declared} bytes does not match the "
                f"control segment's {bulk_len}"
            )
        buffer = begin_reassembly(control, ranges, whole_size)
        view = memoryview(buffer)
        for start, length in ranges:
            read_exact_into(sock, view[start : start + length])
    finally:
        if budget is not None:
            budget.release(bulk_len)
    return buffer, order, trace_id, stamp_ns


class SplitDecoder:
    """Incremental TZC reassembly for the reactor's non-blocking reads.

    Replicates :func:`read_split`'s state machine -- control frame
    (keepalive words skipped, trace prefix honoured), ``parse_control``
    validation before any allocation, budget charge, bulk-length check,
    then the ranges filled in place as bytes arrive.  ``feed(chunk)``
    returns completed ``("message", buffer, order, trace_id, stamp_ns)``
    events.  Unlike the blocking path's ``recv_into`` the bulk bytes pay
    one staging copy out of the read buffer; the reassembled buffer is
    still adopted without a further copy.
    """

    __slots__ = ("budget", "traced", "_head", "_state", "_control_len",
                 "_control", "_filled", "_trace_id", "_stamp_ns",
                 "_buffer", "_view", "_ranges", "_order", "_bulk_len",
                 "_range_idx", "_range_off")

    def __init__(self, budget: Optional[BulkBudget] = None,
                 traced: bool = False) -> None:
        self.budget = budget
        self.traced = traced
        self._head = bytearray()
        self._state = "ctrl_len"
        self._control_len = 0
        self._control: Optional[bytearray] = None
        self._filled = 0
        self._trace_id = 0
        self._stamp_ns = 0
        self._buffer: Optional[bytearray] = None
        self._view: Optional[memoryview] = None
        self._ranges: list = []
        self._order = "<"
        self._bulk_len = 0
        self._range_idx = 0
        self._range_off = 0

    def _take_head(self, view, pos: int, end: int, need: int) -> int:
        take = min(need - len(self._head), end - pos)
        self._head += view[pos : pos + take]
        return pos + take

    def feed(self, data) -> list:
        events: list = []
        view = memoryview(data)
        pos = 0
        end = len(view)
        while pos < end:
            state = self._state
            if state == "ctrl_len":
                pos = self._take_head(view, pos, end, 4)
                if len(self._head) < 4:
                    break
                (length,) = _LEN.unpack(self._head)
                del self._head[:]
                if length == KEEPALIVE_WORD:
                    continue
                if length > MAX_FRAME:
                    raise ConnectionHandshakeError(
                        f"frame length {length} exceeds limit"
                    )
                if self.traced:
                    if length < TRACE_PREFIX:
                        raise ConnectionHandshakeError(
                            "tzc control frame cannot carry its trace prefix"
                        )
                    self._control_len = length - TRACE_PREFIX
                    self._state = "ctrl_trace"
                else:
                    self._trace_id = self._stamp_ns = 0
                    self._control_len = length
                    self._control = bytearray(length)
                    self._filled = 0
                    self._state = "ctrl_body"
            elif state == "ctrl_trace":
                pos = self._take_head(view, pos, end, TRACE_PREFIX)
                if len(self._head) < TRACE_PREFIX:
                    break
                self._trace_id, self._stamp_ns = _TRACE.unpack(self._head)
                del self._head[:]
                self._control = bytearray(self._control_len)
                self._filled = 0
                self._state = "ctrl_body"
            elif state == "ctrl_body":
                need = self._control_len - self._filled
                take = min(need, end - pos)
                self._control[self._filled : self._filled + take] = \
                    view[pos : pos + take]
                self._filled += take
                pos += take
                if self._filled < self._control_len:
                    break
                whole_size, order, ranges = parse_control(self._control)
                self._order = order
                self._ranges = ranges
                self._bulk_len = sum(length for _s, length in ranges)
                if self.budget is not None:
                    self.budget.charge(self._bulk_len)
                self._buffer = begin_reassembly(
                    self._control, ranges, whole_size
                )
                self._view = memoryview(self._buffer)
                self._control = None
                self._state = "bulk_len"
            elif state == "bulk_len":
                pos = self._take_head(view, pos, end, 4)
                if len(self._head) < 4:
                    break
                (declared,) = _LEN.unpack(self._head)
                del self._head[:]
                if declared == KEEPALIVE_WORD:
                    continue
                if declared != self._bulk_len:
                    raise ConnectionHandshakeError(
                        f"tzc bulk frame of {declared} bytes does not "
                        f"match the control segment's {self._bulk_len}"
                    )
                self._range_idx = 0
                self._range_off = 0
                self._state = "bulk"
                if not self._ranges:
                    events.append(self._complete())
            elif state == "bulk":
                start, length = self._ranges[self._range_idx]
                need = length - self._range_off
                take = min(need, end - pos)
                at = start + self._range_off
                self._view[at : at + take] = view[pos : pos + take]
                self._range_off += take
                pos += take
                if self._range_off == length:
                    self._range_idx += 1
                    self._range_off = 0
                    if self._range_idx == len(self._ranges):
                        events.append(self._complete())
        return events

    def _complete(self) -> tuple:
        if self.budget is not None:
            self.budget.release(self._bulk_len)
        buffer = self._buffer
        self._view = None
        self._buffer = None
        self._ranges = []
        self._state = "ctrl_len"
        return ("message", buffer, self._order, self._trace_id,
                self._stamp_ns)
