"""ROS-SF: the serialization-free middleware profile.

Gluing the pieces together (paper Section 4.3):

- the **SFM Generator** (:mod:`repro.sfm.generator`) produced message
  classes whose instances are their own wire buffers;
- the **ROS-SF Library** (:mod:`repro.sfm`) provides ``sfm`` string/vector
  views and the message manager;
- this package provides the **overloaded (de)serialization routines**
  (:class:`~repro.rossf.serializer.SfmCodec`) that the topic layer picks
  up automatically for SFM classes, and :mod:`repro.rossf.framework`, the
  user-facing switch: ``sfm_classes_for(...)`` / ``messages(...)`` hand
  application code SFM variants of its message classes so existing
  pub/sub code runs serialization-free without modification.

The **ROS-SF Converter** (the compile-time component) lives in
:mod:`repro.converter`.
"""

from repro.rossf.framework import enable_for_types, messages, sfm_classes_for
from repro.rossf.serializer import SfmCodec
from repro.rossf.diagnostics import ManagerReport, find_leaks, report

__all__ = [
    "ManagerReport",
    "SfmCodec",
    "enable_for_types",
    "find_leaks",
    "messages",
    "report",
    "sfm_classes_for",
]
