"""Operational diagnostics for the ROS-SF runtime.

``report()`` summarizes the global message manager's state -- live
records per type and state, lifetime counters, pool occupancy -- the kind
of introspection an operator reaches for when chasing a leaked buffer
pointer or sizing IDL capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.sfm.manager import MessageManager, global_message_manager


@dataclass
class ManagerReport:
    """A point-in-time snapshot of one message manager."""

    live_records: int
    live_by_type: dict = dataclass_field(default_factory=dict)
    live_by_state: dict = dataclass_field(default_factory=dict)
    live_bytes: int = 0
    live_capacity_bytes: int = 0
    pool_buffers: int = 0
    pool_bytes: int = 0
    counters: dict = dataclass_field(default_factory=dict)
    slabs: dict = dataclass_field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"live records: {self.live_records} "
            f"({self.live_bytes} used / {self.live_capacity_bytes} reserved bytes)",
        ]
        for type_name, count in sorted(self.live_by_type.items()):
            lines.append(f"  {type_name}: {count}")
        lines.append(
            "states: "
            + ", ".join(
                f"{state}={count}"
                for state, count in sorted(self.live_by_state.items())
            )
        )
        lines.append(
            f"pool: {self.pool_buffers} recycled buffers "
            f"({self.pool_bytes} bytes)"
        )
        if self.slabs:
            lines.append(
                "slabs: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.slabs.items())
                )
            )
        lines.append(
            "lifetime: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        )
        return "\n".join(lines)


def report(manager: Optional[MessageManager] = None) -> ManagerReport:
    """Snapshot ``manager`` (the global one by default) via its public
    :meth:`~repro.sfm.manager.MessageManager.snapshot` API."""
    manager = manager or global_message_manager
    return ManagerReport(**manager.snapshot())


def find_leaks(manager: Optional[MessageManager] = None,
               expected_live: int = 0) -> list:
    """Records still live beyond ``expected_live`` -- candidates for a
    leaked buffer pointer (a transport that never released, a callback
    that stashed a message forever)."""
    manager = manager or global_message_manager
    records = manager.live_records()
    if len(records) <= expected_live:
        return []
    return sorted(records, key=lambda record: record.record_id)
