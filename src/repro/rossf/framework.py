"""The user-facing ROS-SF switch.

The paper's framework is applied by regenerating message headers (SFM
Generator) and letting the converter adjust user sources; the compiled
program then runs serialization-free under the unchanged ROS API.  The
Python equivalent: application code obtains its message classes through
this module instead of :mod:`repro.msg.library` -- one import line, which
:mod:`repro.converter.rewriter` can change automatically -- and everything
else (construction, field access, ``advertise``/``publish``/``subscribe``)
stays byte-for-byte identical.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional

from repro.msg.registry import TypeRegistry, default_registry
from repro.sfm.generator import generate_sfm_class


def sfm_classes_for(
    *type_names: str, registry: Optional[TypeRegistry] = None
) -> list[type]:
    """SFM message classes for the given full type names.

    >>> Image, = sfm_classes_for("sensor_msgs/Image")  # doctest: +SKIP
    """
    if registry is None:
        import repro.msg.library  # noqa: F401  (registers the library)

        registry = default_registry
    return [generate_sfm_class(name, registry) for name in type_names]


def enable_for_types(
    *type_names: str, registry: Optional[TypeRegistry] = None
) -> dict[str, type]:
    """SFM classes keyed by short name, for namespace injection::

        globals().update(enable_for_types("sensor_msgs/Image"))
    """
    registry = registry or default_registry
    return {
        name.rsplit("/", 1)[-1]: generate_sfm_class(name, registry)
        for name in type_names
    }


def messages(registry: Optional[TypeRegistry] = None) -> SimpleNamespace:
    """An ``sfm`` mirror of :mod:`repro.msg.library`: every library type
    as an SFM class, attribute-addressable by short name.

    >>> sfm = messages()  # doctest: +SKIP
    >>> img = sfm.Image(height=480, width=640)  # doctest: +SKIP
    """
    from repro.msg.library import DEFINITIONS

    registry = registry or default_registry
    return SimpleNamespace(
        **{
            full_name.rsplit("/", 1)[-1]: generate_sfm_class(full_name, registry)
            for full_name in DEFINITIONS
        }
    )
