"""The dummy (de)serialization routines of ROS-SF (paper Section 4.3.1).

``SfmCodec.encode`` replaces the generated serializer: instead of walking
the message and packing bytes, it transitions the message to *Published*
and hands the transport a counted buffer pointer whose memoryview IS the
wire payload (Fig. 8).  ``SfmCodec.decode`` replaces the generated
de-serializer: the received buffer is adopted by the message manager and
wrapped -- zero copies (Fig. 9).
"""

from __future__ import annotations

from repro.ros.codecs import MessageCodec
from repro.sfm.message import SFMMessage


class SfmCodec(MessageCodec):
    """Serialization-free codec for SFM message classes."""

    format_name = "sfm"

    def __init__(self, msg_class: type) -> None:
        if not (isinstance(msg_class, type) and issubclass(msg_class, SFMMessage)):
            raise TypeError(
                f"SfmCodec requires an SFM message class, got {msg_class!r}"
            )
        self.msg_class = msg_class
        self.type_name = msg_class._layout.type_name

    def encode(self, msg):
        if not isinstance(msg, SFMMessage):
            raise TypeError(
                f"publishing a non-SFM message on an SFM topic "
                f"({type(msg).__name__}); run the ROS-SF Converter on the "
                "publisher code"
            )
        pointer = msg.publish_pointer()
        return pointer.memoryview(), pointer.release

    def decode(self, buffer: bytearray):
        return self.msg_class.from_buffer(buffer)

    def decode_adopted(self, buffer: bytearray, byte_order: str = "<"):
        """Adopt a TZC-reassembled buffer.  The reassembly allocated the
        bytearray fresh (gap bytes replayed, bulk ranges received in
        place), so the message takes ownership without a copy; a foreign
        publisher's byte order converts in place once (Section 4.4.1)."""
        return self.msg_class.from_buffer(buffer, byte_order=byte_order)

    def decode_external(self, view: memoryview):
        """Adopt a shared-memory slot view zero-copy: field access in the
        subscriber callback reads the publisher's bytes in place; the
        first write -- or slot reclamation -- copies out (Section 4.3.1's
        dummy de-serialization, extended to borrowed memory)."""
        return self.msg_class.adopt_external(view)
