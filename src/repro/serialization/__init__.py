"""Wire formats: the ROS baseline and the Fig. 14 comparators.

- :mod:`repro.serialization.rosser` -- the ROS1 wire format (little-endian,
  length-prefixed strings/arrays), the baseline that ROS-SF eliminates.
- :mod:`repro.serialization.protobuf` -- a Protocol-Buffers-like format
  (varints, tag/length/value) standing in for ProtoBuf in Fig. 14.
- :mod:`repro.serialization.flatbuffer` -- a FlatBuffer-like format with
  the vtable layout of the paper's Fig. 6, usable both as a conventional
  serializer and serialization-free (zero-copy access).
- :mod:`repro.serialization.xcdr2` -- an XCDR2/FlatData-like format with
  the EMHEADER parameter-list layout of the paper's Fig. 5, likewise
  usable serialization-free.
- :mod:`repro.serialization.endian` -- byte-order utilities shared by the
  formats and by SFM's subscriber-side endianness conversion.
"""

from repro.serialization.base import WireFormat, registry_of_formats
from repro.serialization.rosser import ROSSerializer

__all__ = ["WireFormat", "ROSSerializer", "registry_of_formats"]
