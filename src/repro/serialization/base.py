"""Common interface implemented by every wire format.

The Fig. 14 benchmark drives seven "middlewares" through one loop; this
interface is the seam that makes them interchangeable.  Serialization-free
formats additionally implement :meth:`WireFormat.wrap`, which turns a
received buffer into an accessor object *without copying* -- the defining
operation of FlatData, FlatBuffer and SFM.
"""

from __future__ import annotations

from typing import Optional

from repro.msg.registry import TypeRegistry, default_registry


class WireFormat:
    """A (de)serialization scheme for generated messages."""

    #: Human-readable name used in benchmark output rows.
    name: str = "abstract"

    #: True when :meth:`wrap` provides zero-copy access to a received
    #: buffer (i.e. the format is serialization-free).
    serialization_free: bool = False

    def __init__(self, registry: Optional[TypeRegistry] = None) -> None:
        self.registry = registry or default_registry

    def serialize(self, msg) -> bytes:
        """Convert a message object into a contiguous wire buffer."""
        raise NotImplementedError

    def deserialize(self, type_name: str, buffer):
        """Convert a wire buffer back into a message object (copying)."""
        raise NotImplementedError

    def wrap(self, type_name: str, buffer):
        """Zero-copy accessor over ``buffer`` (serialization-free formats
        only).  Raises :class:`NotImplementedError` otherwise."""
        raise NotImplementedError(
            f"{self.name} is not a serialization-free format"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WireFormat {self.name}>"


def registry_of_formats(registry: Optional[TypeRegistry] = None) -> dict:
    """Instantiate every built-in wire format, keyed by display name.

    Mirrors the seven bars of the paper's Fig. 14 (ROS-SF is provided by
    :mod:`repro.rossf` since it needs the life-cycle manager, and is added
    by the benchmark harness).
    """
    from repro.serialization.flatbuffer import FlatBufferFormat
    from repro.serialization.protobuf import ProtoBufFormat
    from repro.serialization.rosser import ROSSerializer
    from repro.serialization.xcdr2 import XCDR2Format

    formats = [
        ROSSerializer(registry),
        ProtoBufFormat(registry),
        FlatBufferFormat(registry),
        XCDR2Format(registry),
    ]
    return {fmt.name: fmt for fmt in formats}
