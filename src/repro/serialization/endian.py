"""Byte-order utilities.

ROS's wire format is little-endian; SFM messages travel in the *publisher's*
native byte order and the subscriber converts when it differs (paper
Section 4.4.1).  These helpers centralize the two byte-order markers and
in-place swapping of typed regions, shared by the serializers and by
:func:`repro.sfm.layout.convert_endianness`.
"""

from __future__ import annotations

import sys

LITTLE = "<"
BIG = ">"

#: The byte-order marker of the host running this process.
NATIVE = LITTLE if sys.byteorder == "little" else BIG


def opposite(order: str) -> str:
    """The other byte-order marker.

    >>> opposite(LITTLE)
    '>'
    """
    if order == LITTLE:
        return BIG
    if order == BIG:
        return LITTLE
    raise ValueError(f"bad byte-order marker {order!r}")


def swap_region(buffer: bytearray, offset: int, item_size: int, count: int) -> None:
    """Reverse the byte order of ``count`` items of ``item_size`` bytes
    starting at ``offset``, in place.

    Single-byte items are left untouched.  This is the primitive that the
    SFM subscriber-side conversion is built from.
    """
    if item_size == 1 or count == 0:
        return
    end = offset + item_size * count
    if end > len(buffer):
        raise ValueError("swap_region out of bounds")
    view = memoryview(buffer)[offset:end]
    # numpy-free in-place swap: slice assignment per byte lane.
    chunk = bytes(view)
    swapped = bytearray(len(chunk))
    for lane in range(item_size):
        swapped[lane::item_size] = chunk[item_size - 1 - lane :: item_size]
    view[:] = swapped


def swap_scalar(buffer: bytearray, offset: int, size: int) -> None:
    """Reverse the byte order of one ``size``-byte scalar at ``offset``."""
    swap_region(buffer, offset, size, 1)
