"""A FlatBuffer-like format (the "FlatBuf" bar of Fig. 14).

Reproduces the layout of the paper's Fig. 6:

- the buffer starts with a 32-bit absolute offset to the *root table*;
- a *vtable* precedes each table: ``u16 vtable_size``, ``u16 inline_size``,
  then one ``u16`` per field giving its offset from the table start
  (0 = field absent, default value applies);
- a *table* starts with an ``i32`` back-offset to its vtable, followed by
  inline data: scalars in place, reference fields as ``u32`` forward
  offsets (from the slot) to heap data;
- heap data: strings are ``u32 length + bytes + NUL``, scalar vectors are
  ``u32 count + packed values``, table vectors are ``u32 count`` plus one
  forward offset per element, nested messages are tables.

As the paper notes (Section 3.3), values "can only be found indirectly
from the vtable", so access requires interfaces -- reproduced by
:class:`TableView` -- and construction requires a *Builder*
(:class:`FlatBufferBuilder`), which is exactly the transparency cost
ROS-SF avoids.  The zero-copy :meth:`FlatBufferFormat.wrap` makes this the
serialization-free comparator in the Fig. 14 harness.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    MapType,
    PrimitiveType,
    StringType,
)
from repro.msg.generator import default_for_type, generate_message_class
from repro.msg.idl import MessageSpec
from repro.msg.registry import TypeRegistry
from repro.serialization.base import WireFormat

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I32 = struct.Struct("<i")

_BYTE_NAMES = ("uint8", "char")


def _slot_size(ftype) -> int:
    """Inline size of one table slot."""
    if isinstance(ftype, PrimitiveType):
        return 8 if ftype.is_time else ftype.size
    return 4  # reference slot


def _is_ref(ftype) -> bool:
    return not isinstance(ftype, PrimitiveType)


class FlatBufferBuildError(ValueError):
    """Raised on unsupported constructs or bad builder usage."""


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
class FlatBufferBuilder:
    """Builder-pattern message construction (the paper's Fig. 4 style).

    Usage::

        builder = FlatBufferBuilder(registry, "rossf_bench/SimpleImage")
        builder.add("encoding", "rgb8")
        builder.add("height", 10)
        builder.add("width", 10)
        builder.add("data", bytes(300))
        wire = builder.finish()
    """

    def __init__(self, registry: TypeRegistry, type_name: str) -> None:
        self.registry = registry
        self.spec = registry.get(type_name)
        self._values: dict[str, object] = {}
        self._finished: Optional[bytes] = None

    def add(self, field_name: str, value) -> "FlatBufferBuilder":
        if self._finished is not None:
            raise FlatBufferBuildError("builder already finished")
        self.spec.field(field_name)  # raises KeyError on bad names
        self._values[field_name] = value
        return self

    # The FlatData/FlatBuffer-flavoured spellings used in the paper's
    # program patterns:
    build_string = add
    create_vector = add
    add_scalar = add

    def finish(self) -> bytes:
        """Emit the wire buffer (``finish_sample`` in the Fig. 4 API)."""
        if self._finished is None:
            blob, table_offset = _emit_table(
                self.registry, self.spec, self._values
            )
            out = bytearray()
            out += _U32.pack(4 + table_offset)  # absolute root table offset
            out += blob
            self._finished = bytes(out)
        return self._finished


def _emit_table(
    registry: TypeRegistry, spec: MessageSpec, values
) -> tuple[bytes, int]:
    """Emit ``[vtable][table][heap]`` for one table; all internal offsets
    are relative, so the blob can be embedded anywhere.  Returns the blob
    and the table's offset within it (i.e. the vtable size)."""
    fields = spec.fields
    vtable_size = 4 + 2 * len(fields)

    # Assign inline slots.
    slot_offsets: list[int] = []
    inline_cursor = 4  # after the i32 back-offset
    for field in fields:
        slot_offsets.append(inline_cursor)
        inline_cursor += _slot_size(field.type)
    inline_size = inline_cursor
    table_start = vtable_size
    heap_start = table_start + inline_size

    vtable = bytearray()
    vtable += _U16.pack(vtable_size)
    vtable += _U16.pack(inline_size)
    for slot in slot_offsets:
        vtable += _U16.pack(slot)

    table = bytearray(inline_size)
    _I32.pack_into(table, 0, table_start)  # back-offset: vtable = table - value

    heap = bytearray()
    for field, slot in zip(fields, slot_offsets):
        value = _value_of(values, field, registry)
        ftype = field.type
        abs_slot = table_start + slot
        if isinstance(ftype, PrimitiveType):
            _pack_scalar(table, slot, ftype, value)
            continue
        blob_start = heap_start + len(heap)
        entry, target_offset = _emit_heap_entry(registry, ftype, value, blob_start)
        _U32.pack_into(table, slot, blob_start + target_offset - abs_slot)
        heap += entry
    return bytes(vtable + table + heap), table_start


def _value_of(values, field, registry):
    if isinstance(values, dict):
        if field.name in values:
            return values[field.name]
        return default_for_type(field.type, registry)
    return getattr(values, field.name)


def _pack_scalar(table: bytearray, slot: int, prim: PrimitiveType, value) -> None:
    if prim.is_time:
        secs, nsecs = value
        struct.pack_into("<" + prim.struct_fmt, table, slot, secs, nsecs)
    else:
        struct.pack_into("<" + prim.struct_fmt, table, slot, value)


def _emit_heap_entry(registry, ftype, value, base: int) -> tuple[bytes, int]:
    """Emit heap bytes for one reference field whose blob starts at
    ``base``.  Returns ``(blob, target_offset)`` where the slot's forward
    offset must point to ``base + target_offset`` (tables are referenced
    at their table position, past their vtable)."""
    if isinstance(ftype, StringType):
        data = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        body = bytearray(_U32.pack(len(data)))
        body += data
        body += b"\x00"
        while len(body) % 4:
            body += b"\x00"
        return bytes(body), 0
    if isinstance(ftype, ComplexType):
        nested_spec = registry.get(ftype.name)
        return _emit_table(registry, nested_spec, value)
    if isinstance(ftype, ArrayType):
        return _emit_vector(registry, ftype, value, base), 0
    if isinstance(ftype, MapType):
        raise FlatBufferBuildError("map fields are not supported by FlatBuffer mode")
    raise FlatBufferBuildError(f"unsupported heap field type {ftype!r}")


def _emit_vector(registry, ftype: ArrayType, value, base: int) -> bytes:
    element = ftype.element_type
    if isinstance(element, PrimitiveType) and element.name in _BYTE_NAMES:
        data = bytes(value)
        body = bytearray(_U32.pack(len(data)))
        body += data
        while len(body) % 4:
            body += b"\x00"
        return bytes(body)
    if isinstance(element, PrimitiveType) and not element.is_time:
        items = list(value)
        body = bytearray(_U32.pack(len(items)))
        if items:
            body += struct.pack(f"<{len(items)}{element.struct_fmt}", *items)
        while len(body) % 4:
            body += b"\x00"
        return bytes(body)
    if isinstance(element, (ComplexType, StringType)):
        items = list(value)
        count = len(items)
        header = bytearray(_U32.pack(count))
        offsets_pos = base + 4
        blobs: list[bytes] = []
        offsets = bytearray()
        cursor = offsets_pos + 4 * count  # heap area after the offset array
        for index, item in enumerate(items):
            slot_pos = offsets_pos + 4 * index
            if isinstance(element, StringType):
                blob, target_offset = _emit_heap_entry(
                    registry, element, item, cursor
                )
            else:
                blob, target_offset = _emit_table(
                    registry, registry.get(element.name), item
                )
            offsets += _U32.pack(cursor + target_offset - slot_pos)
            blobs.append(blob)
            cursor += len(blob)
        return bytes(header + offsets + b"".join(blobs))
    raise FlatBufferBuildError(f"unsupported vector element {element!r}")


# ----------------------------------------------------------------------
# Zero-copy access
# ----------------------------------------------------------------------
class TableView:
    """Zero-copy accessor over a FlatBuffer table.

    Fields are read through the vtable indirection the paper describes:
    ``view.get("height")`` resolves the slot from the vtable, then reads
    the inline value or follows the forward offset.
    """

    __slots__ = ("registry", "spec", "buffer", "table_pos", "_field_index")

    def __init__(self, registry: TypeRegistry, spec: MessageSpec, buffer,
                 table_pos: int) -> None:
        self.registry = registry
        self.spec = spec
        self.buffer = buffer
        self.table_pos = table_pos
        self._field_index = {f.name: i for i, f in enumerate(spec.fields)}

    @classmethod
    def root(cls, registry: TypeRegistry, type_name: str, buffer) -> "TableView":
        (table_pos,) = _U32.unpack_from(buffer, 0)
        return cls(registry, registry.get(type_name), buffer, table_pos)

    def _slot(self, index: int) -> int:
        (back,) = _I32.unpack_from(self.buffer, self.table_pos)
        vtable_pos = self.table_pos - back
        (slot,) = _U16.unpack_from(self.buffer, vtable_pos + 4 + 2 * index)
        return slot

    def get(self, name: str):
        index = self._field_index[name]
        field = self.spec.fields[index]
        slot = self._slot(index)
        if slot == 0:
            return default_for_type(field.type, self.registry)
        pos = self.table_pos + slot
        ftype = field.type
        if isinstance(ftype, PrimitiveType):
            values = struct.unpack_from("<" + ftype.struct_fmt, self.buffer, pos)
            return values if ftype.is_time else values[0]
        (rel,) = _U32.unpack_from(self.buffer, pos)
        target = pos + rel
        if isinstance(ftype, StringType):
            return self._read_string(target)
        if isinstance(ftype, ComplexType):
            return TableView(
                self.registry, self.registry.get(ftype.name), self.buffer, target
            )
        if isinstance(ftype, ArrayType):
            return self._read_vector(ftype, target)
        raise FlatBufferBuildError(f"unsupported field type {ftype!r}")

    def _read_string(self, pos: int) -> str:
        (length,) = _U32.unpack_from(self.buffer, pos)
        return bytes(self.buffer[pos + 4 : pos + 4 + length]).decode("utf-8")

    def _read_vector(self, ftype: ArrayType, pos: int):
        element = ftype.element_type
        (count,) = _U32.unpack_from(self.buffer, pos)
        if isinstance(element, PrimitiveType) and element.name in _BYTE_NAMES:
            return memoryview(self.buffer)[pos + 4 : pos + 4 + count]
        if isinstance(element, PrimitiveType) and not element.is_time:
            return list(
                struct.unpack_from(f"<{count}{element.struct_fmt}", self.buffer, pos + 4)
            )
        items = []
        for index in range(count):
            slot_pos = pos + 4 + 4 * index
            (rel,) = _U32.unpack_from(self.buffer, slot_pos)
            target = slot_pos + rel
            if isinstance(element, StringType):
                items.append(self._read_string(target))
            else:
                items.append(
                    TableView(
                        self.registry,
                        self.registry.get(element.name),
                        self.buffer,
                        target,
                    )
                )
        return items

    def to_plain(self):
        """Copy out into the plain generated message class."""
        cls = generate_message_class(self.spec.full_name, self.registry)
        msg = cls.__new__(cls)
        for field in self.spec.fields:
            value = self.get(field.name)
            setattr(msg, field.name, _plainify(value))
        return msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TableView {self.spec.full_name} @{self.table_pos}>"


def _plainify(value):
    if isinstance(value, TableView):
        return value.to_plain()
    if isinstance(value, memoryview):
        return bytearray(value)
    if isinstance(value, list):
        return [_plainify(item) for item in value]
    return value


class FlatBufferFormat(WireFormat):
    """WireFormat adapter: build on serialize, vtable view on wrap."""

    name = "FlatBuf"
    serialization_free = True

    def serialize(self, msg) -> bytes:
        builder = FlatBufferBuilder(self.registry, msg._spec.full_name)
        for field in msg._spec.fields:
            builder.add(field.name, getattr(msg, field.name))
        return builder.finish()

    def deserialize(self, type_name: str, buffer):
        return TableView.root(self.registry, type_name, buffer).to_plain()

    def wrap(self, type_name: str, buffer) -> TableView:
        return TableView.root(self.registry, type_name, buffer)

    def builder(self, type_name: str) -> FlatBufferBuilder:
        return FlatBufferBuilder(self.registry, type_name)
