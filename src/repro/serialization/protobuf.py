"""A Protocol-Buffers-like wire format (the "ProtoBuf" bar of Fig. 14).

Implements the ProtoBuf wire encoding over our message specs:

- fields are numbered by declaration order (1-based),
- each value is preceded by a varint *tag* ``(field_number << 3) | wire_type``,
- wire types: 0 = varint, 1 = 64-bit, 5 = 32-bit, 2 = length-delimited,
- signed integers use ZigZag (``sint*`` flavour), bools/unsigned use plain
  varints, floats are fixed 32/64-bit,
- strings, byte arrays, nested messages and packed repeated primitives are
  length-delimited,
- zero-valued scalar fields are omitted (proto3 presence semantics) -- the
  "prefix encoding ... can potentially reduce the size of messages with
  small values" property the paper attributes to ProtoBuf, at the price of
  more (de)serialization work.

``time``/``duration`` are encoded as a length-delimited pair of varints.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    FieldType,
    MapType,
    PrimitiveType,
    StringType,
)
from repro.msg.generator import default_for_type, generate_message_class
from repro.msg.registry import TypeRegistry
from repro.serialization.base import WireFormat

WIRETYPE_VARINT = 0
WIRETYPE_64BIT = 1
WIRETYPE_LENGTH = 2
WIRETYPE_32BIT = 5


class ProtoBufDecodeError(ValueError):
    """Raised when a buffer is not a valid encoding of the type."""


# ----------------------------------------------------------------------
# Varint primitives
# ----------------------------------------------------------------------
def write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varints are unsigned; zigzag-encode first")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(view, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(view):
            raise ProtoBufDecodeError("truncated varint")
        byte = view[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ProtoBufDecodeError("varint too long")


def zigzag_encode(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _tag(field_number: int, wire_type: int) -> int:
    return (field_number << 3) | wire_type


class ProtoBufFormat(WireFormat):
    """Compiled ProtoBuf-style serializer/deserializer for message specs."""

    name = "ProtoBuf"
    serialization_free = False

    def __init__(self, registry: Optional[TypeRegistry] = None) -> None:
        super().__init__(registry)
        self._writers: dict[str, Callable] = {}
        self._readers: dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def serialize(self, msg) -> bytes:
        out = bytearray()
        self._writer_for(msg._spec.full_name)(msg, out)
        return bytes(out)

    def deserialize(self, type_name: str, buffer):
        view = memoryview(buffer)
        try:
            value, offset = self._reader_for(type_name)(view, 0, len(view))
        except (struct.error, UnicodeDecodeError, IndexError,
                OverflowError) as exc:
            raise ProtoBufDecodeError(f"{type_name}: {exc}") from exc
        if offset != len(view):
            raise ProtoBufDecodeError(f"{len(view) - offset} trailing bytes")
        return value

    # ------------------------------------------------------------------
    # Writers
    # ------------------------------------------------------------------
    def _writer_for(self, type_name: str) -> Callable:
        writer = self._writers.get(type_name)
        if writer is None:
            writer = self._compile_writer(type_name)
        return writer

    def _compile_writer(self, type_name: str) -> Callable:
        spec = self.registry.get(type_name)
        steps = [
            self._field_writer(number, field.type)
            for number, field in enumerate(spec.fields, start=1)
        ]

        def write_message(msg, out: bytearray) -> None:
            for name, step in zip(spec.field_names(), steps):
                step(getattr(msg, name), out)

        self._writers[type_name] = write_message
        return write_message

    def _field_writer(self, number: int, ftype: FieldType) -> Callable:
        if isinstance(ftype, PrimitiveType):
            return self._prim_writer(number, ftype)
        if isinstance(ftype, StringType):
            tag = _tag(number, WIRETYPE_LENGTH)

            def write_string(value, out):
                data = value.encode("utf-8") if isinstance(value, str) else bytes(value)
                if not data:
                    return
                write_varint(out, tag)
                write_varint(out, len(data))
                out += data

            return write_string
        if isinstance(ftype, ArrayType):
            return self._array_writer(number, ftype)
        if isinstance(ftype, ComplexType):
            tag = _tag(number, WIRETYPE_LENGTH)
            inner = ftype.name

            def write_nested(value, out, _self=self, _inner=inner):
                body = bytearray()
                _self._writer_for(_inner)(value, body)
                if not body:
                    return  # all-default nested message omitted
                write_varint(out, tag)
                write_varint(out, len(body))
                out += body

            return write_nested
        if isinstance(ftype, MapType):
            tag = _tag(number, WIRETYPE_LENGTH)
            key_writer = self._field_writer(1, ftype.key_type)
            value_writer = self._field_writer(2, ftype.value_type)

            def write_map(value, out):
                for k, v in value.items():
                    entry = bytearray()
                    key_writer(k, entry)
                    value_writer(v, entry)
                    write_varint(out, tag)
                    write_varint(out, len(entry))
                    out += entry

            return write_map
        raise TypeError(f"unknown field type {ftype!r}")

    def _prim_writer(self, number: int, prim: PrimitiveType) -> Callable:
        if prim.is_time:
            tag = _tag(number, WIRETYPE_LENGTH)

            def write_time(value, out):
                secs, nsecs = value
                if not secs and not nsecs:
                    return
                body = bytearray()
                write_varint(body, zigzag_encode(int(secs)))
                write_varint(body, zigzag_encode(int(nsecs)))
                write_varint(out, tag)
                write_varint(out, len(body))
                out += body

            return write_time
        if prim.struct_fmt == "f":
            tag = _tag(number, WIRETYPE_32BIT)
            packer = struct.Struct("<f")

            def write_f32(value, out):
                if value == 0.0:
                    return
                write_varint(out, tag)
                out += packer.pack(value)

            return write_f32
        if prim.struct_fmt == "d":
            tag = _tag(number, WIRETYPE_64BIT)
            packer = struct.Struct("<d")

            def write_f64(value, out):
                if value == 0.0:
                    return
                write_varint(out, tag)
                out += packer.pack(value)

            return write_f64
        tag = _tag(number, WIRETYPE_VARINT)
        signed = prim.struct_fmt.islower() and prim.struct_fmt != "d"

        def write_int(value, out, _signed=signed):
            value = int(value)
            if value == 0:
                return
            write_varint(out, tag)
            write_varint(out, zigzag_encode(value) if _signed else value)

        return write_int

    def _array_writer(self, number: int, ftype: ArrayType) -> Callable:
        element = ftype.element_type
        tag = _tag(number, WIRETYPE_LENGTH)
        if isinstance(element, PrimitiveType) and element.name in ("uint8", "char"):
            def write_bytes(value, out):
                data = bytes(value)
                if not data:
                    return
                write_varint(out, tag)
                write_varint(out, len(data))
                out += data

            return write_bytes
        if isinstance(element, PrimitiveType) and not element.is_time:
            # Packed repeated scalars.
            if element.struct_fmt in ("f", "d"):
                packer = struct.Struct("<" + element.struct_fmt)

                def write_packed_float(value, out, _p=packer):
                    values = list(value)
                    if not values:
                        return
                    body = bytearray()
                    for item in values:
                        body += _p.pack(item)
                    write_varint(out, tag)
                    write_varint(out, len(body))
                    out += body

                return write_packed_float
            signed = element.struct_fmt.islower()

            def write_packed_int(value, out, _signed=signed):
                values = list(value)
                if not values:
                    return
                body = bytearray()
                for item in values:
                    item = int(item)
                    write_varint(body, zigzag_encode(item) if _signed else item)
                write_varint(out, tag)
                write_varint(out, len(body))
                out += body

            return write_packed_int
        # Repeated messages/strings: one tagged entry per element.
        element_writer = self._field_writer(number, element)

        def write_repeated(value, out):
            for item in value:
                element_writer(item, out)

        # A complex/string element writer omits empty values; repeated
        # fields must keep them to preserve element count, so force
        # emission through a wrapper that never skips.
        if isinstance(element, ComplexType):
            inner = element.name

            def write_repeated_msgs(value, out, _self=self, _inner=inner):
                for item in value:
                    body = bytearray()
                    _self._writer_for(_inner)(item, body)
                    write_varint(out, tag)
                    write_varint(out, len(body))
                    out += body

            return write_repeated_msgs
        if isinstance(element, StringType):
            def write_repeated_strings(value, out):
                for item in value:
                    data = (
                        item.encode("utf-8") if isinstance(item, str) else bytes(item)
                    )
                    write_varint(out, tag)
                    write_varint(out, len(data))
                    out += data

            return write_repeated_strings
        return write_repeated

    # ------------------------------------------------------------------
    # Readers
    # ------------------------------------------------------------------
    def _reader_for(self, type_name: str) -> Callable:
        reader = self._readers.get(type_name)
        if reader is None:
            reader = self._compile_reader(type_name)
        return reader

    def _compile_reader(self, type_name: str) -> Callable:
        spec = self.registry.get(type_name)
        cls = generate_message_class(type_name, self.registry)
        handlers = {
            number: (field.name, self._field_reader(field.type))
            for number, field in enumerate(spec.fields, start=1)
        }
        defaults = [
            (field.name, field, field.type) for field in spec.fields
        ]
        registry = self.registry

        def read_message(view, offset: int, end: int):
            msg = cls.__new__(cls)
            seen: set[str] = set()
            while offset < end:
                tag, offset = read_varint(view, offset)
                number, wire_type = tag >> 3, tag & 0x7
                entry = handlers.get(number)
                if entry is None:
                    offset = _skip(view, offset, wire_type)
                    continue
                name, handler = entry
                value, offset = handler(view, offset, wire_type, end)
                if name in seen and isinstance(value, list):
                    getattr(msg, name).extend(value)
                elif name in seen and isinstance(value, dict):
                    getattr(msg, name).update(value)
                else:
                    setattr(msg, name, value)
                    seen.add(name)
            for name, field, ftype in defaults:
                if name not in seen:
                    setattr(
                        msg,
                        name,
                        field.default
                        if field.optional and field.default is not None
                        else default_for_type(ftype, registry),
                    )
            return msg, offset

        self._readers[type_name] = read_message
        return read_message

    def _field_reader(self, ftype: FieldType) -> Callable:
        if isinstance(ftype, PrimitiveType):
            return self._prim_reader(ftype)
        if isinstance(ftype, StringType):
            def read_string(view, offset, wire_type, end):
                data, offset = _read_length_delimited(view, offset)
                return bytes(data).decode("utf-8"), offset

            return read_string
        if isinstance(ftype, ArrayType):
            return self._array_reader(ftype)
        if isinstance(ftype, ComplexType):
            inner = ftype.name

            def read_nested(view, offset, wire_type, end, _self=self, _inner=inner):
                data, offset = _read_length_delimited(view, offset)
                inner_view = memoryview(data)
                value, _ = _self._reader_for(_inner)(inner_view, 0, len(inner_view))
                return value, offset

            return read_nested
        if isinstance(ftype, MapType):
            key_reader = self._field_reader(ftype.key_type)
            value_reader = self._field_reader(ftype.value_type)
            key_default = ftype.key_type.default_value()
            value_default = ftype.value_type.default_value()

            def read_map(view, offset, wire_type, end):
                data, offset = _read_length_delimited(view, offset)
                entry_view = memoryview(data)
                pos, entry_end = 0, len(entry_view)
                key, value = key_default, value_default
                while pos < entry_end:
                    tag, pos = read_varint(entry_view, pos)
                    number, wt = tag >> 3, tag & 0x7
                    if number == 1:
                        key, pos = key_reader(entry_view, pos, wt, entry_end)
                    elif number == 2:
                        value, pos = value_reader(entry_view, pos, wt, entry_end)
                    else:
                        pos = _skip(entry_view, pos, wt)
                return {key: value}, offset

            return read_map
        raise TypeError(f"unknown field type {ftype!r}")

    def _prim_reader(self, prim: PrimitiveType) -> Callable:
        if prim.is_time:
            def read_time(view, offset, wire_type, end):
                data, offset = _read_length_delimited(view, offset)
                inner = memoryview(data)
                secs, pos = read_varint(inner, 0)
                nsecs, _ = read_varint(inner, pos)
                return (zigzag_decode(secs), zigzag_decode(nsecs)), offset

            return read_time
        if prim.struct_fmt == "f":
            unpacker = struct.Struct("<f")

            def read_f32(view, offset, wire_type, end, _u=unpacker):
                return _u.unpack_from(view, offset)[0], offset + 4

            return read_f32
        if prim.struct_fmt == "d":
            unpacker = struct.Struct("<d")

            def read_f64(view, offset, wire_type, end, _u=unpacker):
                return _u.unpack_from(view, offset)[0], offset + 8

            return read_f64
        signed = prim.struct_fmt.islower()
        is_bool = prim.struct_fmt == "?"

        def read_int(view, offset, wire_type, end, _signed=signed, _bool=is_bool):
            raw, offset = read_varint(view, offset)
            value = zigzag_decode(raw) if _signed else raw
            return (bool(value) if _bool else value), offset

        return read_int

    def _array_reader(self, ftype: ArrayType) -> Callable:
        element = ftype.element_type
        if isinstance(element, PrimitiveType) and element.name in ("uint8", "char"):
            def read_bytes(view, offset, wire_type, end):
                data, offset = _read_length_delimited(view, offset)
                return bytearray(data), offset

            return read_bytes
        if isinstance(element, PrimitiveType) and not element.is_time:
            if element.struct_fmt in ("f", "d"):
                size = element.size
                fmt = element.struct_fmt

                def read_packed_float(view, offset, wire_type, end):
                    data, offset = _read_length_delimited(view, offset)
                    count = len(data) // size
                    return (
                        list(struct.unpack(f"<{count}{fmt}", bytes(data))),
                        offset,
                    )

                return read_packed_float
            signed = element.struct_fmt.islower()

            def read_packed_int(view, offset, wire_type, end, _signed=signed):
                data, offset = _read_length_delimited(view, offset)
                inner = memoryview(data)
                values, pos = [], 0
                while pos < len(inner):
                    raw, pos = read_varint(inner, pos)
                    values.append(zigzag_decode(raw) if _signed else raw)
                return values, offset

            return read_packed_int
        if isinstance(element, ComplexType):
            inner = element.name

            def read_repeated_msg(view, offset, wire_type, end, _self=self):
                data, offset = _read_length_delimited(view, offset)
                inner_view = memoryview(data)
                value, _ = _self._reader_for(inner)(inner_view, 0, len(inner_view))
                return [value], offset

            return read_repeated_msg
        if isinstance(element, StringType):
            def read_repeated_string(view, offset, wire_type, end):
                data, offset = _read_length_delimited(view, offset)
                return [bytes(data).decode("utf-8")], offset

            return read_repeated_string
        raise TypeError(f"unsupported array element {element!r}")


def _read_length_delimited(view, offset: int) -> tuple[memoryview, int]:
    length, offset = read_varint(view, offset)
    end = offset + length
    if end > len(view):
        raise ProtoBufDecodeError("length-delimited field overruns buffer")
    return view[offset:end], end


def _skip(view, offset: int, wire_type: int) -> int:
    if wire_type == WIRETYPE_VARINT:
        _, offset = read_varint(view, offset)
        return offset
    if wire_type == WIRETYPE_64BIT:
        return offset + 8
    if wire_type == WIRETYPE_32BIT:
        return offset + 4
    if wire_type == WIRETYPE_LENGTH:
        _, offset = _read_length_delimited(view, offset)
        return offset
    raise ProtoBufDecodeError(f"unknown wire type {wire_type}")
