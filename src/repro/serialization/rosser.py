"""The ROS1 wire format: the serializer that ROS-SF eliminates.

Encoding rules (as in roscpp/rospy):

- primitives are packed little-endian (``time``/``duration`` as two 32-bit
  words),
- ``string`` is a 32-bit length followed by the raw UTF-8 bytes (no
  terminator),
- variable-length arrays are a 32-bit element count followed by the
  elements; fixed-length arrays are the elements only,
- nested messages are embedded inline,
- the Section 4.4.2 extension ``map`` is encoded as a 32-bit pair count
  followed by alternating keys and values (ROS's own convention).

For each message type the serializer compiles a writer/reader closure per
field once and caches the plan, mirroring how genmsg emits a dedicated
routine per type rather than interpreting the spec on every message.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    FieldType,
    MapType,
    PrimitiveType,
    StringType,
)
from repro.msg.generator import generate_message_class
from repro.msg.registry import TypeRegistry, default_registry
from repro.serialization.base import WireFormat
from repro.serialization.endian import LITTLE

_U32 = {"<": struct.Struct("<I"), ">": struct.Struct(">I")}

# Only unsigned single-byte elements may use the raw-bytes fast path;
# int8/byte arrays carry negative values and pack per element.
_BYTE_ELEMENT_NAMES = ("uint8", "char")


class DeserializationError(ValueError):
    """Raised when a buffer does not decode as the expected type."""


class ROSSerializer(WireFormat):
    """Compiled ROS1 wire-format serializer/deserializer."""

    name = "ROS"
    serialization_free = False

    def __init__(
        self,
        registry: Optional[TypeRegistry] = None,
        byte_order: str = LITTLE,
    ) -> None:
        super().__init__(registry)
        self.byte_order = byte_order
        self._writers: dict[str, Callable] = {}
        self._readers: dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def serialize(self, msg) -> bytes:
        out = bytearray()
        self.serialize_into(msg, out)
        return bytes(out)

    def serialize_into(self, msg, out: bytearray) -> None:
        """Append the serialized form of ``msg`` to ``out``."""
        writer = self._writer_for(msg._spec.full_name)
        writer(msg, out)

    def deserialize(self, type_name: str, buffer):
        reader = self._reader_for(type_name)
        view = memoryview(buffer)
        try:
            value, offset = reader(view, 0)
        except (struct.error, UnicodeDecodeError, OverflowError) as exc:
            raise DeserializationError(f"{type_name}: {exc}") from exc
        if offset != len(view):
            raise DeserializationError(
                f"{type_name}: {len(view) - offset} trailing bytes"
            )
        return value

    def serialized_length(self, msg) -> int:
        """Wire size of ``msg`` (serializes into a scratch buffer)."""
        scratch = bytearray()
        self.serialize_into(msg, scratch)
        return len(scratch)

    # ------------------------------------------------------------------
    # Writer compilation
    # ------------------------------------------------------------------
    def _writer_for(self, type_name: str) -> Callable:
        writer = self._writers.get(type_name)
        if writer is None:
            writer = self._compile_writer(type_name)
            self._writers[type_name] = writer
        return writer

    def _compile_writer(self, type_name: str) -> Callable:
        spec = self.registry.get(type_name)
        steps = [
            (field.name, self._field_writer(field.type)) for field in spec.fields
        ]

        def write_message(msg, out: bytearray) -> None:
            for name, step in steps:
                step(getattr(msg, name), out)

        # Publish the writer before compiling siblings so recursive specs
        # (not legal in ROS, but guarded elsewhere) cannot loop here.
        self._writers[type_name] = write_message
        return write_message

    def _field_writer(self, ftype: FieldType) -> Callable:
        order = self.byte_order
        u32 = _U32[order]

        if isinstance(ftype, PrimitiveType):
            packer = struct.Struct(order + ftype.struct_fmt)
            if ftype.is_time:
                def write_time(value, out, _packer=packer):
                    secs, nsecs = value
                    out += _packer.pack(secs, nsecs)
                return write_time

            def write_prim(value, out, _packer=packer):
                out += _packer.pack(value)
            return write_prim

        if isinstance(ftype, StringType):
            def write_string(value, out, _u32=u32):
                data = value.encode("utf-8") if isinstance(value, str) else bytes(value)
                out += _u32.pack(len(data))
                out += data
            return write_string

        if isinstance(ftype, ArrayType):
            return self._array_writer(ftype)

        if isinstance(ftype, ComplexType):
            inner_name = ftype.name
            def write_nested(value, out, _self=self, _name=inner_name):
                _self._writer_for(_name)(value, out)
            return write_nested

        if isinstance(ftype, MapType):
            key_writer = self._field_writer(ftype.key_type)
            value_writer = self._field_writer(ftype.value_type)
            def write_map(value, out, _u32=u32):
                out += _u32.pack(len(value))
                for k, v in value.items():
                    key_writer(k, out)
                    value_writer(v, out)
            return write_map

        raise TypeError(f"unknown field type {ftype!r}")

    def _array_writer(self, ftype: ArrayType) -> Callable:
        order = self.byte_order
        u32 = _U32[order]
        element = ftype.element_type
        fixed_length = ftype.length

        if isinstance(element, PrimitiveType) and element.name in _BYTE_ELEMENT_NAMES:
            if fixed_length is None:
                def write_bytes(value, out, _u32=u32):
                    data = bytes(value)
                    out += _u32.pack(len(data))
                    out += data
                return write_bytes

            def write_fixed_bytes(value, out, _n=fixed_length):
                data = bytes(value)
                if len(data) != _n:
                    raise ValueError(
                        f"fixed array expects {_n} bytes, got {len(data)}"
                    )
                out += data
            return write_fixed_bytes

        if isinstance(element, PrimitiveType) and not element.is_time:
            fmt = element.struct_fmt
            if fixed_length is None:
                def write_prim_array(value, out, _u32=u32, _fmt=fmt, _order=order):
                    values = list(value)
                    out += _u32.pack(len(values))
                    if values:
                        out += struct.pack(f"{_order}{len(values)}{_fmt}", *values)
                return write_prim_array

            def write_fixed_prim_array(
                value, out, _n=fixed_length, _fmt=fmt, _order=order
            ):
                values = list(value)
                if len(values) != _n:
                    raise ValueError(
                        f"fixed array expects {_n} elements, got {len(values)}"
                    )
                out += struct.pack(f"{_order}{_n}{_fmt}", *values)
            return write_fixed_prim_array

        element_writer = self._field_writer(element)
        if fixed_length is None:
            def write_array(value, out, _u32=u32):
                out += _u32.pack(len(value))
                for item in value:
                    element_writer(item, out)
            return write_array

        def write_fixed_array(value, out, _n=fixed_length):
            if len(value) != _n:
                raise ValueError(
                    f"fixed array expects {_n} elements, got {len(value)}"
                )
            for item in value:
                element_writer(item, out)
        return write_fixed_array

    # ------------------------------------------------------------------
    # Reader compilation
    # ------------------------------------------------------------------
    def _reader_for(self, type_name: str) -> Callable:
        reader = self._readers.get(type_name)
        if reader is None:
            reader = self._compile_reader(type_name)
            self._readers[type_name] = reader
        return reader

    def _compile_reader(self, type_name: str) -> Callable:
        spec = self.registry.get(type_name)
        cls = generate_message_class(type_name, self.registry)
        steps = [
            (field.name, self._field_reader(field.type)) for field in spec.fields
        ]

        def read_message(view: memoryview, offset: int):
            msg = cls.__new__(cls)
            for name, step in steps:
                value, offset = step(view, offset)
                setattr(msg, name, value)
            return msg, offset

        self._readers[type_name] = read_message
        return read_message

    def _field_reader(self, ftype: FieldType) -> Callable:
        order = self.byte_order
        u32 = _U32[order]

        if isinstance(ftype, PrimitiveType):
            unpacker = struct.Struct(order + ftype.struct_fmt)
            size = unpacker.size
            if ftype.is_time:
                def read_time(view, offset, _u=unpacker, _s=size):
                    return _u.unpack_from(view, offset), offset + _s
                return read_time

            def read_prim(view, offset, _u=unpacker, _s=size):
                return _u.unpack_from(view, offset)[0], offset + _s
            return read_prim

        if isinstance(ftype, StringType):
            def read_string(view, offset, _u32=u32):
                (length,) = _u32.unpack_from(view, offset)
                offset += 4
                end = offset + length
                if end > len(view):
                    raise DeserializationError("string overruns buffer")
                return bytes(view[offset:end]).decode("utf-8"), end
            return read_string

        if isinstance(ftype, ArrayType):
            return self._array_reader(ftype)

        if isinstance(ftype, ComplexType):
            inner_name = ftype.name
            def read_nested(view, offset, _self=self, _name=inner_name):
                return _self._reader_for(_name)(view, offset)
            return read_nested

        if isinstance(ftype, MapType):
            key_reader = self._field_reader(ftype.key_type)
            value_reader = self._field_reader(ftype.value_type)
            def read_map(view, offset, _u32=u32):
                (count,) = _u32.unpack_from(view, offset)
                offset += 4
                result = {}
                for _ in range(count):
                    key, offset = key_reader(view, offset)
                    value, offset = value_reader(view, offset)
                    result[key] = value
                return result, offset
            return read_map

        raise TypeError(f"unknown field type {ftype!r}")

    def _array_reader(self, ftype: ArrayType) -> Callable:
        order = self.byte_order
        u32 = _U32[order]
        element = ftype.element_type
        fixed_length = ftype.length

        if isinstance(element, PrimitiveType) and element.name in _BYTE_ELEMENT_NAMES:
            if fixed_length is None:
                def read_bytes(view, offset, _u32=u32):
                    (length,) = _u32.unpack_from(view, offset)
                    offset += 4
                    end = offset + length
                    if end > len(view):
                        raise DeserializationError("byte array overruns buffer")
                    return bytearray(view[offset:end]), end
                return read_bytes

            def read_fixed_bytes(view, offset, _n=fixed_length):
                end = offset + _n
                if end > len(view):
                    raise DeserializationError("byte array overruns buffer")
                return bytearray(view[offset:end]), end
            return read_fixed_bytes

        if isinstance(element, PrimitiveType) and not element.is_time:
            fmt, size = element.struct_fmt, element.size
            if fixed_length is None:
                def read_prim_array(view, offset, _u32=u32, _fmt=fmt, _s=size, _o=order):
                    (count,) = _u32.unpack_from(view, offset)
                    offset += 4
                    end = offset + count * _s
                    if end > len(view):
                        raise DeserializationError("array overruns buffer")
                    values = list(
                        struct.unpack_from(f"{_o}{count}{_fmt}", view, offset)
                    )
                    return values, end
                return read_prim_array

            def read_fixed_prim_array(
                view, offset, _n=fixed_length, _fmt=fmt, _s=size, _o=order
            ):
                end = offset + _n * _s
                if end > len(view):
                    raise DeserializationError("array overruns buffer")
                values = list(struct.unpack_from(f"{_o}{_n}{_fmt}", view, offset))
                return values, end
            return read_fixed_prim_array

        element_reader = self._field_reader(element)
        if fixed_length is None:
            def read_array(view, offset, _u32=u32):
                (count,) = _u32.unpack_from(view, offset)
                offset += 4
                values = []
                for _ in range(count):
                    value, offset = element_reader(view, offset)
                    values.append(value)
                return values, offset
            return read_array

        def read_fixed_array(view, offset, _n=fixed_length):
            values = []
            for _ in range(_n):
                value, offset = element_reader(view, offset)
                values.append(value)
            return values, offset
        return read_fixed_array


#: Process-wide little-endian instance, shared by the middleware layer.
default_serializer = ROSSerializer(default_registry)
