"""An XCDR2 / FlatData-like format (the "RTI" / "RTI-FlatData" bars of
Fig. 14).

Reproduces the EMHEADER parameter-list layout of the paper's Fig. 5: each
member is ``u32 EMHEADER`` = ``(LC << 28) | member_id`` followed by its
value, where the length code LC is 2 for 4-byte values, 3 for 8-byte
values and 4 for length-delimited values (a ``u32`` byte length then the
content, padded to 4 bytes).

Member ids follow the figure's convention: fixed-size members are
numbered first in declaration order, then variable-size members (height=0,
width=1, encoding=2, data=3 for the simplified Image) -- though members
are *serialized* in declaration/construction order.

Two usage modes, matching RTI Connext:

- **RTI (plain)**: :meth:`XCDR2Format.serialize` /
  :meth:`~XCDR2Format.deserialize` -- conventional copy-in/copy-out.
- **RTI-FlatData**: :class:`FlatDataBuilder` constructs the buffer
  directly and :class:`XcdrView` accesses it zero-copy; as the paper notes
  (Section 3.2), every access "must traverse all fields until the desired
  field is found by its index", since offsets are not fixed.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.msg.fields import (
    ArrayType,
    ComplexType,
    MapType,
    PrimitiveType,
    StringType,
)
from repro.msg.generator import default_for_type, generate_message_class
from repro.msg.idl import Field, MessageSpec
from repro.msg.registry import TypeRegistry
from repro.serialization.base import WireFormat

_U32 = struct.Struct("<I")

LC_1BYTE = 0
LC_2BYTE = 1
LC_4BYTE = 2
LC_8BYTE = 3
LC_LENGTH = 4

_BYTE_NAMES = ("uint8", "char")


class XcdrError(ValueError):
    """Raised on malformed buffers or unsupported constructs."""


def member_ids(spec: MessageSpec) -> dict[str, int]:
    """Member ids per the Fig. 5 convention: fixed-size members first."""
    ids: dict[str, int] = {}
    counter = 0
    for field in spec.fields:
        if isinstance(field.type, PrimitiveType):
            ids[field.name] = counter
            counter += 1
    for field in spec.fields:
        if field.name not in ids:
            ids[field.name] = counter
            counter += 1
    return ids


def _emheader(lc: int, member_id: int) -> bytes:
    return _U32.pack((lc << 28) | (member_id & 0x0FFF_FFFF))


def _pad4(out: bytearray) -> None:
    while len(out) % 4:
        out.append(0)


def _lc_for_prim(prim: PrimitiveType) -> int:
    size = 8 if prim.is_time else prim.size
    return {1: LC_1BYTE, 2: LC_2BYTE, 4: LC_4BYTE, 8: LC_8BYTE}[size]


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_member(out: bytearray, field: Field, member_id: int, value,
                   registry: TypeRegistry) -> None:
    ftype = field.type
    if isinstance(ftype, PrimitiveType):
        out += _emheader(_lc_for_prim(ftype), member_id)
        if ftype.is_time:
            secs, nsecs = value
            out += struct.pack("<" + ftype.struct_fmt, secs, nsecs)
        else:
            out += struct.pack("<" + ftype.struct_fmt, value)
        _pad4(out)
        return
    out += _emheader(LC_LENGTH, member_id)
    body = _encode_body(ftype, value, registry)
    out += _U32.pack(len(body))
    out += body
    _pad4(out)


def _encode_body(ftype, value, registry: TypeRegistry) -> bytes:
    if isinstance(ftype, StringType):
        data = value.encode("utf-8") if isinstance(value, str) else bytes(value)
        body = bytearray(data)
        body.append(0)
        _pad4(body)
        return bytes(body)
    if isinstance(ftype, ComplexType):
        return encode_message(registry.get(ftype.name), value, registry)
    if isinstance(ftype, ArrayType):
        element = ftype.element_type
        if isinstance(element, PrimitiveType) and element.name in _BYTE_NAMES:
            return bytes(value)
        if isinstance(element, PrimitiveType) and not element.is_time:
            items = list(value)
            return struct.pack(f"<{len(items)}{element.struct_fmt}", *items)
        if isinstance(element, PrimitiveType):  # time elements
            body = bytearray()
            for secs, nsecs in value:
                body += struct.pack("<II", secs, nsecs)
            return bytes(body)
        # Vector of strings / messages: u32 count, then length-prefixed
        # element bodies.
        items = list(value)
        body = bytearray(_U32.pack(len(items)))
        for item in items:
            element_body = _encode_body(
                element if not isinstance(element, ArrayType) else element,
                item,
                registry,
            )
            body += _U32.pack(len(element_body))
            body += element_body
        return bytes(body)
    if isinstance(ftype, MapType):
        raise XcdrError("map fields are not supported by XCDR2 mode")
    raise XcdrError(f"unsupported field type {ftype!r}")


def encode_message(spec: MessageSpec, values, registry: TypeRegistry) -> bytes:
    """Encode one message (attribute source or dict) as a parameter list."""
    ids = member_ids(spec)
    out = bytearray()
    for field in spec.fields:
        if isinstance(values, dict):
            value = values.get(
                field.name, default_for_type(field.type, registry)
            )
        else:
            value = getattr(values, field.name)
        _encode_member(out, field, ids[field.name], value, registry)
    return bytes(out)


# ----------------------------------------------------------------------
# Decoding / traversal
# ----------------------------------------------------------------------
def _scan(buffer, offset: int, end: int):
    """Yield ``(member_id, lc, value_offset, value_length)`` for each
    member of a parameter list."""
    while offset < end:
        (header,) = _U32.unpack_from(buffer, offset)
        offset += 4
        lc = header >> 28
        member_id = header & 0x0FFF_FFFF
        if lc == LC_LENGTH:
            (length,) = _U32.unpack_from(buffer, offset)
            offset += 4
            yield member_id, lc, offset, length
            offset += length
        else:
            size = {LC_1BYTE: 1, LC_2BYTE: 2, LC_4BYTE: 4, LC_8BYTE: 8}[lc]
            yield member_id, lc, offset, size
            offset += size
        offset = (offset + 3) & ~3  # skip padding


def _decode_prim(prim: PrimitiveType, buffer, offset: int):
    if prim.is_time:
        return struct.unpack_from("<" + prim.struct_fmt, buffer, offset)
    return struct.unpack_from("<" + prim.struct_fmt, buffer, offset)[0]


def _decode_body(ftype, buffer, offset: int, length: int,
                 registry: TypeRegistry):
    if isinstance(ftype, StringType):
        raw = bytes(buffer[offset : offset + length])
        nul = raw.find(b"\x00")
        if nul >= 0:
            raw = raw[:nul]
        return raw.decode("utf-8")
    if isinstance(ftype, ComplexType):
        return decode_message(
            registry.get(ftype.name), buffer, offset, offset + length, registry
        )
    if isinstance(ftype, ArrayType):
        element = ftype.element_type
        if isinstance(element, PrimitiveType) and element.name in _BYTE_NAMES:
            return bytearray(buffer[offset : offset + length])
        if isinstance(element, PrimitiveType) and not element.is_time:
            count = length // element.size
            return list(
                struct.unpack_from(f"<{count}{element.struct_fmt}", buffer, offset)
            )
        if isinstance(element, PrimitiveType):
            count = length // 8
            return [
                struct.unpack_from("<II", buffer, offset + 8 * index)
                for index in range(count)
            ]
        (count,) = _U32.unpack_from(buffer, offset)
        pos = offset + 4
        items = []
        for _ in range(count):
            (element_length,) = _U32.unpack_from(buffer, pos)
            pos += 4
            items.append(
                _decode_body(element, buffer, pos, element_length, registry)
            )
            pos += element_length
        return items
    raise XcdrError(f"unsupported field type {ftype!r}")


def decode_message(spec: MessageSpec, buffer, offset: int, end: int,
                   registry: TypeRegistry):
    """Decode a parameter list into a plain message instance."""
    ids = member_ids(spec)
    by_id = {ids[field.name]: field for field in spec.fields}
    cls = generate_message_class(spec.full_name, registry)
    msg = cls.__new__(cls)
    seen: set[str] = set()
    for member_id, lc, value_offset, length in _scan(buffer, offset, end):
        field = by_id.get(member_id)
        if field is None:
            continue
        if isinstance(field.type, PrimitiveType):
            value = _decode_prim(field.type, buffer, value_offset)
        else:
            value = _decode_body(field.type, buffer, value_offset, length, registry)
        setattr(msg, field.name, value)
        seen.add(field.name)
    for field in spec.fields:
        if field.name not in seen:
            setattr(msg, field.name, default_for_type(field.type, registry))
    return msg


# ----------------------------------------------------------------------
# FlatData mode: direct construction + zero-copy traversal access
# ----------------------------------------------------------------------
class FlatDataBuilder:
    """Constructs an XCDR2 buffer directly (``rti::flat::build_data``).

    As in FlatData, members must be *finished in construction order*:
    each ``add`` appends the member immediately, so the memory layout
    follows the construction routine (paper Section 3.2).
    """

    def __init__(self, registry: TypeRegistry, type_name: str) -> None:
        self.registry = registry
        self.spec = registry.get(type_name)
        self._ids = member_ids(self.spec)
        self._out = bytearray()
        self._added: set[str] = set()
        self._finished: Optional[bytes] = None

    def add(self, field_name: str, value) -> "FlatDataBuilder":
        if self._finished is not None:
            raise XcdrError("builder already finished")
        if field_name in self._added:
            raise XcdrError(f"member {field_name!r} already built")
        field = self.spec.field(field_name)
        _encode_member(
            self._out, field, self._ids[field_name], value, self.registry
        )
        self._added.add(field_name)
        return self

    # FlatData-flavoured aliases from the paper's Fig. 4.
    add_height = None  # (illustrative names are per-type in RTI; use add)
    build_encoding = add
    build_data = add

    def finish_sample(self) -> bytes:
        if self._finished is None:
            for field in self.spec.fields:
                if field.name not in self._added:
                    _encode_member(
                        self._out,
                        field,
                        self._ids[field.name],
                        default_for_type(field.type, self.registry),
                        self.registry,
                    )
                    self._added.add(field.name)
            self._finished = bytes(self._out)
        return self._finished

    finish = finish_sample


class XcdrView:
    """Zero-copy accessor: every ``get`` linearly scans the parameter list
    until the member id matches (the traversal cost of Section 3.2)."""

    __slots__ = ("registry", "spec", "buffer", "offset", "end", "_ids")

    def __init__(self, registry: TypeRegistry, spec: MessageSpec, buffer,
                 offset: int = 0, end: Optional[int] = None) -> None:
        self.registry = registry
        self.spec = spec
        self.buffer = buffer
        self.offset = offset
        self.end = len(buffer) if end is None else end
        self._ids = member_ids(spec)

    def get(self, name: str):
        field = self.spec.field(name)
        wanted = self._ids[name]
        for member_id, lc, value_offset, length in _scan(
            self.buffer, self.offset, self.end
        ):
            if member_id != wanted:
                continue
            if isinstance(field.type, PrimitiveType):
                return _decode_prim(field.type, self.buffer, value_offset)
            if isinstance(field.type, ComplexType):
                return XcdrView(
                    self.registry,
                    self.registry.get(field.type.name),
                    self.buffer,
                    value_offset,
                    value_offset + length,
                )
            if isinstance(field.type, ArrayType) and isinstance(
                field.type.element_type, PrimitiveType
            ) and field.type.element_type.name in _BYTE_NAMES:
                return memoryview(self.buffer)[value_offset : value_offset + length]
            return _decode_body(
                field.type, self.buffer, value_offset, length, self.registry
            )
        return default_for_type(field.type, self.registry)

    def to_plain(self):
        return decode_message(
            self.spec, self.buffer, self.offset, self.end, self.registry
        )


class XCDR2Format(WireFormat):
    """WireFormat adapter for the conventional (copying) RTI mode."""

    name = "RTI-XCDR2"
    serialization_free = True  # wrap() is available (FlatData mode)

    def serialize(self, msg) -> bytes:
        return encode_message(msg._spec, msg, self.registry)

    def deserialize(self, type_name: str, buffer):
        spec = self.registry.get(type_name)
        try:
            return decode_message(spec, buffer, 0, len(buffer), self.registry)
        except (struct.error, UnicodeDecodeError, KeyError,
                OverflowError) as exc:
            raise XcdrError(f"{type_name}: {exc}") from exc

    def wrap(self, type_name: str, buffer) -> XcdrView:
        return XcdrView(self.registry, self.registry.get(type_name), buffer)

    def builder(self, type_name: str) -> FlatDataBuilder:
        return FlatDataBuilder(self.registry, type_name)
