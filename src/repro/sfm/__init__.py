"""SFM: the Serialization-Free Message format (the paper's contribution).

An SFM message *is* its own wire buffer: the object's "memory layout" is a
contiguous byte buffer laid out per Section 4.1, so publishing needs no
serialization and a received buffer needs no de-serialization -- it is
wrapped and accessed in place.

Modules:

- :mod:`repro.sfm.layout` -- skeleton layout computation (fixed field
  offsets; the property that makes transparent attribute access possible)
  and subscriber-side endianness conversion (Section 4.4.1).
- :mod:`repro.sfm.arena` -- a virtual address arena so the life-cycle
  manager can reproduce the paper's interior-address record lookup.
- :mod:`repro.sfm.manager` -- ``sfm::mm``: message records, the
  Allocated/Published/Destructed state machine (Figs. 8 and 9), buffer
  refcounting and whole-message expansion.
- :mod:`repro.sfm.string` / :mod:`repro.sfm.vector` -- ``sfm::string`` and
  ``sfm::vector`` views with ``std::string``/``std::vector``-compatible
  interfaces and the three assumption checks of Section 4.3.3.
- :mod:`repro.sfm.message` / :mod:`repro.sfm.generator` -- the SFM message
  base class and the SFM Generator (the genmsg analogue of Section 4.3.1).
"""

from repro.sfm.errors import (
    CapacityError,
    NoModifierError,
    OneShotStringError,
    OneShotVectorError,
    SfmError,
    StaleMessageError,
)
from repro.sfm.manager import MessageManager, MessageState, global_message_manager
from repro.sfm.generator import generate_sfm_class, sfm_class_for
from repro.sfm.message import SFMMessage

__all__ = [
    "CapacityError",
    "MessageManager",
    "MessageState",
    "NoModifierError",
    "OneShotStringError",
    "OneShotVectorError",
    "SFMMessage",
    "SfmError",
    "StaleMessageError",
    "generate_sfm_class",
    "global_message_manager",
    "sfm_class_for",
]
