"""Virtual address arena for SFM message records.

In the C++ system, a message lives at a real heap address and the message
manager locates the owning record from *any interior address* (a field that
requests expansion only knows its own address; Section 4.3.3).  Python
objects have no stable user-visible addresses, so we give every SFM
allocation a range in a process-wide *virtual* address space.  Field views
carry their virtual address and the manager performs the same
interior-address binary search the paper describes.

The arena is a bump allocator over a 2**48-byte space; ranges are never
reused, which keeps "use-after-free" detectable (a freed range resolves to
no record) exactly like the dangling-pointer bugs the paper's life-cycle
management prevents.
"""

from __future__ import annotations

import itertools
import threading

#: Allocation granularity; keeps ranges visually distinct in debug output.
_ALIGNMENT = 0x1000

#: Arena base; non-zero so that address 0 is always invalid (a null pointer).
_BASE = 0x10_0000


class Arena:
    """Hands out non-overlapping virtual address ranges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = _BASE
        self._allocation_ids = itertools.count(1)

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the base virtual address."""
        if size <= 0:
            raise ValueError(f"arena allocation must be positive, got {size}")
        span = -(-size // _ALIGNMENT) * _ALIGNMENT
        with self._lock:
            base = self._next
            self._next += span
            return base

    def next_allocation_id(self) -> int:
        """A monotonically increasing id for message records."""
        return next(self._allocation_ids)


#: The process-wide arena shared by the global message manager.
global_arena = Arena()
